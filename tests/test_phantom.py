"""Tests for the phantom-queue set and its fluid drain."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.phantom import PhantomQueueSet
from repro.policy.tree import Policy


def make(n=2, rate=1000.0, cap=10_000.0, policy=None):
    return PhantomQueueSet(policy or Policy.fair(n), rate, [cap] * n)


class TestEnqueue:
    def test_accepts_until_capacity(self):
        q = make(n=1, cap=3000.0)
        assert q.try_enqueue(0, 1500)
        assert q.try_enqueue(0, 1500)
        assert not q.try_enqueue(0, 1500)

    def test_length_and_remaining(self):
        q = make(n=1, cap=5000.0)
        q.try_enqueue(0, 2000)
        assert q.length(0) == 2000
        assert q.remaining(0) == 3000

    def test_active_flags(self):
        q = make(n=3)
        q.try_enqueue(1, 100)
        assert q.active_flags() == [False, True, False]


class TestFluidDrain:
    def test_single_queue_drains_at_rate(self):
        q = make(n=1, rate=1000.0, cap=1e6)
        q.try_enqueue(0, 5000)
        q.advance(2.0)
        assert q.length(0) == pytest.approx(3000.0)

    def test_drains_to_zero_and_stops(self):
        q = make(n=1, rate=1000.0, cap=1e6)
        q.try_enqueue(0, 500)
        q.advance(10.0)
        assert q.length(0) == 0.0
        assert q.drained_bytes == pytest.approx(500.0)

    def test_fair_split_between_occupied(self):
        q = make(n=2, rate=1000.0, cap=1e6)
        q.try_enqueue(0, 4000)
        q.try_enqueue(1, 4000)
        q.advance(2.0)
        assert q.length(0) == pytest.approx(3000.0)
        assert q.length(1) == pytest.approx(3000.0)

    def test_share_reallocates_when_queue_empties(self):
        # q0 holds 500 B, q1 holds 4000 B, rate 1000 B/s fair.
        # Piece 1: both served at 500 B/s until q0 empties at t=1.
        # Piece 2: q1 alone at 1000 B/s.
        q = make(n=2, rate=1000.0, cap=1e6)
        q.try_enqueue(0, 500)
        q.try_enqueue(1, 4000)
        q.advance(2.0)
        assert q.length(0) == 0.0
        assert q.length(1) == pytest.approx(4000 - 500 - 1000)

    def test_priority_drains_high_first(self):
        policy = Policy.prioritized([0, 1])
        q = PhantomQueueSet(policy, 1000.0, [1e6, 1e6])
        q.try_enqueue(0, 1000)
        q.try_enqueue(1, 1000)
        q.advance(1.0)
        assert q.length(0) == 0.0
        assert q.length(1) == pytest.approx(1000.0)

    def test_time_cannot_go_backwards(self):
        q = make()
        q.advance(1.0)
        with pytest.raises(ValueError):
            q.advance(0.5)

    def test_idle_advance_is_cheap(self):
        q = make()
        q.advance(100.0)
        assert q.drain_recomputes == 0


class TestMagic:
    def test_fill_tops_queue(self):
        q = make(n=1, cap=10_000.0)
        q.try_enqueue(0, 2000)
        added = q.fill_with_magic(0)
        assert added == pytest.approx(8000.0)
        assert q.length(0) == pytest.approx(10_000.0)
        assert q.magic_bytes(0) == pytest.approx(8000.0)

    def test_fill_full_queue_adds_nothing(self):
        q = make(n=1, cap=3000.0)
        q.try_enqueue(0, 3000)
        assert q.fill_with_magic(0) == 0.0

    def test_reclaim_removes_magic_keeps_real(self):
        q = make(n=1, cap=10_000.0)
        q.try_enqueue(0, 2000)
        q.fill_with_magic(0)
        reclaimed = q.reclaim_magic(0)
        assert reclaimed == pytest.approx(8000.0)
        assert q.length(0) == pytest.approx(2000.0)
        assert q.magic_bytes(0) == 0.0

    def test_magic_clamps_as_queue_drains(self):
        # Footnote 5: draining can consume magic before it is reclaimed.
        q = make(n=1, rate=1000.0, cap=5000.0)
        q.try_enqueue(0, 1000)
        q.fill_with_magic(0)  # magic = 4000
        q.advance(2.0)  # drained 2000, length 3000 => magic clamps to 3000
        assert q.magic_bytes(0) == pytest.approx(3000.0)
        assert q.reclaim_magic(0) == pytest.approx(3000.0)
        assert q.length(0) == 0.0

    def test_reclaim_without_magic_is_zero(self):
        q = make(n=1)
        q.try_enqueue(0, 500)
        assert q.reclaim_magic(0) == 0.0
        assert q.length(0) == 500


class TestValidation:
    def test_capacity_count_checked(self):
        with pytest.raises(ValueError):
            PhantomQueueSet(Policy.fair(2), 100.0, [1.0])

    def test_positive_rate_required(self):
        with pytest.raises(ValueError):
            PhantomQueueSet(Policy.fair(1), 0.0, [1.0])

    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            PhantomQueueSet(Policy.fair(1), 1.0, [0.0])


class TestConservation:
    @settings(deadline=None, max_examples=50)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),      # queue
                st.floats(min_value=1, max_value=5000),     # size
                st.floats(min_value=0, max_value=0.5),      # dt before op
            ),
            min_size=1, max_size=40,
        )
    )
    def test_bytes_conserved(self, ops):
        """enqueued == drained + still-queued, for any op sequence."""
        q = PhantomQueueSet(Policy.fair(3), 2000.0, [20_000.0] * 3)
        now = 0.0
        enqueued = 0.0
        for queue, size, dt in ops:
            now += dt
            q.advance(now)
            if q.try_enqueue(queue, size):
                enqueued += size
        assert enqueued == pytest.approx(
            q.drained_bytes + q.total_length(), rel=1e-6, abs=1e-3
        )

    @settings(deadline=None, max_examples=50)
    @given(
        dts=st.lists(st.floats(min_value=0.001, max_value=1.0),
                     min_size=1, max_size=20)
    )
    def test_drain_rate_never_exceeds_service_rate(self, dts):
        q = PhantomQueueSet(Policy.fair(2), 1500.0, [1e9, 1e9])
        q.try_enqueue(0, 5e8)
        q.try_enqueue(1, 5e8)
        now = 0.0
        for dt in dts:
            before = q.drained_bytes
            now += dt
            q.advance(now)
            assert q.drained_bytes - before <= 1500.0 * dt * (1 + 1e-9)
