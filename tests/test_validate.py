"""Tests for the runtime invariant checker (repro.validate)."""

import pytest

from repro.core.bcpqp import BCPQP
from repro.core.pqp import PQP
from repro.classify.classifier import SlotClassifier
from repro.limiters.token_bucket import TokenBucketPolicer
from repro.net.packet import FlowId, Packet
from repro.net.sink import NullSink
from repro.policy.tree import Policy
from repro.runner.aggregate import AggregateConfig, build_scenario
from repro.sim.simulator import Simulator
from repro.units import MSS, mbps, ms
from repro.validate import InvariantChecker, InvariantViolation
from repro.workload.spec import FlowSpec


def data_packet(slot=0, size=MSS, aggregate=0):
    return Packet.data(FlowId(aggregate, slot), seq=0, sent_at=0.0,
                       size=size)


def _checked_sim(**kwargs):
    checker = InvariantChecker(**kwargs)
    return checker, Simulator(validate=checker)


def _pqp(sim, *, cls=PQP, num_queues=2, rate=mbps(5), queue_bytes=40 * MSS,
         **kwargs):
    return cls(
        sim,
        rate=rate,
        policy=Policy.fair(num_queues),
        classifier=SlotClassifier(num_queues),
        queue_bytes=queue_bytes,
        **kwargs,
    )


class TestAttachment:
    def test_disabled_simulator_has_no_validator(self):
        assert Simulator().validator is None

    def test_components_self_register(self):
        checker, sim = _checked_sim()
        limiter = _pqp(sim)
        limiter.connect(NullSink())
        limiter.receive(data_packet())
        assert checker.checks > 0
        assert checker.violations == []

    def test_checks_cover_every_receive(self):
        checker, sim = _checked_sim()
        limiter = TokenBucketPolicer(sim, rate=mbps(5), bucket_bytes=10 * MSS)
        limiter.connect(NullSink())
        before = checker.checks
        for _ in range(5):
            limiter.receive(data_packet())
        assert checker.checks > before


class TestViolationDetection:
    def test_token_bucket_overflow_flagged(self):
        checker, sim = _checked_sim()
        limiter = TokenBucketPolicer(sim, rate=mbps(5), bucket_bytes=10 * MSS)
        limiter.connect(NullSink())
        limiter._tokens = 20 * MSS  # corrupt: above bucket capacity
        with pytest.raises(InvariantViolation):
            limiter.receive(data_packet())
        assert checker.violations

    def test_negative_tokens_flagged(self):
        checker, sim = _checked_sim()
        limiter = TokenBucketPolicer(sim, rate=mbps(5), bucket_bytes=10 * MSS)
        limiter.connect(NullSink())
        limiter.receive(data_packet())
        limiter._tokens = -1.0
        with pytest.raises(InvariantViolation):
            limiter.receive(data_packet())

    def test_phantom_overfill_flagged(self):
        checker, sim = _checked_sim()
        limiter = _pqp(sim)
        limiter.connect(NullSink())
        limiter.receive(data_packet())
        # Corrupt the phantom counter past its capacity (bypassing
        # try_enqueue's bound check, fluid-ref engine for direct access).
        limiter.queues._gps = None
        limiter.queues._length = [limiter.queues.capacity(0) * 2, 0.0]
        limiter.queues._total = limiter.queues._length[0]
        with pytest.raises(InvariantViolation):
            limiter.receive(data_packet())

    def test_forwarding_mismatch_flagged(self):
        checker, sim = _checked_sim()
        limiter = TokenBucketPolicer(sim, rate=mbps(5), bucket_bytes=10 * MSS)
        limiter.connect(NullSink())
        limiter.receive(data_packet())
        limiter.stats.forwarded_packets += 1  # corrupt conservation
        with pytest.raises(InvariantViolation):
            limiter.receive(data_packet())

    def test_collect_mode_accumulates(self):
        checker, sim = _checked_sim(fail_fast=False)
        limiter = TokenBucketPolicer(sim, rate=mbps(5), bucket_bytes=10 * MSS)
        limiter.connect(NullSink())
        limiter._tokens = 99 * MSS
        limiter.receive(data_packet())  # no raise
        assert len(checker.violations) >= 1

    def test_finalize_flags_empty_trace(self):
        class FakeTrace:
            name = "receiver"
            times: list = []

        checker = InvariantChecker(fail_fast=False)
        checker.finalize(traces=(FakeTrace(),))
        assert any("empty receiver trace" in v for v in checker.violations)


class TestWholeRunValidation:
    @pytest.mark.parametrize("scheme", ["pqp", "bcpqp", "shaper",
                                        "policer", "fairpolicer"])
    def test_clean_run_has_no_violations(self, scheme):
        checker, sim = _checked_sim()
        config = AggregateConfig(
            scheme=scheme,
            specs=(FlowSpec(slot=0, cc="reno", rtt=ms(20)),
                   FlowSpec(slot=1, cc="cubic", rtt=ms(60))),
            rate=mbps(5), max_rtt=ms(100), horizon=1.0, warmup=0.25, seed=3,
        )
        limiter, scenario = build_scenario(config, sim)
        scenario.run()
        checker.finalize(traces=(scenario.trace,))
        assert checker.violations == []
        assert checker.checks > 100

    def test_bcpqp_sweep_is_checked(self):
        # The wrapped _on_window_sweep must actually fire: a 100 ms period
        # over a 1 s horizon sweeps ~10 times even with no packets at all.
        checker, sim = _checked_sim()
        limiter = _pqp(sim, cls=BCPQP)
        limiter.connect(NullSink())
        sim.run(until=1.0)
        limiter.stop()
        assert checker.checks > 0


class TestZeroPerturbation:
    """A validated run must be byte-identical to an unvalidated one —
    the property that makes fluid vs fluid-ref strict diffing (and the
    pinned cost model) safe under validation."""

    @pytest.mark.parametrize("scheme,service", [
        ("pqp", "fluid"), ("pqp", "quantum"),
        ("bcpqp", "fluid"), ("bcpqp", "fluid-ref"),
    ])
    def test_validated_run_byte_identical(self, scheme, service):
        def run(validate):
            checker = InvariantChecker() if validate else None
            sim = Simulator(validate=checker)
            config = AggregateConfig(
                scheme=scheme,
                specs=(FlowSpec(slot=0, cc="reno", rtt=ms(20)),
                       FlowSpec(slot=1, cc="bbr", rtt=ms(50))),
                rate=mbps(5), max_rtt=ms(100), horizon=1.0, warmup=0.25,
                seed=7, phantom_service=service,
            )
            limiter, scenario = build_scenario(config, sim)
            scenario.run()
            stats = limiter.stats
            return (
                stats.arrived_packets, stats.forwarded_packets,
                stats.dropped_packets, stats.forwarded_bytes,
                stats.dropped_bytes, dict(stats.per_queue_drops),
                limiter.queues.drained_bytes,
                limiter.cost.snapshot(),
                tuple(scenario.trace.times),
                sim.events_processed,
            )

        assert run(False) == run(True)
