"""Tests for the multi-queue traffic shaper."""

import pytest

from repro.classify.classifier import SlotClassifier
from repro.limiters.shaper import Shaper
from repro.net.packet import FlowId, Packet
from repro.net.sink import NullSink
from repro.policy.tree import Policy
from repro.sim.simulator import Simulator


def make(sim, *, rate=15_000.0, n=2, queue_bytes=15_000.0, policy=None,
         sink=None):
    shaper = Shaper(
        sim,
        rate=rate,
        policy=policy or Policy.fair(n),
        classifier=SlotClassifier(n),
        queue_bytes=queue_bytes,
    )
    shaper.connect(sink or NullSink())
    return shaper


def pkt(slot, seq=0, size=1500):
    return Packet.data(FlowId(0, slot), seq, 0.0, size=size)


class TestShaping:
    def test_releases_at_configured_rate(self):
        sim = Simulator()
        sink = NullSink()
        shaper = make(sim, rate=15_000.0, queue_bytes=1e6, sink=sink)
        for i in range(100):
            shaper.receive(pkt(0, i))
        sim.run(until=5.0)
        # 15 kB/s x 5 s = 75 kB = 50 packets
        assert sink.count == pytest.approx(50, abs=2)

    def test_buffers_do_not_drop_within_capacity(self):
        sim = Simulator()
        shaper = make(sim, queue_bytes=15_000.0)
        for i in range(10):
            shaper.receive(pkt(0, i))
        assert shaper.stats.dropped_packets == 0
        assert shaper.backlog_bytes() > 0

    def test_drop_tail_when_full(self):
        sim = Simulator()
        shaper = make(sim, queue_bytes=4500.0)
        for i in range(10):
            shaper.receive(pkt(0, i))
        # 1 in service + 3 buffered = 4; rest dropped.
        assert shaper.stats.dropped_packets == 6
        assert shaper.stats.per_queue_drops[0] == 6

    def test_fair_service_between_queues(self):
        sim = Simulator()
        served = {0: 0, 1: 0}

        class _Sink:
            def receive(self, p):
                served[p.flow.slot] += 1

        shaper = make(sim, queue_bytes=1e6, sink=_Sink())
        for i in range(100):
            shaper.receive(pkt(0, i))
            shaper.receive(pkt(1, i))
        sim.run(until=10.0)
        assert served[0] == pytest.approx(served[1], abs=2)
        assert served[0] + served[1] == pytest.approx(100, abs=2)

    def test_weighted_service(self):
        sim = Simulator()
        served = {0: 0, 1: 0}

        class _Sink:
            def receive(self, p):
                served[p.flow.slot] += 1

        shaper = make(sim, queue_bytes=1e6, sink=_Sink(),
                      policy=Policy.weighted([3, 1]))
        for i in range(200):
            shaper.receive(pkt(0, i))
            shaper.receive(pkt(1, i))
        sim.run(until=10.0)
        assert served[0] / served[1] == pytest.approx(3.0, rel=0.15)

    def test_priority_service(self):
        sim = Simulator()
        order = []

        class _Sink:
            def receive(self, p):
                order.append(p.flow.slot)

        shaper = make(sim, queue_bytes=1e6, sink=_Sink(),
                      policy=Policy.prioritized([0, 1]))
        for i in range(20):
            shaper.receive(pkt(1, i))
        for i in range(20):
            shaper.receive(pkt(0, i))
        sim.run(until=10.0)
        # After the first (already in service) packet, all high-priority
        # packets leave before the remaining low-priority ones.
        tail = order[1:21]
        assert all(slot == 0 for slot in tail)

    def test_work_conserving_when_one_queue_empty(self):
        sim = Simulator()
        sink = NullSink()
        shaper = make(sim, rate=15_000.0, queue_bytes=1e6, sink=sink)
        for i in range(40):
            shaper.receive(pkt(1, i))
        sim.run(until=2.0)
        assert sink.count == pytest.approx(20, abs=2)

    def test_cost_includes_store_fetch_timer(self):
        sim = Simulator()
        shaper = make(sim, queue_bytes=1e6)
        for i in range(20):
            shaper.receive(pkt(0, i))
        sim.run(until=5.0)
        snap = shaper.cost.snapshot()
        assert snap["pkt_store"] == 20
        assert snap["pkt_fetch"] == 20
        assert snap["timer"] == 20

    def test_classifier_policy_mismatch_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Shaper(sim, rate=1.0, policy=Policy.fair(2),
                   classifier=SlotClassifier(3), queue_bytes=1.0)

    def test_max_backlog_tracked(self):
        sim = Simulator()
        shaper = make(sim, queue_bytes=1e6)
        for i in range(10):
            shaper.receive(pkt(0, i))
        assert shaper.max_backlog_bytes >= 9 * 1500
