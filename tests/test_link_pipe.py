"""Tests for links, pipes, sinks and traces."""

import pytest

from repro.net.link import Link
from repro.net.packet import FlowId, Packet
from repro.net.pipe import Pipe
from repro.net.sink import CallbackSink, NullSink, TeeSink
from repro.net.trace import Trace
from repro.sim.simulator import Simulator

FLOW = FlowId(0, 0)


def make_packet(seq=0, size=1500):
    return Packet.data(FLOW, seq, 0.0, size=size)


class TestPipe:
    def test_delivers_after_delay(self):
        sim = Simulator()
        arrivals = []
        pipe = Pipe(sim, 0.05, CallbackSink(lambda p: arrivals.append(sim.now)))
        pipe.receive(make_packet())
        sim.run()
        assert arrivals == [pytest.approx(0.05)]

    def test_zero_delay_is_synchronous(self):
        sim = Simulator()
        arrivals = []
        pipe = Pipe(sim, 0.0, CallbackSink(lambda p: arrivals.append(p)))
        pipe.receive(make_packet())
        assert len(arrivals) == 1

    def test_counts(self):
        sim = Simulator()
        pipe = Pipe(sim, 0.01, NullSink())
        for i in range(3):
            pipe.receive(make_packet(i))
        sim.run()
        assert pipe.forwarded_packets == 3
        assert pipe.forwarded_bytes == 4500

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Pipe(Simulator(), -1.0, NullSink())


class TestLink:
    def test_serialization_delay(self):
        # 1500 B at 1500 B/s takes exactly 1 s, plus 0.5 s propagation.
        sim = Simulator()
        arrivals = []
        link = Link(sim, rate=1500.0, delay=0.5,
                    sink=CallbackSink(lambda p: arrivals.append(sim.now)))
        link.receive(make_packet())
        sim.run()
        assert arrivals == [pytest.approx(1.5)]

    def test_back_to_back_packets_serialize(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, rate=1500.0, delay=0.0,
                    sink=CallbackSink(lambda p: arrivals.append(sim.now)))
        link.receive(make_packet(0))
        link.receive(make_packet(1))
        sim.run()
        assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_drop_tail_buffer(self):
        sim = Simulator()
        # Buffer fits exactly one waiting packet; third arrival drops.
        link = Link(sim, rate=1500.0, delay=0.0, sink=NullSink(),
                    buffer_bytes=1500)
        link.receive(make_packet(0))  # in service
        link.receive(make_packet(1))  # buffered
        link.receive(make_packet(2))  # dropped
        sim.run()
        assert link.forwarded_packets == 2
        assert link.dropped_packets == 1

    def test_unbounded_buffer_never_drops(self):
        sim = Simulator()
        link = Link(sim, rate=15000.0, delay=0.0, sink=NullSink())
        for i in range(100):
            link.receive(make_packet(i))
        sim.run()
        assert link.dropped_packets == 0
        assert link.forwarded_packets == 100

    def test_backlog_accounting(self):
        sim = Simulator()
        link = Link(sim, rate=1500.0, delay=0.0, sink=NullSink())
        link.receive(make_packet(0))
        link.receive(make_packet(1))
        assert link.backlog_bytes == 1500  # one in service, one queued
        sim.run()
        assert link.backlog_bytes == 0

    def test_throughput_matches_rate(self):
        # A saturated link forwards at exactly its configured rate.
        sim = Simulator()
        sink = NullSink()
        link = Link(sim, rate=150_000.0, delay=0.0, sink=sink)
        for i in range(200):
            link.receive(make_packet(i))
        sim.run(until=1.0)
        assert sink.bytes == pytest.approx(150_000, rel=0.02)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Link(Simulator(), rate=0, delay=0, sink=NullSink())
        with pytest.raises(ValueError):
            Link(Simulator(), rate=1, delay=-1, sink=NullSink())


class TestTrace:
    def test_records_data_packets(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.receive(make_packet(0))
        trace.receive(make_packet(1, size=500))
        assert len(trace) == 2
        assert trace.total_bytes == 2000
        assert {r.seq for r in trace} == {0, 1}

    def test_data_only_skips_acks(self):
        sim = Simulator()
        trace = Trace(sim, data_only=True)
        trace.receive(Packet.ack(FLOW, 1, 0.0, echo_ts=0.0, echo_retransmit=False))
        assert len(trace) == 0

    def test_forwards_downstream(self):
        sim = Simulator()
        sink = NullSink()
        trace = Trace(sim, sink)
        trace.receive(make_packet())
        assert sink.count == 1

    def test_flows(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.receive(Packet.data(FlowId(0, 0), 0, 0.0))
        trace.receive(Packet.data(FlowId(0, 1), 0, 0.0))
        assert trace.flows() == {FlowId(0, 0), FlowId(0, 1)}


class TestTeeSink:
    def test_duplicates(self):
        a, b = NullSink(), NullSink()
        TeeSink(a, b).receive(make_packet())
        assert a.count == 1 and b.count == 1
