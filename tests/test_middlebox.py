"""Tests for the multi-aggregate middlebox."""

import pytest

from repro.net.middlebox import Middlebox
from repro.net.packet import FlowId, Packet
from repro.net.sink import NullSink
from repro.schemes import make_limiter
from repro.sim.simulator import Simulator
from repro.units import mbps, ms


def make_box(sim, aggregates=(0, 1)):
    box = Middlebox(sim)
    for agg in aggregates:
        limiter = make_limiter(sim, "bcpqp", rate=mbps(5), num_queues=2,
                               max_rtt=ms(50))
        limiter.connect(NullSink())
        box.add_aggregate(agg, limiter)
    return box


def test_routes_to_matching_limiter():
    sim = Simulator()
    box = make_box(sim)
    box.receive(Packet.data(FlowId(1, 0), 0, 0.0))
    assert box.limiter_for(1).stats.arrived_packets == 1
    assert box.limiter_for(0).stats.arrived_packets == 0


def test_unmatched_aggregate_counted():
    sim = Simulator()
    box = make_box(sim)
    box.receive(Packet.data(FlowId(7, 0), 0, 0.0))
    assert box.unmatched_packets == 1


def test_duplicate_registration_rejected():
    sim = Simulator()
    box = make_box(sim)
    with pytest.raises(ValueError):
        box.add_aggregate(0, box.limiter_for(1))


def test_aggregates_listing():
    sim = Simulator()
    box = make_box(sim, aggregates=(3, 1, 2))
    assert box.aggregates == [1, 2, 3]


def test_total_cycles_sums_limiters():
    sim = Simulator()
    box = make_box(sim)
    for i in range(5):
        box.receive(Packet.data(FlowId(0, 0), i, 0.0))
    assert box.total_cycles() > 0
