"""Tests for unit conversions."""

import pytest

from repro import units


def test_mbps_roundtrip():
    assert units.to_mbps(units.mbps(7.5)) == pytest.approx(7.5)


def test_mbps_bytes_per_second():
    assert units.mbps(8) == pytest.approx(1e6)  # 8 Mbit/s = 1 MB/s


def test_gbps_kbps_scale():
    assert units.gbps(1) == pytest.approx(1000 * units.mbps(1))
    assert units.mbps(1) == pytest.approx(1000 * units.kbps(1))


def test_time_units():
    assert units.ms(250) == pytest.approx(0.25)
    assert units.us(1500) == pytest.approx(0.0015)
    assert units.seconds(2) == 2.0


def test_data_units():
    assert units.kilobytes(1000) == pytest.approx(1e6)
    assert units.megabytes(1.5) == pytest.approx(1.5e6)


def test_bdp():
    # 10 Mbit/s x 100 ms = 125 kB = 83.3 packets
    rate = units.mbps(10)
    rtt = units.ms(100)
    assert units.bdp_bytes(rate, rtt) == pytest.approx(125_000)
    assert units.bdp_packets(rate, rtt) == pytest.approx(83.33, rel=1e-3)


def test_constants():
    assert units.MSS == 1500
    assert units.ACK_SIZE == 40
