"""Tests for the column-backed packet trace and its record view."""

import pytest

from repro.net.packet import FlowId, Packet
from repro.net.trace import PacketRecord, Trace
from repro.sim.simulator import Simulator


def _fill(trace, sim, n=5):
    """Send n data packets (and one ACK) through the trace."""
    for i in range(n):
        sim._now = 0.1 * i
        trace.receive(Packet.data(FlowId(0, i % 2), seq=i, sent_at=sim.now))
    sim._now = 0.1 * n
    trace.receive(Packet.ack(FlowId(0, 0), ack_next=n, sent_at=sim.now,
                             echo_ts=0.0, echo_retransmit=False))


class TestColumns:
    def test_columns_grow_in_lockstep(self):
        sim = Simulator()
        trace = Trace(sim)
        _fill(trace, sim)
        assert len(trace) == 5  # data_only drops the ACK
        assert len(trace.times) == len(trace.flow_ids) == len(trace.sizes) \
            == len(trace.data_flags) == len(trace.seqs) == 5

    def test_data_only_false_keeps_acks(self):
        sim = Simulator()
        trace = Trace(sim, data_only=False)
        _fill(trace, sim)
        assert len(trace) == 6
        assert trace.data_flags[-1] is False

    def test_total_bytes_is_a_running_counter(self):
        sim = Simulator()
        trace = Trace(sim)
        assert trace.total_bytes == 0
        _fill(trace, sim)
        assert trace.total_bytes == sum(trace.sizes)
        before = trace.total_bytes
        sim._now = 1.0
        trace.receive(Packet.data(FlowId(0, 0), seq=99, sent_at=sim.now))
        assert trace.total_bytes == before + trace.sizes[-1]

    def test_forwards_to_sink(self):
        sim = Simulator()
        seen = []

        class Sink:
            def receive(self, packet):
                seen.append(packet)

        trace = Trace(sim, Sink())
        _fill(trace, sim)
        assert len(seen) == 6  # ACKs are forwarded even when not recorded

    def test_flows(self):
        sim = Simulator()
        trace = Trace(sim)
        _fill(trace, sim)
        assert trace.flows() == {FlowId(0, 0), FlowId(0, 1)}


class TestRecordsView:
    def test_len_and_index(self):
        sim = Simulator()
        trace = Trace(sim)
        _fill(trace, sim)
        records = trace.records
        assert len(records) == 5
        first = records[0]
        assert isinstance(first, PacketRecord)
        assert first.time == trace.times[0]
        assert first.flow == trace.flow_ids[0]
        assert records[-1].seq == trace.seqs[-1]

    def test_slice(self):
        sim = Simulator()
        trace = Trace(sim)
        _fill(trace, sim)
        tail = trace.records[2:]
        assert [r.seq for r in tail] == trace.seqs[2:]

    def test_iteration_matches_columns(self):
        sim = Simulator()
        trace = Trace(sim)
        _fill(trace, sim)
        for i, record in enumerate(trace.records):
            assert record == PacketRecord(
                time=trace.times[i],
                flow=trace.flow_ids[i],
                size=trace.sizes[i],
                is_data=trace.data_flags[i],
                seq=trace.seqs[i],
            )

    def test_trace_iterates_as_records(self):
        sim = Simulator()
        trace = Trace(sim)
        _fill(trace, sim)
        assert [r.seq for r in trace] == trace.seqs

    def test_out_of_range_raises(self):
        sim = Simulator()
        trace = Trace(sim)
        _fill(trace, sim)
        with pytest.raises(IndexError):
            trace.records[99]
