"""Tests for the workload specs and the §6.1 aggregate generator."""

import pytest

from repro.units import mbps, ms
from repro.workload.aggregates import (
    CC_CHOICES,
    Section61Config,
    make_section61_aggregates,
)
from repro.workload.spec import FlowSpec, OnOffSpec


class TestSpecs:
    def test_flow_spec_validation(self):
        with pytest.raises(ValueError):
            FlowSpec(slot=-1)
        with pytest.raises(ValueError):
            FlowSpec(slot=0, rtt=0)
        with pytest.raises(ValueError):
            FlowSpec(slot=0, packets=0)
        with pytest.raises(ValueError):
            FlowSpec(slot=0, weight=0)

    def test_on_off_validation(self):
        with pytest.raises(ValueError):
            OnOffSpec(burst_packets_mean=0, off_time_mean=1)
        with pytest.raises(ValueError):
            OnOffSpec(burst_packets_mean=1, off_time_mean=-1)


class TestGenerator:
    def make(self, **kwargs):
        return make_section61_aggregates(Section61Config(**kwargs))

    def test_count_and_ids(self):
        aggs = self.make(num_aggregates=12)
        assert len(aggs) == 12
        assert [a.aggregate_id for a in aggs] == list(range(12))

    def test_rates_cycle(self):
        aggs = self.make(num_aggregates=6)
        rates = {a.rate for a in aggs}
        assert rates == {mbps(1.5), mbps(7.5), mbps(25)}

    def test_homogeneous_aggregates_share_cc_and_rtt(self):
        aggs = self.make(num_aggregates=12)
        for agg in aggs:
            if agg.homogeneous:
                assert len({f.cc for f in agg.flows}) == 1
                assert len({f.rtt for f in agg.flows}) == 1

    def test_heterogeneous_half_exists(self):
        aggs = self.make(num_aggregates=12)
        assert sum(1 for a in aggs if not a.homogeneous) == 6

    def test_kind_mix(self):
        aggs = self.make(num_aggregates=12)
        kinds = {a.kind for a in aggs}
        assert kinds == {"backlogged", "onoff", "mixed"}
        for agg in aggs:
            if agg.kind == "backlogged":
                assert all(f.on_off is None for f in agg.flows)
            elif agg.kind == "onoff":
                assert all(f.on_off is not None for f in agg.flows)
            else:
                assert any(f.on_off is None for f in agg.flows)
                assert any(f.on_off is not None for f in agg.flows)

    def test_rtts_in_range(self):
        cfg = Section61Config(num_aggregates=20)
        for agg in make_section61_aggregates(cfg):
            for f in agg.flows:
                assert cfg.min_rtt <= f.rtt <= cfg.max_rtt

    def test_ccs_from_choices(self):
        for agg in self.make(num_aggregates=20):
            for f in agg.flows:
                assert f.cc in CC_CHOICES

    def test_deterministic_from_seed(self):
        a = self.make(num_aggregates=8, seed=5)
        b = self.make(num_aggregates=8, seed=5)
        assert a == b
        c = self.make(num_aggregates=8, seed=6)
        assert a != c

    def test_slots_unique_within_aggregate(self):
        for agg in self.make(num_aggregates=10):
            slots = [f.slot for f in agg.flows]
            assert slots == list(range(len(slots)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Section61Config(num_aggregates=0)
        with pytest.raises(ValueError):
            Section61Config(flows_per_aggregate=0)
