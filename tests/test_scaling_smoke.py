"""Smoke tests for the drain-scalability regression guard.

The paper's Figure 5 claim — cost per packet stays flat as aggregates
grow — must hold for our own hot path now that the phantom drain is
O(log N).  Two guards:

* a deterministic one on *modeled* cycles/packet, which by design counts
  the paper's per-packet operations and so must not grow with N at all;
* a wall-clock one driven through ``benchmarks/report.py --check``, kept
  loose (CI machines are noisy) but far below the ~100x an O(N)-per-
  arrival drain would show at N=1000 vs N=10.

The event-engine overhaul rides the same marker: its deterministic
gates (heap pushes/packet, events/packet, peak heap vs the pinned
pre-overhaul engine) run exactly, with only the wall-clock speedup gate
loosened for CI noise.

Marked ``scaling`` so wall-clock-sensitive environments can deselect
them with ``-m "not scaling"``.
"""

import sys
from pathlib import Path

import pytest

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
if str(_BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS))

import report  # noqa: E402

pytestmark = pytest.mark.scaling


@pytest.fixture(scope="module")
def scaling():
    # One timing round keeps the smoke test quick; the ratio check below
    # is loose enough that a single median sample suffices.
    return report.scaling_section(rounds=1, ns=(10, 1000))


class TestScalingSmoke:
    def test_check_passes_at_loose_multiple(self, scaling):
        # An O(N)-per-arrival drain shows ~100x here; O(log N) shows ~1x.
        assert report.check_scaling(scaling, multiple=8.0) == []

    @pytest.mark.parametrize("scheme", report.SCALING_SCHEMES)
    def test_modeled_cycles_stay_flat(self, scaling, scheme):
        # Deterministic: the cost model charges the paper's per-packet
        # operations, so N=1000 must stay within jitter (window-roll and
        # activation transients) of N=10 — never a linear blowup.
        per_n = scaling["schemes"][scheme]
        small = per_n["10"]["modeled_cycles_per_packet"]
        big = per_n["1000"]["modeled_cycles_per_packet"]
        assert big <= 1.5 * small

    def test_check_flags_regressions(self):
        # The guard itself must trip when handed a linear blowup.
        fake = {
            "schemes": {
                "pqp": {
                    "10": {"seconds_per_packet": 1e-6},
                    "1000": {"seconds_per_packet": 1e-4},
                }
            }
        }
        failures = report.check_scaling(fake, multiple=3.0)
        assert len(failures) == 1 and "pqp" in failures[0]


@pytest.fixture(scope="module")
def eventloop():
    # Default horizon: the deterministic gates compare against the pinned
    # pre-overhaul counters, which were measured at the default workload.
    return report.eventloop_section()


class TestEventloopSmoke:
    def test_deterministic_gates_pass(self, eventloop):
        # min_speedup=0.6 keeps the wall gate loose on noisy CI boxes;
        # the heap-push / events-per-packet / peak-heap gates are exact.
        assert report.check_eventloop(eventloop, min_speedup=0.6) == []

    @pytest.mark.parametrize("scheme", report.PRE_PR_EVENTLOOP)
    def test_workload_unchanged_vs_pre_overhaul(self, eventloop, scheme):
        # Same packets arrived => the coalesced engine runs the *same*
        # simulation, so the per-packet counter ratios are meaningful.
        cell = eventloop["schemes"][scheme]
        assert (
            cell["arrived_packets"]
            == report.PRE_PR_EVENTLOOP[scheme]["arrived_packets"]
        )

    def test_check_flags_regressions(self):
        # Feed the gate a cell that regressed back to pre-overhaul costs.
        pre = report.PRE_PR_EVENTLOOP["bcpqp"]
        fake = {"schemes": {"bcpqp": dict(pre)}}
        failures = report.check_eventloop(fake, min_speedup=1.3)
        assert any("heap pushes" in f for f in failures)
        assert any("peak heap" in f for f in failures)
        assert any("speedup" in f for f in failures)
