"""Tests for the hierarchical DRR packet scheduler.

The long-run byte shares of the DRR realization must converge to the fluid
(GPS) shares of the same policy tree — checked for fixed and random trees.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.policy.tree import Policy
from repro.sched.drr import HierarchicalDrrScheduler
from repro.units import MSS


def run_scheduler(policy, backlog, rounds=2000, size=MSS):
    """Serve `rounds` packets from always-backlogged queues; return byte
    counts per queue.  `backlog[i]` False means queue i is always empty."""
    sched = HierarchicalDrrScheduler(policy)
    served = [0.0] * policy.num_queues
    heads = [size if b else None for b in backlog]
    for _ in range(rounds):
        q = sched.select(heads)
        if q is None:
            break
        served[q] += size
        sched.charge(size)
    return served


class TestBasicSelection:
    def test_all_empty_returns_none(self):
        sched = HierarchicalDrrScheduler(Policy.fair(3))
        assert sched.select([None, None, None]) is None

    def test_single_backlogged_queue_served(self):
        served = run_scheduler(Policy.fair(3), [False, True, False], rounds=10)
        assert served[1] > 0 and served[0] == served[2] == 0

    def test_head_sizes_length_checked(self):
        sched = HierarchicalDrrScheduler(Policy.fair(2))
        with pytest.raises(ValueError):
            sched.select([MSS])

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            HierarchicalDrrScheduler(Policy.fair(2), quantum=0)


class TestShareConvergence:
    def test_fair_shares(self):
        served = run_scheduler(Policy.fair(4), [True] * 4)
        total = sum(served)
        for s in served:
            assert s / total == pytest.approx(0.25, rel=0.05)

    def test_weighted_shares(self):
        policy = Policy.weighted([1, 2, 5])
        served = run_scheduler(policy, [True] * 3, rounds=4000)
        total = sum(served)
        assert served[0] / total == pytest.approx(1 / 8, rel=0.1)
        assert served[1] / total == pytest.approx(2 / 8, rel=0.1)
        assert served[2] / total == pytest.approx(5 / 8, rel=0.1)

    def test_strict_priority(self):
        policy = Policy.prioritized([0, 1])
        served = run_scheduler(policy, [True, True], rounds=100)
        assert served[1] == 0.0

    def test_priority_fallback(self):
        policy = Policy.prioritized([0, 1])
        served = run_scheduler(policy, [False, True], rounds=100)
        assert served[1] > 0

    def test_nested_shares(self):
        policy = Policy.nested([[1, 1], [1, 1]], group_weights=[2, 1])
        served = run_scheduler(policy, [True] * 4, rounds=6000)
        total = sum(served)
        assert served[0] / total == pytest.approx(1 / 3, rel=0.1)
        assert served[2] / total == pytest.approx(1 / 6, rel=0.15)

    def test_mixed_packet_sizes(self):
        """DRR is byte-fair, not packet-fair: a queue with small packets
        gets more packets, equal bytes."""
        policy = Policy.fair(2)
        sched = HierarchicalDrrScheduler(policy)
        served = [0.0, 0.0]
        sizes = [1500, 300]
        for _ in range(5000):
            heads = [sizes[0], sizes[1]]
            q = sched.select(heads)
            served[q] += sizes[q]
            sched.charge(sizes[q])
        assert served[0] / served[1] == pytest.approx(1.0, rel=0.1)


@settings(deadline=None, max_examples=25)
@given(
    weights=st.lists(st.floats(min_value=0.5, max_value=8), min_size=2, max_size=6),
    data=st.data(),
)
def test_drr_matches_fluid_shares(weights, data):
    """Property: DRR byte shares track Policy.fluid_rates for random
    weighted policies and random activity patterns."""
    n = len(weights)
    active = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    if not any(active):
        active[0] = True
    policy = Policy.weighted(weights)
    served = run_scheduler(policy, active, rounds=6000)
    fluid = policy.fluid_rates(active, sum(served) or 1.0)
    total = sum(served)
    if total == 0:
        return
    for i in range(n):
        assert served[i] / total == pytest.approx(
            fluid[i] / sum(fluid), abs=0.05
        )
