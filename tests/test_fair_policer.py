"""Tests for the FairPolicer baseline."""

import pytest

from repro.classify.classifier import SlotClassifier
from repro.limiters.fair_policer import FairPolicer
from repro.net.packet import FlowId, Packet
from repro.net.sink import NullSink
from repro.sim.simulator import Simulator


def make(sim, *, rate=15_000.0, bucket=30_000.0, n=2, weights=None):
    fp = FairPolicer(sim, rate=rate, bucket_bytes=bucket,
                     classifier=SlotClassifier(n), weights=weights)
    fp.connect(NullSink())
    return fp


def pkt(slot, seq=0, size=1500):
    return Packet.data(FlowId(0, slot), seq, 0.0, size=size)


def drive(sim, fp, slots, interval, until):
    """Send one packet per listed slot every `interval` seconds."""
    state = {"i": 0}

    def tick():
        for s in slots:
            fp.receive(pkt(s, state["i"]))
        state["i"] += 1
        if sim.now + interval < until:
            sim.schedule(interval, tick)

    sim.schedule(0.0, tick)
    sim.run(until=until)


class TestFairPolicer:
    def test_aggregate_rate_enforced(self):
        sim = Simulator()
        rate = 15_000.0
        fp = make(sim, rate=rate, bucket=7500.0)
        drive(sim, fp, [0, 1], interval=0.005, until=20.0)  # 600 kB/s demand
        assert fp.stats.forwarded_bytes == pytest.approx(rate * 20, rel=0.1)

    def test_equal_split_between_backlogged_flows(self):
        sim = Simulator()
        fp = make(sim, rate=15_000.0, bucket=7500.0)
        sent = {0: 0, 1: 0}

        class _Sink:
            def receive(self, p):
                sent[p.flow.slot] += 1

        fp.connect(_Sink())
        # Slot 0 sends 4x as often as slot 1 but should not get 4x through.
        def tick(i=[0]):
            fp.receive(pkt(0, i[0]))
            if i[0] % 4 == 0:
                fp.receive(pkt(1, i[0]))
            i[0] += 1
            sim.schedule(0.002, tick)

        sim.schedule(0.0, tick)
        sim.run(until=20.0)
        # Slot 1's demand (125 pkt/s x 1500 B = 187 kB/s) exceeds its fair
        # share (7.5 kB/s), so both flows are constrained; the aggressive
        # flow must not get more than ~2x the meek one (a plain policer
        # would give it ~4x).
        assert sent[1] > 0
        assert sent[0] / sent[1] < 2.5

    def test_idle_flow_tokens_reclaimed(self):
        sim = Simulator()
        fp = make(sim, rate=15_000.0, bucket=30_000.0)
        fp.receive(pkt(1))  # slot 1 appears briefly, then goes idle
        drive(sim, fp, [0], interval=0.01, until=5.0)
        # Slot 0 should now collect (almost) the entire rate.
        assert fp.stats.forwarded_bytes >= 0.8 * 15_000.0 * 5

    def test_weighted_variant_allocates_by_weight(self):
        sim = Simulator()
        fp = make(sim, rate=15_000.0, bucket=7500.0, weights=[3.0, 1.0])
        sent = {0: 0, 1: 0}

        class _Sink:
            def receive(self, p):
                sent[p.flow.slot] += 1

        fp.connect(_Sink())
        drive(sim, fp, [0, 1], interval=0.002, until=20.0)
        # Token grants are weight-proportional, so the heavier flow gets
        # more — though the equal per-flow caps keep it from reaching a
        # clean 3:1 (the §6.3.2 deficiency this baseline demonstrates).
        assert sent[0] > sent[1]

    def test_flow_bucket_accessor(self):
        sim = Simulator()
        fp = make(sim)
        fp.receive(pkt(0))
        assert fp.flow_bucket(0) >= 0.0

    def test_invalid_params(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FairPolicer(sim, rate=0, bucket_bytes=1,
                        classifier=SlotClassifier(1))
        with pytest.raises(ValueError):
            FairPolicer(sim, rate=1, bucket_bytes=0,
                        classifier=SlotClassifier(1))
        with pytest.raises(ValueError):
            FairPolicer(sim, rate=1, bucket_bytes=1,
                        classifier=SlotClassifier(2), weights=[1.0])

    def test_per_packet_token_work_costed(self):
        sim = Simulator()
        fp = make(sim)
        for i in range(10):
            fp.receive(pkt(0, i))
        snap = fp.cost.snapshot()
        assert snap["map"] == 10
        assert snap["alu"] > 10  # per-packet generation + allocation
