"""Adversarial robustness: TCP must survive arbitrary loss patterns.

The whole reproduction rests on the sender's loss machinery (SACK
scoreboard, RACK, TLP, RTO) behaving under the hostile drop patterns rate
limiters generate.  These property tests throw randomized loss at a flow
and assert the two non-negotiable invariants:

* the flow eventually completes (no deadlock, no lost-forever data);
* the receiver ends with exactly the contiguous sequence space.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cc.base import make_cc
from repro.cc.endpoint import TcpReceiver, TcpSender
from repro.net.packet import FlowId, Packet
from repro.net.pipe import Pipe
from repro.sim.simulator import Simulator

FLOW = FlowId(0, 0)


class RandomLossGate:
    """Drops data packets according to a pre-drawn boolean tape."""

    def __init__(self, sim, delay, sink, tape):
        self._pipe = Pipe(sim, delay, sink)
        self._tape = tape
        self._i = 0
        self.dropped = 0

    def receive(self, packet: Packet) -> None:
        drop = self._tape[self._i % len(self._tape)]
        self._i += 1
        if drop:
            self.dropped += 1
            return
        self._pipe.receive(packet)


def run_flow(cc_name, tape, *, total=120, rtt=0.04):
    sim = Simulator()
    parts = {}

    class _Sink:
        def receive(self, p):
            parts["receiver"].receive(p)

    gate = RandomLossGate(sim, rtt / 2, _Sink(), tape)
    sender = TcpSender(sim, FLOW, make_cc(cc_name), gate,
                       total_packets=total, initial_rtt=rtt)
    reverse = Pipe(sim, rtt / 2, sender)
    parts["receiver"] = TcpReceiver(sim, reverse)
    sim.run(until=1200.0)
    return sender, parts["receiver"], gate


@st.composite
def loss_tape(draw):
    """A drop tape with density capped at ~1/3.

    Unbounded density is deliberately avoided: deterministic >50% loss can
    phase-lock with the exponentially backed-off RTO, and real TCP also
    takes minutes to crawl through such links — not a property worth
    asserting on a bounded-time run.
    """
    length = draw(st.integers(min_value=9, max_value=41))
    drops = draw(st.sets(st.integers(min_value=0, max_value=length - 1),
                         max_size=length // 3))
    return [i in drops for i in range(length)]


class TestLossRobustness:
    @settings(deadline=None, max_examples=20)
    @given(tape=loss_tape())
    def test_reno_always_completes_exactly(self, tape):
        sender, receiver, gate = run_flow("reno", tape)
        assert sender.done, f"stalled with {gate.dropped} drops"
        assert receiver.rcv_nxt == 120
        assert receiver.sack_ranges == ()

    @settings(deadline=None, max_examples=10)
    @given(tape=loss_tape())
    def test_bbr_always_completes_exactly(self, tape):
        sender, receiver, gate = run_flow("bbr", tape)
        assert sender.done
        assert receiver.rcv_nxt == 120

    @settings(deadline=None, max_examples=10)
    @given(tape=loss_tape())
    def test_cubic_always_completes_exactly(self, tape):
        sender, receiver, _gate = run_flow("cubic", tape)
        assert sender.done
        assert receiver.rcv_nxt == 120

    @pytest.mark.parametrize("cc", ["reno", "cubic", "bbr", "vegas"])
    def test_periodic_heavy_loss(self, cc):
        """Every third packet dropped — sustained 33% loss."""
        sender, receiver, _ = run_flow(cc, [True, False, False], total=80)
        assert sender.done
        assert receiver.rcv_nxt == 80

    @pytest.mark.parametrize("cc", ["reno", "cubic", "bbr", "vegas"])
    def test_alternating_loss(self, cc):
        """50% alternating loss: worst pattern short of a dead link."""
        sender, receiver, _ = run_flow(cc, [True, False], total=50)
        assert sender.done
        assert receiver.rcv_nxt == 50

    def test_no_spurious_data_beyond_flow_length(self):
        sender, receiver, _ = run_flow("reno", [False], total=40)
        assert sender.snd_nxt == 40
        assert receiver.rcv_nxt == 40
