"""Tests for the TCP sender/receiver machinery.

A controllable lossy gate between sender and receiver lets each test drop
exactly the packets it wants, exercising SACK recovery, RACK re-marking,
TLP probes and the RTO backstop deterministically.
"""

import pytest

from repro.cc.base import CongestionControl
from repro.cc.endpoint import FlowDemux, TcpReceiver, TcpSender
from repro.cc.reno import NewReno
from repro.net.packet import FlowId, Packet
from repro.net.pipe import Pipe
from repro.sim.simulator import Simulator

FLOW = FlowId(0, 0)


class FixedWindow(CongestionControl):
    """A controller with a constant window — isolates sender mechanics."""

    name = "fixed"

    def on_ack(self, sample):
        pass


class LossyGate:
    """Forwards packets through a delay pipe, dropping selected seqs once."""

    def __init__(self, sim, delay, sink):
        self._pipe = Pipe(sim, delay, sink)
        self.drop_once: set[int] = set()
        self.drop_all = False
        self.forwarded: list[int] = []
        self.dropped: list[int] = []

    def receive(self, packet: Packet) -> None:
        if self.drop_all or packet.seq in self.drop_once:
            self.drop_once.discard(packet.seq)
            self.dropped.append(packet.seq)
            return
        self.forwarded.append(packet.seq)
        self._pipe.receive(packet)


def make_connection(sim, *, cc=None, total=None, rtt=0.1):
    """sender -> gate -> receiver -> pipe -> sender, RTT = rtt."""
    parts = {}
    fwd_sink = lambda p: parts["receiver"].receive(p)  # noqa: E731

    class _Sink:
        def receive(self, p):
            fwd_sink(p)

    gate = LossyGate(sim, rtt / 2, _Sink())
    sender = TcpSender(sim, FLOW, cc or FixedWindow(initial_cwnd=10),
                       gate, total_packets=total)
    reverse = Pipe(sim, rtt / 2, sender)
    receiver = TcpReceiver(sim, reverse)
    parts["receiver"] = receiver
    return sender, gate, receiver


class TestBasicTransfer:
    def test_finite_flow_completes(self):
        sim = Simulator()
        sender, gate, receiver = make_connection(sim, total=50)
        sim.run(until=10.0)
        assert sender.done
        assert receiver.rcv_nxt == 50
        assert sender.retransmits == 0

    def test_completion_callback(self):
        sim = Simulator()
        done = []
        cc = FixedWindow(initial_cwnd=10)
        gate_sink = {}

        class _S:
            def receive(self, p):
                gate_sink["r"].receive(p)

        gate = LossyGate(sim, 0.05, _S())
        sender = TcpSender(sim, FLOW, cc, gate, total_packets=20,
                           on_complete=lambda s, t: done.append(t))
        reverse = Pipe(sim, 0.05, sender)
        gate_sink["r"] = TcpReceiver(sim, reverse)
        sim.run(until=10.0)
        assert len(done) == 1 and done[0] == sender.completed_at

    def test_window_limits_inflight(self):
        sim = Simulator()
        sender, gate, _ = make_connection(sim, cc=FixedWindow(initial_cwnd=5))
        sim.run(until=0.049)  # before first ACK returns
        assert sender.snd_nxt == 5

    def test_srtt_estimated(self):
        sim = Simulator()
        sender, _, _ = make_connection(sim, total=20, rtt=0.08)
        sim.run(until=5.0)
        assert sender.srtt == pytest.approx(0.08, rel=0.05)

    def test_start_time_respected(self):
        sim = Simulator()
        gate_sink = {}

        class _S:
            def receive(self, p):
                gate_sink["r"].receive(p)

        gate = LossyGate(sim, 0.01, _S())
        sender = TcpSender(sim, FLOW, FixedWindow(), gate,
                           total_packets=5, start_time=2.0)
        gate_sink["r"] = TcpReceiver(sim, Pipe(sim, 0.01, sender))
        sim.run(until=1.9)
        assert sender.packets_sent == 0
        sim.run(until=5.0)
        assert sender.done


class TestSackRecovery:
    def test_single_loss_recovered_without_rto(self):
        sim = Simulator()
        sender, gate, receiver = make_connection(sim, total=100)
        gate.drop_once.add(20)
        sim.run(until=20.0)
        assert sender.done
        assert sender.timeouts == 0
        assert sender.retransmits >= 1
        assert receiver.rcv_nxt == 100

    def test_burst_loss_recovered_without_rto(self):
        sim = Simulator()
        cc = FixedWindow(initial_cwnd=40)
        sender, gate, receiver = make_connection(sim, cc=cc, total=300)
        gate.drop_once.update(range(50, 80))
        sim.run(until=30.0)
        assert sender.done
        assert sender.timeouts == 0
        assert receiver.rcv_nxt == 300

    def test_loss_event_counted_once_per_episode(self):
        sim = Simulator()
        cc = FixedWindow(initial_cwnd=30)
        sender, gate, _ = make_connection(sim, cc=cc, total=200)
        gate.drop_once.update(range(40, 50))
        sim.run(until=30.0)
        assert sender.loss_events == 1

    def test_lost_retransmission_recovered(self):
        """A retransmit that is dropped again is re-detected (RACK)."""
        sim = Simulator()
        cc = FixedWindow(initial_cwnd=20)
        sender, gate, receiver = make_connection(sim, cc=cc, total=150)
        # Drop seq 30 twice: original and first retransmission.
        gate.drop_once.add(30)
        original_transmit = sender._transmit
        state = {"dropped_retx": False}

        def hook(seq, *, retransmit):
            if seq == 30 and retransmit and not state["dropped_retx"]:
                state["dropped_retx"] = True
                gate.drop_once.add(30)
            original_transmit(seq, retransmit=retransmit)

        sender._transmit = hook
        sim.run(until=30.0)
        assert sender.done
        assert state["dropped_retx"]
        assert receiver.rcv_nxt == 150

    def test_inflight_accounts_sacked_and_lost(self):
        sim = Simulator()
        cc = FixedWindow(initial_cwnd=10)
        sender, gate, _ = make_connection(sim, cc=cc, total=100)
        gate.drop_once.update({10, 11})
        sim.run(until=30.0)
        assert sender.done
        assert sender.inflight == 0


class TestTailLossProbe:
    def test_tail_loss_recovered_by_probe_not_rto(self):
        sim = Simulator()
        cc = FixedWindow(initial_cwnd=10)
        sender, gate, receiver = make_connection(sim, cc=cc, total=50)
        # Drop the last 3 packets of the flow: no later SACKs, so only a
        # probe (or an RTO) can recover them.
        gate.drop_once.update({47, 48, 49})
        sim.run(until=30.0)
        assert sender.done
        assert sender.tlp_probes >= 1
        assert sender.timeouts == 0

    def test_whole_flight_loss_survives(self):
        sim = Simulator()
        cc = FixedWindow(initial_cwnd=10)
        sender, gate, receiver = make_connection(sim, cc=cc, total=80)
        gate.drop_once.update(range(20, 30))  # a full window at the time
        sim.run(until=30.0)
        assert sender.done
        assert receiver.rcv_nxt == 80


class TestRtoBackstop:
    def test_blackout_triggers_rto_and_recovers(self):
        sim = Simulator()
        sender, gate, receiver = make_connection(sim, total=60)
        sim.run(until=0.3)
        gate.drop_all = True
        sim.run(until=1.5)  # everything (incl. probes) is lost
        gate.drop_all = False
        sim.run(until=30.0)
        assert sender.timeouts >= 1
        assert sender.done
        assert receiver.rcv_nxt == 60

    def test_rto_backs_off_exponentially(self):
        sim = Simulator()
        sender, gate, _ = make_connection(sim, total=60)
        sim.run(until=0.3)
        base = sender.rto
        gate.drop_all = True
        sim.run(until=4.0)
        assert sender.rto >= 2 * base
        assert sender.timeouts >= 2


class TestRenoIntegration:
    def test_reno_flow_over_lossless_path(self):
        sim = Simulator()
        sender, gate, receiver = make_connection(
            sim, cc=NewReno(initial_cwnd=10), total=400, rtt=0.05)
        sim.run(until=30.0)
        assert sender.done
        assert sender.retransmits == 0
        # Slow start should have grown the window well beyond the initial.
        assert sender.cc.cwnd > 10


class TestReceiver:
    def ack_collector(self, sim):
        acks = []

        class _Sink:
            def receive(self, p):
                acks.append(p)

        return TcpReceiver(sim, _Sink()), acks

    def test_cumulative_ack_advances(self):
        sim = Simulator()
        recv, acks = self.ack_collector(sim)
        for seq in range(3):
            recv.receive(Packet.data(FLOW, seq, 0.0))
        assert acks[-1].ack_next == 3

    def test_out_of_order_generates_sack(self):
        sim = Simulator()
        recv, acks = self.ack_collector(sim)
        recv.receive(Packet.data(FLOW, 0, 0.0))
        recv.receive(Packet.data(FLOW, 2, 0.0))
        assert acks[-1].ack_next == 1
        assert acks[-1].sack == ((2, 3),)

    def test_hole_fill_drains_ooo(self):
        sim = Simulator()
        recv, acks = self.ack_collector(sim)
        for seq in (0, 2, 3, 4, 1):
            recv.receive(Packet.data(FLOW, seq, 0.0))
        assert acks[-1].ack_next == 5
        assert acks[-1].sack == ()

    def test_sack_triggering_block_first(self):
        """RFC 2018: the first block contains the triggering segment."""
        sim = Simulator()
        recv, acks = self.ack_collector(sim)
        recv.receive(Packet.data(FLOW, 5, 0.0))
        recv.receive(Packet.data(FLOW, 2, 0.0))
        assert acks[-1].sack[0] == (2, 3)
        recv.receive(Packet.data(FLOW, 6, 0.0))
        assert acks[-1].sack[0] == (5, 7)

    def test_range_merging(self):
        sim = Simulator()
        recv, _ = self.ack_collector(sim)
        for seq in (5, 7, 6):
            recv.receive(Packet.data(FLOW, seq, 0.0))
        assert recv.sack_ranges == ((5, 8),)

    def test_duplicate_counted(self):
        sim = Simulator()
        recv, _ = self.ack_collector(sim)
        recv.receive(Packet.data(FLOW, 0, 0.0))
        recv.receive(Packet.data(FLOW, 0, 0.0))
        assert recv.duplicates == 1

    def test_duplicate_inside_ooo_range(self):
        sim = Simulator()
        recv, _ = self.ack_collector(sim)
        recv.receive(Packet.data(FLOW, 5, 0.0))
        recv.receive(Packet.data(FLOW, 5, 0.0))
        assert recv.duplicates == 1
        assert recv.sack_ranges == ((5, 6),)

    def test_max_three_sack_blocks(self):
        sim = Simulator()
        recv, acks = self.ack_collector(sim)
        for seq in (2, 4, 6, 8, 10):
            recv.receive(Packet.data(FLOW, seq, 0.0))
        assert len(acks[-1].sack) == 3


class TestFlowDemux:
    def test_routes_by_flow(self):
        demux = FlowDemux()
        got = []

        class _Sink:
            def __init__(self, tag):
                self.tag = tag

            def receive(self, p):
                got.append(self.tag)

        demux.register(FlowId(0, 0), _Sink("a"))
        demux.register(FlowId(0, 1), _Sink("b"))
        demux.receive(Packet.data(FlowId(0, 1), 0, 0.0))
        assert got == ["b"]

    def test_unroutable_counted(self):
        demux = FlowDemux()
        demux.receive(Packet.data(FlowId(9, 9), 0, 0.0))
        assert demux.unroutable == 1

    def test_unregister(self):
        demux = FlowDemux()
        demux.register(FLOW, None)  # type: ignore[arg-type]
        demux.unregister(FLOW)
        demux.receive(Packet.data(FLOW, 0, 0.0))
        assert demux.unroutable == 1
