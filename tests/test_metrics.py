"""Tests for metrics: fairness, stats, series, throughput extraction."""

import math
import statistics

import pytest
from hypothesis import assume, given, strategies as st

from repro.metrics.fairness import jain_index, weighted_jain_index
from repro.metrics.series import TimeSeries, WindowedRate
from repro.metrics.stats import cdf_points, mean, percentile, summarize
from repro.metrics.throughput import (
    aggregate_throughput_series,
    binned_bytes,
    burst_factor,
    flow_bytes,
    per_flow_throughput_series,
    per_slot_throughput_series,
)
from repro.net.packet import FlowId
from repro.net.trace import PacketRecord, Trace
from repro.sim.simulator import Simulator


class TestJain:
    def test_perfect_fairness(self):
        assert jain_index([5, 5, 5]) == pytest.approx(1.0)

    def test_total_unfairness(self):
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50))
    def test_bounds(self, values):
        idx = jain_index(values)
        assert 0.0 <= idx <= 1.0 + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1,
                    max_size=20),
           st.floats(min_value=0.1, max_value=100))
    def test_scale_invariance(self, values, k):
        assert jain_index(values) == pytest.approx(
            jain_index([v * k for v in values]), rel=1e-6)

    def test_weighted_perfect(self):
        assert weighted_jain_index([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_weighted_detects_violation(self):
        # Equal throughput with weights 1:3 is unfair in weighted terms.
        assert weighted_jain_index([2, 2], [1, 3]) < 0.9

    def test_weighted_validation(self):
        with pytest.raises(ValueError):
            weighted_jain_index([1], [1, 2])
        with pytest.raises(ValueError):
            weighted_jain_index([1], [0])


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_is_nan(self):
        # A mean of nothing is not 0.0 — an empty sample must poison
        # downstream arithmetic, not silently read as "zero throughput".
        assert math.isnan(mean([]))

    def test_percentile_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5
        assert percentile([1, 2, 3, 4], 0) == 1
        assert percentile([1, 2, 3, 4], 100) == 4

    def test_percentile_single(self):
        assert percentile([7], 99) == 7

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=100),
           st.floats(min_value=0, max_value=100))
    def test_percentile_within_range(self, values, p):
        result = percentile(values, p)
        assert min(values) <= result <= max(values)

    def test_cdf_points(self):
        assert cdf_points([3, 1]) == [(1, 0.5), (3, 1.0)]

    def test_summarize(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s["mean"] == 3.0
        assert s["max"] == 5.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=60),
           st.floats(min_value=0, max_value=100),
           st.floats(min_value=0, max_value=100))
    def test_percentile_monotone_in_p(self, values, p1, p2):
        lo, hi = sorted((p1, p2))
        span = max(abs(v) for v in values) + 1.0
        assert percentile(values, lo) <= percentile(values, hi) + 1e-9 * span

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                    max_size=60),
           st.integers(min_value=1, max_value=99))
    def test_percentile_matches_statistics_quantiles(self, values, p):
        expected = statistics.quantiles(values, n=100, method="inclusive")
        span = max(abs(v) for v in values) + 1.0
        assert percentile(values, p) == pytest.approx(
            expected[p - 1], abs=1e-9 * span)


class TestTimeSeries:
    def test_append_and_iterate(self):
        ts = TimeSeries()
        ts.append(0.0, 1.0)
        ts.append(1.0, 2.0)
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
        assert len(ts) == 2

    def test_monotonic_times_enforced(self):
        ts = TimeSeries()
        ts.append(1.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(0.5, 1.0)

    def test_window_and_aggregates(self):
        ts = TimeSeries()
        for i in range(10):
            ts.append(float(i), float(i))
        w = ts.window(2.0, 5.0)
        assert w.times == [2.0, 3.0, 4.0]
        assert ts.max() == 9.0
        assert ts.mean() == 4.5

    def test_empty_aggregates(self):
        ts = TimeSeries()
        assert ts.max() == 0.0
        assert ts.mean() == 0.0


class TestWindowedRate:
    def test_bins_bytes_into_rates(self):
        wr = WindowedRate(1.0)
        wr.record(0.2, 500)
        wr.record(0.7, 500)
        wr.record(1.5, 2000)
        series = wr.finish(3.0)
        assert series.values == [1000.0, 2000.0, 0.0]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedRate(0.0)


def rec(t, slot=0, size=1500, incarnation=0):
    return PacketRecord(time=t, flow=FlowId(0, slot, incarnation),
                        size=size, is_data=True, seq=0)


class TestThroughputExtraction:
    def test_aggregate_series(self):
        records = [rec(0.1), rec(0.2), rec(1.1)]
        series = aggregate_throughput_series(records, window=1.0,
                                             start=0.0, end=2.0)
        assert series.values == [3000.0, 1500.0]

    def test_zero_windows_present(self):
        records = [rec(0.1)]
        series = aggregate_throughput_series(records, window=1.0,
                                             start=0.0, end=3.0)
        assert series.values == [1500.0, 0.0, 0.0]

    def test_per_flow_split(self):
        records = [rec(0.1, slot=0), rec(0.2, slot=1), rec(0.3, slot=1)]
        by_flow = per_flow_throughput_series(records, window=1.0,
                                             start=0.0, end=1.0)
        assert by_flow[FlowId(0, 0)].values == [1500.0]
        assert by_flow[FlowId(0, 1)].values == [3000.0]

    def test_per_slot_merges_incarnations(self):
        records = [rec(0.1, slot=0, incarnation=0),
                   rec(0.2, slot=0, incarnation=1)]
        by_slot = per_slot_throughput_series(records, window=1.0,
                                             start=0.0, end=1.0)
        assert by_slot[0].values == [3000.0]

    def test_records_outside_interval_ignored(self):
        records = [rec(5.0)]
        series = aggregate_throughput_series(records, window=1.0,
                                             start=0.0, end=2.0)
        assert sum(series.values) == 0.0

    def test_flow_bytes(self):
        records = [rec(0.1, slot=0), rec(0.2, slot=0), rec(0.3, slot=1)]
        totals = flow_bytes(records)
        assert totals[FlowId(0, 0)] == 3000
        assert totals[FlowId(0, 1)] == 1500

    def test_burst_factor(self):
        ts = TimeSeries()
        for i in range(99):
            ts.append(float(i), 100.0)
        ts.append(99.0, 500.0)
        assert burst_factor(ts, rate=100.0, p=50) == pytest.approx(1.0)
        assert burst_factor(ts, rate=100.0, p=100) == pytest.approx(5.0)

    def test_burst_factor_validation(self):
        with pytest.raises(ValueError):
            burst_factor(TimeSeries(), rate=0.0)

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            aggregate_throughput_series([], window=1.0, start=2.0, end=1.0)
        with pytest.raises(ValueError):
            aggregate_throughput_series([], window=0.0, start=0.0, end=1.0)


class TestBinBoundaryClamp:
    """Regression: a timestamp one ULP below the binning limit can still
    divide to index ``nbins`` after FP rounding (e.g. window 0.1 over
    [0, 0.9): nextafter(0.9, 0) * (1/0.1) == 9.0).  The binners must
    clamp it into the last bin instead of raising IndexError."""

    WINDOW = 0.1
    END = 0.9
    T = math.nextafter(0.9, 0.0)

    def test_timestamp_is_adversarial(self):
        # The premise of the regression: in range, but dividing to nbins.
        assert self.T < self.END
        assert int(self.T * (1.0 / self.WINDOW)) == 9

    def test_generic_fallback_clamps_into_last_bin(self):
        series = aggregate_throughput_series(
            [rec(self.T)], window=self.WINDOW, start=0.0, end=self.END)
        assert len(series.values) == 9
        assert series.values[-1] == pytest.approx(1500 / self.WINDOW)
        assert sum(series.values[:-1]) == 0.0

    def test_column_fast_path_clamps_into_last_bin(self):
        trace = Trace(Simulator())
        trace.times.append(self.T)
        trace.flow_ids.append(FlowId(0, 0))
        trace.sizes.append(1500)
        trace.data_flags.append(True)
        trace.seqs.append(0)
        agg = aggregate_throughput_series(
            trace, window=self.WINDOW, start=0.0, end=self.END)
        assert agg.values[-1] == pytest.approx(1500 / self.WINDOW)
        by_flow = per_flow_throughput_series(
            trace, window=self.WINDOW, start=0.0, end=self.END)
        assert by_flow[FlowId(0, 0)].values[-1] == pytest.approx(
            1500 / self.WINDOW)
        by_slot = per_slot_throughput_series(
            trace, window=self.WINDOW, start=0.0, end=self.END)
        assert by_slot[0].values[-1] == pytest.approx(1500 / self.WINDOW)

    @given(st.floats(min_value=0.0, max_value=10.0),
           st.floats(min_value=1e-3, max_value=2.0))
    def test_in_range_timestamps_never_raise(self, t, window):
        end = 10.0 + window  # at least one full bin
        # The record lands in exactly one bin — never an IndexError, and
        # (since the partial-window fold) never silently excluded either.
        assert sum(binned_bytes(
            [rec(t)], window=window, start=0.0, end=end)) == 1500


class TestAwkwardExtents:
    """Regression: ``nbins = int((end - start) / window)`` FP-truncated.

    0.7 / 0.1 computes to 6.999...9, so an extent that is exactly seven
    windows silently produced six bins; and a genuinely fractional extent
    (e.g. 0.6 / 0.25) silently excluded every record in the trailing
    partial window."""

    def test_whole_multiple_rounds_up(self):
        # 0.7/0.1 is one ULP below 7.0 — must yield 7 bins, not 6.
        series = aggregate_throughput_series(
            [], window=0.1, start=0.0, end=0.7)
        assert len(series.values) == 7
        assert series.times[-1] == pytest.approx(0.6)

    @pytest.mark.parametrize("window,start,end,expected", [
        (0.1, 0.0, 0.7, 7),
        (0.1, 0.0, 0.9, 9),
        (0.25, 0.5, 2.0, 6),      # fig extents: exact multiples stay exact
        (0.1, 0.3, 1.0, 7),       # (1.0-0.3)/0.1 again one ULP below 7
        (0.25, 0.0, 0.6, 3),      # genuinely fractional: 2 whole + partial
        (0.3, 0.0, 1.0, 4),       # 3 whole + a 0.1-wide partial
    ])
    def test_bin_counts(self, window, start, end, expected):
        series = aggregate_throughput_series(
            [], window=window, start=start, end=end)
        assert len(series.values) == expected

    def test_partial_window_records_counted(self):
        # Records in [start + whole*window, end) used to vanish.
        series = aggregate_throughput_series(
            [rec(0.55)], window=0.25, start=0.0, end=0.6)
        assert len(series.values) == 3
        # The partial bin covers [0.5, 0.6): its rate divides by the true
        # 0.1 s width, not the nominal 0.25 s window.
        assert series.values[-1] == pytest.approx(1500 / 0.1)
        assert sum(binned_bytes(
            [rec(0.55)], window=0.25, start=0.0, end=0.6)) == 1500

    def test_partial_window_rate_uses_true_width(self):
        # A full-rate sender in the partial bin reads as its actual rate.
        records = [rec(0.5 + 0.01 * i, size=100) for i in range(10)]
        series = aggregate_throughput_series(
            records, window=0.25, start=0.0, end=0.6)
        assert series.values[-1] == pytest.approx(1000 / 0.1)

    @given(st.lists(st.tuples(
               st.floats(min_value=0.0, max_value=1.0),
               st.integers(min_value=1, max_value=9000)),
               max_size=40),
           st.floats(min_value=1e-3, max_value=0.5),
           st.floats(min_value=0.0, max_value=0.3),
           st.floats(min_value=0.31, max_value=1.5))
    def test_binned_bytes_conserved(self, packets, window, start, end):
        assume(end - start >= window)
        records = [rec(t, size=size) for t, size in packets]
        in_range = sum(size for t, size in packets if start <= t < end)
        acc = binned_bytes(records, window=window, start=start, end=end)
        # Integer packet sizes accumulate exactly in floats: conservation
        # is exact, for every window/extent combination.
        assert sum(acc) == in_range
