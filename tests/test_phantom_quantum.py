"""Tests for the quantum (batched DRR) phantom service discipline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.phantom import PhantomQueueSet
from repro.policy.tree import Policy


def make(service, n=2, rate=1500.0, cap=1e6, policy=None):
    return PhantomQueueSet(policy or Policy.fair(n), rate, [cap] * n,
                           service=service)


class TestQuantumService:
    def test_drains_at_configured_rate(self):
        q = make("quantum", n=1, rate=1000.0)
        q.try_enqueue(0, 5000)
        q.advance(2.0)
        assert q.length(0) == pytest.approx(3000.0)

    def test_no_service_accrues_while_idle(self):
        """A policer holds no tokens beyond the queues themselves: service
        budget must not pile up across idle periods."""
        q = make("quantum", n=1, rate=1000.0)
        q.advance(100.0)  # long idle
        q.try_enqueue(0, 5000)
        q.advance(100.5)
        assert q.length(0) == pytest.approx(4500.0)

    def test_fair_long_run_split(self):
        q = make("quantum", n=2, rate=3000.0)
        q.try_enqueue(0, 60_000)
        q.try_enqueue(1, 60_000)
        q.advance(20.0)
        assert q.length(0) == pytest.approx(30_000.0, rel=0.1)
        assert q.length(1) == pytest.approx(30_000.0, rel=0.1)

    def test_weighted_split(self):
        # DRR converges to the weight ratio as the drain lengthens (each
        # scheduler cycle serves whole weight-scaled quanta).
        q = PhantomQueueSet(Policy.weighted([3, 1]), 4000.0, [1e7] * 2,
                            service="quantum")
        q.try_enqueue(0, 1_000_000)
        q.try_enqueue(1, 1_000_000)
        q.advance(100.0)
        drained0 = 1_000_000 - q.length(0)
        drained1 = 1_000_000 - q.length(1)
        assert drained0 / drained1 == pytest.approx(3.0, rel=0.05)

    def test_priority_serves_high_first(self):
        q = PhantomQueueSet(Policy.prioritized([0, 1]), 1000.0, [1e6] * 2,
                            service="quantum")
        q.try_enqueue(0, 2000)
        q.try_enqueue(1, 2000)
        q.advance(2.0)
        assert q.length(0) == pytest.approx(0.0, abs=1.0)
        assert q.length(1) == pytest.approx(2000.0, abs=1.0)

    def test_magic_clamps_like_fluid(self):
        q = make("quantum", n=1, rate=1000.0, cap=5000.0)
        q.try_enqueue(0, 1000)
        q.fill_with_magic(0)
        q.advance(2.0)
        assert q.magic_bytes(0) == pytest.approx(3000.0)

    def test_unknown_service_rejected(self):
        with pytest.raises(ValueError):
            make("turbo")

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ValueError):
            PhantomQueueSet(Policy.fair(1), 1.0, [1.0], quantum=0)


class TestFluidQuantumEquivalence:
    @settings(deadline=None, max_examples=30)
    @given(
        weights=st.lists(st.floats(min_value=0.5, max_value=5),
                         min_size=2, max_size=4),
        fills=st.lists(st.floats(min_value=5_000, max_value=100_000),
                       min_size=2, max_size=4),
    )
    def test_long_run_drain_shares_match(self, weights, fills):
        """Property: over a long backlogged drain, quantum DRR service
        removes (nearly) the same bytes per queue as the fluid GPS."""
        n = min(len(weights), len(fills))
        weights, fills = weights[:n], fills[:n]
        policy = Policy.weighted(weights)
        results = {}
        for service in ("fluid", "quantum"):
            q = PhantomQueueSet(policy, 5000.0, [1e9] * n, service=service)
            for i, f in enumerate(fills):
                q.try_enqueue(i, f)
            q.advance(5.0)
            results[service] = [fills[i] - q.length(i) for i in range(n)]
        for a, b in zip(results["fluid"], results["quantum"]):
            assert a == pytest.approx(b, abs=3 * 1500.0)

    def test_total_drain_identical(self):
        for service in ("fluid", "quantum"):
            q = make(service, n=3, rate=3000.0)
            for i in range(3):
                q.try_enqueue(i, 50_000)
            q.advance(10.0)
            assert q.drained_bytes == pytest.approx(30_000.0, abs=1500.0)
