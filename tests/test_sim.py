"""Tests for the discrete-event simulator core."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import EventHandle
from repro.sim.rng import RngFactory
from repro.sim.simulator import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "latest")
        sim.run()
        assert fired == ["early", "late", "latest"]

    def test_same_time_events_fire_in_insertion_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=5.0)
        seen = []
        sim.schedule_at(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, fired.append, "chained"))
        sim.run()
        assert fired == ["chained"]
        assert sim.now == 2.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "in")
        sim.schedule(5.0, fired.append, "out")
        sim.run(until=2.0)
        assert fired == ["in"]
        assert sim.now == 2.0  # clock advanced to the until mark

    def test_run_until_then_resume(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(3.0, fired.append, 3)
        sim.run(until=2.0)
        sim.run()
        assert fired == [1, 3]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_max_events_stop_does_not_advance_clock_to_until(self):
        # Pinned semantics: a run stopped by its max_events budget leaves
        # the clock at the last fired event even when `until` was given,
        # so the caller can resume exactly where it left off.
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(until=10.0, max_events=2)
        assert fired == [0, 1]
        assert sim.now == 2.0
        sim.run(until=10.0)
        assert fired == [0, 1, 2, 3, 4]
        assert sim.now == 10.0

    def test_max_events_zero_never_touches_clock(self):
        # The budget is checked before the heap: nothing fires and the
        # clock does not move, even with `until` set.
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.run(until=5.0, max_events=0)
        assert fired == []
        assert sim.now == 0.0

    def test_until_stop_advances_clock_exactly_to_until(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.5)
        assert sim.now == 2.5

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 7


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_via_simulator_none_safe(self):
        sim = Simulator()
        sim.cancel(None)  # no-op

    def test_double_cancel_is_safe(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_cancelled_event_releases_callback(self):
        sim = Simulator()
        handle = sim.schedule(1.0, print, "payload")
        handle.cancel()
        assert handle.args == ()


class TestNonFiniteRejection:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1e-9])
    def test_schedule_rejects_bad_delay(self, bad):
        sim = Simulator()
        with pytest.raises(SimulationError) as exc:
            sim.schedule(bad, lambda: None)
        assert repr(bad) in str(exc.value)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.5])
    def test_schedule_at_rejects_bad_time(self, bad):
        sim = Simulator()
        with pytest.raises(SimulationError) as exc:
            sim.schedule_at(bad, lambda: None)
        assert repr(bad) in str(exc.value)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_call_after_rejects_bad_delay(self, bad):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_after(bad, lambda: None)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_call_at_rejects_bad_time(self, bad):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_at(bad, lambda: None)

    def test_nan_does_not_slip_past_negative_guard(self):
        # NaN fails every comparison, so a plain `delay < 0` guard lets
        # it through and poisons the heap; the chained guard rejects it.
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)
        assert sim.heap_size == 0


class TestPendingAccounting:
    def test_pending_counts_only_live_events(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        doomed = sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        doomed.cancel()
        assert sim.pending == 1
        assert sim.cancelled_backlog == 1
        assert sim.heap_size == sim.pending + sim.cancelled_backlog
        assert keep.active
        sim.run()
        assert sim.pending == 0
        assert sim.cancelled_backlog == 0

    def test_cancelled_backlog_hwm(self):
        sim = Simulator()
        handles = [sim.schedule(1.0 + i, lambda: None) for i in range(5)]
        for h in handles[:3]:
            h.cancel()
        assert sim.cancelled_backlog_hwm == 3
        sim.run()
        # HWM is sticky; the live backlog has drained.
        assert sim.cancelled_backlog_hwm == 3
        assert sim.cancelled_backlog == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.cancelled_backlog == 1
        assert sim.pending == 0

    def test_late_cancel_of_fired_handle_is_inert(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()  # already fired: counters must not move
        assert sim.pending == 0
        assert sim.cancelled_backlog == 0

    def test_peek_time_drains_backlog_counter(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0
        assert sim.cancelled_backlog == 0
        assert sim.heap_size == 1


class TestFireAndForget:
    def test_call_after_fires(self):
        sim = Simulator()
        fired = []
        assert sim.call_after(1.0, fired.append, "x") is None
        sim.run()
        assert fired == ["x"]

    def test_call_at_fires(self):
        sim = Simulator(start_time=2.0)
        fired = []
        sim.call_at(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]

    def test_mixed_tiers_preserve_insertion_order_at_ties(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.call_after(1.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "c")
        sim.call_at(1.0, fired.append, "d")
        sim.run()
        assert fired == ["a", "b", "c", "d"]

    def test_handles_recycled_through_pool(self):
        sim = Simulator()
        for _ in range(10):
            sim.call_after(1.0, lambda: None)
        sim.run()
        assert sim.handle_pool_size == 10
        # A fresh burst reuses the pooled handles instead of growing it.
        for _ in range(10):
            sim.call_after(1.0, lambda: None)
        assert sim.handle_pool_size == 0
        sim.run()
        assert sim.handle_pool_size == 10

    def test_recycled_handle_bumps_generation(self):
        sim = Simulator()
        sim.call_after(1.0, lambda: None)
        sim.run()
        [handle] = sim._handle_pool
        gen = handle.generation
        sim.call_after(1.0, lambda: None)
        assert handle.generation == gen + 1
        sim.run()

    def test_pooled_handle_never_resurrects_consumed_callback(self):
        # After firing, a pooled handle's callback is cleared; reissue
        # must install the new callback, never replay the consumed one.
        sim = Simulator()
        fired = []
        sim.call_after(1.0, fired.append, "first")
        sim.run()
        sim.call_after(1.0, fired.append, "second")
        sim.run()
        assert fired == ["first", "second"]


class TestReservedSequences:
    def test_reserve_seq_is_monotone(self):
        sim = Simulator()
        a, b = sim.reserve_seq(), sim.reserve_seq()
        assert b == a + 1

    def test_call_at_reserved_orders_by_reservation_point(self):
        # A packet that reserved its seq before another event was
        # scheduled must fire before it at the same instant, even though
        # the heap push happens later — the coalescing guarantee.
        sim = Simulator()
        fired = []
        early_seq = sim.reserve_seq()
        sim.schedule(1.0, fired.append, "scheduled-later")
        sim.call_at_reserved(1.0, early_seq, fired.append, "reserved-earlier")
        sim.run()
        assert fired == ["reserved-earlier", "scheduled-later"]

    def test_reserved_seq_counts_as_live_when_armed(self):
        sim = Simulator()
        seq = sim.reserve_seq()
        assert sim.pending == 0  # reservation alone schedules nothing
        sim.call_at_reserved(2.0, seq, lambda: None)
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0


class TestEventHandleOrdering:
    def test_ordering_by_time_then_seq(self):
        a = EventHandle(1.0, 0, lambda: None, ())
        b = EventHandle(1.0, 1, lambda: None, ())
        c = EventHandle(0.5, 2, lambda: None, ())
        assert c < a < b


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_events_always_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        assert len(times) == len(delays)


class TestRngFactory:
    def test_same_stream_reproducible(self):
        a = RngFactory(42).stream("flows", 1)
        b = RngFactory(42).stream("flows", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_streams_differ(self):
        f = RngFactory(42)
        assert f.stream("a").random() != f.stream("b").random()

    def test_different_seeds_differ(self):
        assert RngFactory(1).stream("x").random() != RngFactory(2).stream("x").random()

    def test_derive_namespaces(self):
        f = RngFactory(7)
        child = f.derive("agg", 3)
        assert child.stream("flows").random() != f.stream("flows").random()

    def test_seed_property(self):
        assert RngFactory(9).seed == 9
