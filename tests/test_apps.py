"""Tests for the video and web application models."""

import random

import pytest

from repro.cc.endpoint import FlowDemux
from repro.net.trace import Trace
from repro.schemes import make_limiter
from repro.sim.simulator import Simulator
from repro.units import mbps, ms
from repro.workload.video import VideoConfig, VideoSession
from repro.workload.web import WebConfig, WebSession


def make_path(sim, *, rate=mbps(10), scheme="bcpqp", num_queues=1):
    limiter = make_limiter(sim, scheme, rate=rate, num_queues=num_queues,
                           max_rtt=ms(50))
    demux = FlowDemux()
    trace = Trace(sim, demux, data_only=True)
    limiter.connect(trace)
    return limiter, demux, trace


class TestVideoSession:
    def test_fetches_chunks_and_plays(self):
        sim = Simulator()
        limiter, demux, _ = make_path(sim)
        video = VideoSession(
            sim, ingress=limiter, demux=demux,
            config=VideoConfig(total_chunks=10, rtt=ms(30)))
        sim.run(until=120.0)
        assert video.done
        assert video.stats.chunks_fetched == 10
        assert len(video.stats.quality_history) == 10
        assert len(video.stats.fetch_times) == 10

    def test_high_bandwidth_reaches_top_quality(self):
        sim = Simulator()
        limiter, demux, _ = make_path(sim, rate=mbps(50))
        cfg = VideoConfig(total_chunks=20, rtt=ms(20))
        video = VideoSession(sim, ingress=limiter, demux=demux, config=cfg)
        sim.run(until=200.0)
        assert video.done
        # Once the buffer builds, the client should pick the top rung.
        assert max(video.stats.quality_history) == len(cfg.ladder_mbps) - 1
        assert video.stats.rebuffer_seconds < 1.0

    def test_starved_stream_stays_low_quality(self):
        sim = Simulator()
        limiter, demux, _ = make_path(sim, rate=mbps(0.5))
        cfg = VideoConfig(total_chunks=6, rtt=ms(20))
        video = VideoSession(sim, ingress=limiter, demux=demux, config=cfg)
        sim.run(until=300.0)
        assert video.stats.average_quality() <= 1.0

    def test_buffer_capped(self):
        sim = Simulator()
        limiter, demux, _ = make_path(sim, rate=mbps(50))
        cfg = VideoConfig(total_chunks=None, rtt=ms(20))
        video = VideoSession(sim, ingress=limiter, demux=demux, config=cfg)
        sim.run(until=60.0)
        assert video.buffer_seconds <= cfg.max_buffer_seconds + cfg.chunk_seconds

    def test_average_bitrate(self):
        sim = Simulator()
        limiter, demux, _ = make_path(sim, rate=mbps(20))
        cfg = VideoConfig(total_chunks=5, rtt=ms(20))
        video = VideoSession(sim, ingress=limiter, demux=demux, config=cfg)
        sim.run(until=120.0)
        avg = video.stats.average_bitrate(cfg.ladder_mbps)
        assert cfg.ladder_mbps[0] <= avg <= cfg.ladder_mbps[-1]


class TestWebSession:
    def test_pages_complete_in_order(self):
        sim = Simulator()
        limiter, demux, _ = make_path(sim, rate=mbps(20))
        web = WebSession(sim, ingress=limiter, demux=demux,
                         rng=random.Random(1),
                         config=WebConfig(pages=5, rtt=ms(20)))
        sim.run(until=300.0)
        assert web.done
        assert [p.index for p in web.stats.pages] == list(range(5))
        for p in web.stats.pages:
            assert p.plt > 0
            assert p.objects >= 1
            assert p.total_bytes > 0

    def test_plts_shorter_on_faster_link(self):
        def run(rate):
            sim = Simulator()
            limiter, demux, _ = make_path(sim, rate=rate)
            web = WebSession(sim, ingress=limiter, demux=demux,
                             rng=random.Random(2),
                             config=WebConfig(pages=8, rtt=ms(20),
                                              think_time_mean=0.1))
            sim.run(until=600.0)
            plts = web.stats.plts()
            return sum(plts) / len(plts)

        assert run(mbps(20)) < run(mbps(1.5))

    def test_deterministic_with_seed(self):
        def run():
            sim = Simulator()
            limiter, demux, _ = make_path(sim, rate=mbps(5))
            web = WebSession(sim, ingress=limiter, demux=demux,
                             rng=random.Random(3),
                             config=WebConfig(pages=4, rtt=ms(20)))
            sim.run(until=300.0)
            return web.stats.plts()

        assert run() == pytest.approx(run())
