"""Tests for policy trees and fluid (GPS) rate shares."""

import pytest
from hypothesis import given, strategies as st

from repro.policy.tree import ClassNode, Leaf, Policy


class TestConstruction:
    def test_fair_factory(self):
        p = Policy.fair(4)
        assert p.num_queues == 4

    def test_weighted_factory(self):
        p = Policy.weighted([1, 2, 3])
        assert p.num_queues == 3

    def test_leaves_must_cover_range(self):
        with pytest.raises(ValueError):
            Policy(ClassNode((Leaf(0), Leaf(2))))  # gap at 1

    def test_duplicate_queue_rejected(self):
        with pytest.raises(ValueError):
            Policy(ClassNode((Leaf(0), Leaf(0))))

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            ClassNode(())

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            Leaf(0, weight=0)
        with pytest.raises(ValueError):
            ClassNode((Leaf(0),), weight=-1)

    def test_wrong_activity_length_rejected(self):
        p = Policy.fair(2)
        with pytest.raises(ValueError):
            p.fluid_rates([True], 100.0)


class TestFairSharing:
    def test_equal_split_all_active(self):
        p = Policy.fair(4)
        assert p.fluid_rates([True] * 4, 100.0) == [25.0] * 4

    def test_inactive_queues_get_zero(self):
        p = Policy.fair(4)
        rates = p.fluid_rates([True, False, True, False], 100.0)
        assert rates == [50.0, 0.0, 50.0, 0.0]

    def test_single_active_gets_everything(self):
        p = Policy.fair(4)
        assert p.fluid_rates([False, False, True, False], 100.0)[2] == 100.0

    def test_all_inactive_all_zero(self):
        p = Policy.fair(3)
        assert p.fluid_rates([False] * 3, 100.0) == [0.0] * 3


class TestWeightedSharing:
    def test_proportional_split(self):
        p = Policy.weighted([1, 2, 5])
        rates = p.fluid_rates([True] * 3, 80.0)
        assert rates == pytest.approx([10.0, 20.0, 50.0])

    def test_reweights_among_active(self):
        p = Policy.weighted([1, 2, 5])
        rates = p.fluid_rates([True, True, False], 90.0)
        assert rates == pytest.approx([30.0, 60.0, 0.0])


class TestPrioritySharing:
    def test_strict_priority(self):
        p = Policy.prioritized([0, 1])
        assert p.fluid_rates([True, True], 10.0) == [10.0, 0.0]

    def test_lower_priority_served_when_high_idle(self):
        p = Policy.prioritized([0, 1])
        assert p.fluid_rates([False, True], 10.0) == [0.0, 10.0]

    def test_weighted_within_level(self):
        p = Policy.prioritized([0, 0, 1], weights=[1, 3, 1])
        rates = p.fluid_rates([True, True, True], 40.0)
        assert rates == pytest.approx([10.0, 30.0, 0.0])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            Policy.prioritized([0, 1], weights=[1])


class TestNestedSharing:
    def test_two_groups_with_weights(self):
        # §3.2's example: first class 2x the weight of the second,
        # per-flow fairness within each class.
        p = Policy.nested([[1, 1], [1, 1]], group_weights=[2, 1])
        rates = p.fluid_rates([True] * 4, 90.0)
        assert rates == pytest.approx([30.0, 30.0, 15.0, 15.0])

    def test_group_reallocation_when_one_empty(self):
        p = Policy.nested([[1, 1], [1, 1]], group_weights=[2, 1])
        rates = p.fluid_rates([False, False, True, True], 90.0)
        assert rates == pytest.approx([0.0, 0.0, 45.0, 45.0])

    def test_priority_groups_with_weighted_members(self):
        # Figure 6d: p1 (3 weighted flows, high priority), p2 (1 backlogged).
        p = Policy.nested([[1, 2, 3], [1]], group_priorities=[0, 1])
        rates = p.fluid_rates([True, True, True, True], 60.0)
        assert rates == pytest.approx([10.0, 20.0, 30.0, 0.0])
        rates = p.fluid_rates([False, False, False, True], 60.0)
        assert rates == pytest.approx([0.0, 0.0, 0.0, 60.0])

    def test_partial_group_activity(self):
        p = Policy.nested([[1, 2, 3], [1]], group_priorities=[0, 1])
        rates = p.fluid_rates([True, False, True, True], 60.0)
        assert rates == pytest.approx([15.0, 0.0, 45.0, 0.0])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            Policy.nested([[1], []])


@st.composite
def policy_and_activity(draw):
    """Random two-level policy with random activity flags."""
    groups = draw(st.lists(
        st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=4),
        min_size=1, max_size=4))
    n = sum(len(g) for g in groups)
    group_weights = draw(st.lists(
        st.floats(min_value=0.1, max_value=10), min_size=len(groups),
        max_size=len(groups)))
    priorities = draw(st.lists(
        st.integers(min_value=0, max_value=2), min_size=len(groups),
        max_size=len(groups)))
    policy = Policy.nested(groups, group_weights=group_weights,
                           group_priorities=priorities)
    active = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return policy, active


class TestFluidInvariants:
    @given(policy_and_activity(), st.floats(min_value=1.0, max_value=1e6))
    def test_work_conservation(self, pa, rate):
        """Active queues always consume exactly the full rate."""
        policy, active = pa
        rates = policy.fluid_rates(active, rate)
        if any(active):
            assert sum(rates) == pytest.approx(rate, rel=1e-9)
        else:
            assert sum(rates) == 0.0

    @given(policy_and_activity(), st.floats(min_value=1.0, max_value=1e6))
    def test_inactive_get_nothing(self, pa, rate):
        policy, active = pa
        rates = policy.fluid_rates(active, rate)
        for flag, r in zip(active, rates):
            if not flag:
                assert r == 0.0
            else:
                assert r >= 0.0

    @given(st.integers(min_value=1, max_value=16),
           st.floats(min_value=1.0, max_value=1e6))
    def test_fair_shares_equal(self, n, rate):
        rates = Policy.fair(n).fluid_rates([True] * n, rate)
        assert all(r == pytest.approx(rates[0]) for r in rates)
