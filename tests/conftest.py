"""Test-suite configuration: deterministic property testing.

The whole library is deterministic by construction; the test suite should
be too, so hypothesis runs derandomized (CI failures reproduce locally)
and without deadlines (simulation-heavy properties vary in wall time).
"""

from hypothesis import settings

settings.register_profile("repro", deadline=None, derandomize=True)
settings.load_profile("repro")
