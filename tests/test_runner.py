"""Tests for the sweep runner: pool fan-out, determinism, result cache."""

import pytest

from repro.experiments import fig4_rate_enforcement
from repro.runner import (
    AggregateConfig,
    ResultCache,
    package_fingerprint,
    run_tasks,
    scheme_fingerprint,
    simulate_aggregate,
)
from repro.units import mbps, ms
from repro.workload.aggregates import Section61Config
from repro.workload.spec import FlowSpec


def _tiny_config(scheme="bcpqp", seed=1, rate=mbps(5)):
    return AggregateConfig(
        scheme=scheme,
        specs=(FlowSpec(slot=0, cc="reno", rtt=ms(20)),
               FlowSpec(slot=1, cc="cubic", rtt=ms(30))),
        rate=rate,
        max_rtt=ms(30),
        horizon=2.0,
        warmup=0.5,
        seed=seed,
    )


def _tiny_fig4_grid():
    """A 2-scheme x 2-aggregate corner of the Figure 4 sweep."""
    config = fig4_rate_enforcement.Config(
        workload=Section61Config(
            num_aggregates=2,
            rates=(mbps(5),),
            flows_per_aggregate=2,
            horizon=2.0,
            seed=7,
        ),
        warmup=0.5,
        schemes=("policer", "bcpqp"),
    )
    return fig4_rate_enforcement.grid(config)


def _square(x):
    return x * x


def _outcome_key(outcome):
    """Every numeric field that the figure tables are derived from."""
    return (
        outcome.scheme,
        outcome.drop_rate,
        outcome.cycles_per_packet,
        outcome.arrived_packets,
        outcome.bottleneck_drops,
        tuple(outcome.aggregate_series.times),
        tuple(outcome.aggregate_series.values),
        tuple(
            (slot, tuple(s.times), tuple(s.values))
            for slot, s in sorted(outcome.slot_series.items())
        ),
        outcome.flow_records,
    )


class TestRunTasks:
    def test_preserves_input_order(self):
        assert run_tasks(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_matches_serial_trivially(self):
        xs = list(range(20))
        assert run_tasks(_square, xs, jobs=2) == run_tasks(_square, xs)

    def test_serial_jobs_values_do_not_touch_multiprocessing(self):
        for jobs in (None, 0, 1):
            assert run_tasks(_square, [5], jobs=jobs) == [25]

    def test_keyboard_interrupt_terminates_pool_children(self, monkeypatch):
        # Ctrl-C during a parallel sweep must not leave worker processes
        # alive behind the re-raised KeyboardInterrupt.
        from repro.runner import pool as pool_module

        events = []

        class FakePool:
            def map(self, fn, todo, chunksize=1):
                raise KeyboardInterrupt

            def terminate(self):
                events.append("terminate")

            def close(self):
                events.append("close")

            def join(self):
                events.append("join")

        class FakeContext:
            def Pool(self, processes):
                events.append(f"pool({processes})")
                return FakePool()

        monkeypatch.setattr(
            pool_module, "_pool_context", lambda method=None: FakeContext()
        )
        with pytest.raises(KeyboardInterrupt):
            run_tasks(_square, [1, 2, 3], jobs=2)
        assert events == ["pool(2)", "terminate", "join"]


class TestDefaultJobs:
    def test_valid_env_value_wins(self, monkeypatch):
        from repro.runner.pool import JOBS_ENV, default_jobs

        monkeypatch.setenv(JOBS_ENV, "3")
        assert default_jobs() == 3

    def test_invalid_env_value_warns_and_names_it(self, monkeypatch):
        from repro.runner.pool import JOBS_ENV, default_jobs

        monkeypatch.setenv(JOBS_ENV, "banana")
        with pytest.warns(RuntimeWarning, match="banana"):
            jobs = default_jobs()
        assert jobs >= 1  # fell back to the CPU count

    def test_caps_at_scheduler_affinity_not_cpu_count(self, monkeypatch):
        # In a cgroup/container the affinity mask is the real budget;
        # cpu_count() can be much larger and would oversubscribe.
        import os

        from repro.runner.pool import JOBS_ENV, default_jobs

        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2})
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert default_jobs() == 3

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        import os

        from repro.runner.pool import JOBS_ENV, default_jobs

        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        assert default_jobs() == 7


class TestDeterminism:
    def test_same_config_bit_identical_across_runs(self):
        a = simulate_aggregate(_tiny_config())
        b = simulate_aggregate(_tiny_config())
        assert _outcome_key(a) == _outcome_key(b)

    def test_parallel_and_serial_fig4_grids_identical(self):
        # Satellite of the runner PR: `--jobs N` and the serial fallback
        # must produce identical AggregateOutcome numbers for the same
        # grid, so figure tables are byte-for-byte reproducible.
        grid = _tiny_fig4_grid()
        serial = run_tasks(simulate_aggregate, grid)
        parallel = run_tasks(simulate_aggregate, grid, jobs=2)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert _outcome_key(s) == _outcome_key(p)

    def test_spawn_context_grid_identical_to_serial(self):
        # Spawn workers re-import the package instead of inheriting the
        # parent's memory; cell results must not depend on that.
        grid = _tiny_fig4_grid()
        serial = run_tasks(simulate_aggregate, grid)
        spawned = run_tasks(
            simulate_aggregate, grid, jobs=2, start_method="spawn"
        )
        assert len(spawned) == len(serial)
        for s, p in zip(serial, spawned):
            assert _outcome_key(s) == _outcome_key(p)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _tiny_config()
        first = run_tasks(simulate_aggregate, [config], cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        second = run_tasks(simulate_aggregate, [config], cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert _outcome_key(first[0]) == _outcome_key(second[0])

    def test_stored_under_the_documented_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_tasks(
            simulate_aggregate,
            [_tiny_config()],
            cache=cache,
            fingerprint=AggregateConfig.code_fingerprint,
        )
        key = cache.key(
            "repro.runner.aggregate:simulate_aggregate",
            _tiny_config(),
            _tiny_config().code_fingerprint(),
        )
        hit, _ = cache.load(key)
        assert hit

    def test_different_configs_get_different_keys(self):
        fp = package_fingerprint()
        k1 = ResultCache.key("t", _tiny_config(seed=1), fp)
        k2 = ResultCache.key("t", _tiny_config(seed=2), fp)
        k3 = ResultCache.key("t", _tiny_config(rate=mbps(6)), fp)
        assert len({k1, k2, k3}) == 3

    def test_key_is_stable_for_equal_configs(self):
        fp = scheme_fingerprint("bcpqp")
        assert ResultCache.key("t", _tiny_config(), fp) == \
            ResultCache.key("t", _tiny_config(), fp)

    def test_scheme_fingerprints_isolate_schemes(self):
        # Editing BC-PQP code must not invalidate policer cells: their
        # fingerprints are computed over different source sets.
        assert scheme_fingerprint("bcpqp") != scheme_fingerprint("policer")
        assert scheme_fingerprint("bcpqp") == scheme_fingerprint("bcpqp")

    @pytest.mark.parametrize("scheme", ["bcpqp", "policer"])
    def test_validated_fingerprint_is_distinct(self, scheme):
        # Validated runs hash the checker sources on top of the scheme's:
        # a checker edit invalidates validated cells only, and enabling
        # validation can never reuse (or poison) an unvalidated entry.
        assert scheme_fingerprint(scheme, validate=True) != \
            scheme_fingerprint(scheme)
        assert scheme_fingerprint(scheme, validate=True) == \
            scheme_fingerprint(scheme, validate=True)

    def test_validate_flag_separates_cache_keys(self):
        # Belt and braces: even under an identical fingerprint, the
        # ``validate`` field participates in the config repr and thus in
        # the cache key.
        from dataclasses import replace

        fp = package_fingerprint()
        config = _tiny_config()
        validated = replace(config, validate=True)
        assert validated.code_fingerprint() != config.code_fingerprint()
        assert ResultCache.key("t", config, fp) != \
            ResultCache.key("t", validated, fp)

    @pytest.mark.parametrize("scheme", ["pqp", "bcpqp"])
    def test_phantom_fingerprints_cover_drain_sources(self, scheme):
        # A drain rewrite must provably invalidate cached PQP/BC-PQP sweep
        # cells: the phantom counter module, the policer hot path, and the
        # virtual-time engine all have to be in the hashed source set.
        from repro.runner.cache import _SCHEME_SOURCES

        sources = _SCHEME_SOURCES[scheme]
        for required in ("core/phantom.py", "core/pqp.py", "core/gps.py"):
            assert required in sources, f"{scheme} fingerprint misses {required}"

    @pytest.mark.parametrize("rel", ["core/phantom.py", "core/pqp.py"])
    def test_fingerprint_tracks_source_bytes(self, tmp_path, rel):
        # Behavioral check: changing one byte of a covered file changes
        # the hash (exercised on a scratch tree, not the installed pkg).
        from repro.runner.cache import _SCHEME_SOURCES, _hash_sources_at

        sources = _SCHEME_SOURCES["pqp"]
        assert rel in sources
        for r in sources:
            target = tmp_path / r
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(f"# stub for {r}\n")
        before = _hash_sources_at(sources, tmp_path)
        (tmp_path / rel).write_text("# rewritten drain\n")
        assert _hash_sources_at(sources, tmp_path) != before

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("abc", {"x": 1})
        assert cache.clear() == 1
        hit, _ = cache.load("abc")
        assert not hit

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("abc", [1, 2, 3])
        (tmp_path / "abc.pkl").write_bytes(b"not a pickle")
        hit, value = cache.load("abc")
        assert not hit and value is None


class TestConfigRepr:
    def test_repr_has_no_memory_addresses(self):
        # The cache key hashes repr(config); an object default-repr like
        # <Policy at 0x7f...> would silently break cross-run caching.
        from repro.policy.tree import Policy

        config = AggregateConfig(
            scheme="bcpqp",
            specs=(FlowSpec(slot=0, cc="reno", rtt=ms(20)),),
            rate=mbps(5),
            max_rtt=ms(20),
            horizon=1.0,
            warmup=0.0,
            policy=Policy.fair(2),
        )
        assert "0x" not in repr(config)

    def test_list_inputs_coerce_to_tuples(self):
        config = AggregateConfig(
            scheme="pqp",
            specs=[FlowSpec(slot=0, cc="reno", rtt=ms(20))],
            rate=mbps(5),
            max_rtt=ms(20),
            horizon=1.0,
            warmup=0.0,
            weights=[1.0, 2.0],
        )
        assert isinstance(config.specs, tuple)
        assert isinstance(config.weights, tuple)
        assert repr(config) == repr(config)


class TestPicklability:
    def test_config_and_outcome_round_trip(self):
        import pickle

        config = _tiny_config()
        assert pickle.loads(pickle.dumps(config)) == config
        outcome = simulate_aggregate(config)
        clone = pickle.loads(pickle.dumps(outcome))
        assert _outcome_key(clone) == _outcome_key(outcome)
