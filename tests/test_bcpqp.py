"""Tests for BC-PQP's burst-control mechanism."""

import pytest

from repro.classify.classifier import SlotClassifier
from repro.core.bcpqp import BCPQP
from repro.net.packet import FlowId, Packet
from repro.net.sink import NullSink
from repro.policy.tree import Policy
from repro.sim.simulator import Simulator


def make(sim, *, rate=15_000.0, n=2, queue_bytes=150_000.0,
         theta_plus=1.5, theta_minus=0.5, period=0.1):
    bc = BCPQP(sim, rate=rate, policy=Policy.fair(n),
               classifier=SlotClassifier(n), queue_bytes=queue_bytes,
               theta_plus=theta_plus, theta_minus=theta_minus, period=period)
    bc.connect(NullSink())
    return bc


def pkt(slot, seq=0, size=1500):
    return Packet.data(FlowId(0, slot), seq, 0.0, size=size)


class TestBurstControl:
    def test_burst_beyond_threshold_triggers_magic_fill(self):
        sim = Simulator()
        # Fair share of queue 0 with only itself active = full rate.
        # X_0 = 15000 B/s x 0.1 s = 1500 B; the fill ceiling is
        # max(theta+ X, X + 2 MSS) = 4500 B.
        bc = make(sim)
        for i in range(3):
            bc.receive(pkt(0, i))  # 4500 B accepted: at the ceiling
        assert bc.magic_fills == 0
        bc.receive(pkt(0, 3))  # 6000 B > 4500 B -> fill
        assert bc.magic_fills == 1
        assert bc.queues.length(0) == pytest.approx(150_000.0)

    def test_fill_caps_burst_at_threshold(self):
        sim = Simulator()
        bc = make(sim)
        for i in range(100):
            bc.receive(pkt(0, i))
        # Everything after the fill is dropped until drain makes room.
        assert bc.stats.forwarded_packets == 4
        assert bc.stats.dropped_packets == 96

    def test_steady_rate_does_not_fill(self):
        """A flow sending exactly at its share never triggers the fill."""
        sim = Simulator()
        bc = make(sim, rate=15_000.0)

        def arrive(i=[0]):
            bc.receive(pkt(0, i[0]))
            i[0] += 1
            sim.schedule(0.1, arrive)  # 15 kB/s = exactly the rate

        sim.schedule(0.0, arrive)
        sim.run(until=10.0)
        assert bc.magic_fills == 0
        assert bc.stats.dropped_packets == 0

    def test_idle_queue_magic_reclaimed(self):
        sim = Simulator()
        bc = make(sim)
        for i in range(5):
            bc.receive(pkt(0, i))  # burst past the ceiling -> fill
        assert bc.queues.magic_bytes(0) > 0
        sim.run(until=1.0)  # flow goes silent; sweeps roll windows
        assert bc.magic_reclaims >= 1
        # The queue drains freely once the magic is gone.
        assert bc.queues.length(0) < 150_000.0

    def test_active_flow_keeps_magic(self):
        """A flow still *sending* (even if dropped) keeps its magic —
        the reclaim watches arrivals, not acceptances."""
        sim = Simulator()
        bc = make(sim, rate=15_000.0)
        for i in range(10):
            bc.receive(pkt(0, i))  # burst -> fill
        assert bc.magic_fills >= 1

        def arrive(i=[100]):
            bc.receive(pkt(0, i[0]))  # keeps arriving at the full rate
            i[0] += 1
            sim.schedule(0.1, arrive)

        sim.schedule(0.0, arrive)
        sim.run(until=2.0)
        assert bc.magic_reclaims == 0

    def test_admission_at_drain_rate_after_fill(self):
        sim = Simulator()
        rate = 15_000.0
        bc = make(sim, rate=rate)

        def arrive(i=[0]):
            for _ in range(4):  # 60 kB/s demand, 4x the rate
                bc.receive(pkt(0, i[0]))
                i[0] += 1
            sim.schedule(0.1, arrive)

        sim.schedule(0.0, arrive)
        sim.run(until=20.0)
        assert bc.stats.forwarded_bytes == pytest.approx(rate * 20, rel=0.1)

    def test_share_estimate_tracks_active_set(self):
        sim = Simulator()
        bc = make(sim, rate=15_000.0, n=2)
        bc.receive(pkt(0, 0))
        # Only queue 0 active: its estimated window budget is the full rate.
        assert bc.expected_window_bytes(0) == pytest.approx(1500.0)
        bc.receive(pkt(1, 0))
        # Both active: shares halve.
        assert bc.expected_window_bytes(0) == pytest.approx(750.0)

    def test_stop_cancels_sweep(self):
        sim = Simulator()
        bc = make(sim)
        bc.stop()
        sim.run(until=1.0)
        assert sim.events_processed <= 1

    def test_parameter_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make(sim, theta_plus=0.4, theta_minus=0.5)
        with pytest.raises(ValueError):
            make(sim, period=0.0)

    def test_window_accounting_exposed(self):
        sim = Simulator()
        bc = make(sim)
        bc.receive(pkt(0, 0))
        assert bc.accepted_window_bytes(0) == 1500.0
        assert bc.arrived_window_bytes(0) == 1500.0

    def test_arrivals_counted_even_when_dropped(self):
        sim = Simulator()
        bc = make(sim, queue_bytes=1500.0)
        bc.receive(pkt(0, 0))
        bc.receive(pkt(0, 1))  # dropped: queue full
        assert bc.arrived_window_bytes(0) == 3000.0
        assert bc.accepted_window_bytes(0) == 1500.0
