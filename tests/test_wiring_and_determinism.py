"""Tests for the wiring helper and whole-stack determinism."""

import random

import pytest

from repro import AggregateScenario, FlowSpec, OnOffSpec, Simulator, make_limiter
from repro.cc.endpoint import FlowDemux
from repro.net.packet import FlowId
from repro.net.trace import Trace
from repro.units import mbps, ms
from repro.wiring import wire_flow


class TestWireFlow:
    def make_path(self, sim, rate=mbps(10)):
        limiter = make_limiter(sim, "bcpqp", rate=rate, num_queues=2,
                               max_rtt=ms(50))
        demux = FlowDemux()
        trace = Trace(sim, demux)
        limiter.connect(trace)
        return limiter, demux, trace

    def test_finite_flow_completes(self):
        sim = Simulator()
        limiter, demux, trace = self.make_path(sim)
        done = []
        wire_flow(sim, FlowId(0, 0, 0), cc="cubic", rtt=ms(20),
                  ingress=limiter, demux=demux, packets=100, start=0.0,
                  on_complete=lambda s, t: done.append(t))
        sim.run(until=20.0)
        assert len(done) == 1
        assert len(trace) >= 100

    def test_rtt_is_honored(self):
        """First data packet arrives at the receiver trace rtt/2 after the
        flow starts; the handshake-seeded srtt matches the wire RTT."""
        sim = Simulator()
        limiter, demux, trace = self.make_path(sim)
        sender = wire_flow(sim, FlowId(0, 0, 0), cc="reno", rtt=ms(40),
                           ingress=limiter, demux=demux, packets=50,
                           start=0.0)
        sim.run(until=10.0)
        assert trace.records[0].time == pytest.approx(0.02, abs=1e-6)
        assert sender.srtt == pytest.approx(0.04, rel=0.05)

    def test_ecn_flag_propagates(self):
        sim = Simulator()
        limiter, demux, trace = self.make_path(sim)
        wire_flow(sim, FlowId(0, 0, 0), cc="reno", rtt=ms(20),
                  ingress=limiter, demux=demux, packets=5, start=0.0,
                  ecn=True)
        wire_flow(sim, FlowId(0, 1, 0), cc="reno", rtt=ms(20),
                  ingress=limiter, demux=demux, packets=5, start=0.0,
                  ecn=False)
        captured = []
        original = trace.receive

        def spy(packet):
            captured.append((packet.flow.slot, packet.ecn_capable))
            original(packet)

        trace.receive = spy
        sim.run(until=5.0)
        assert all(flag for slot, flag in captured if slot == 0)
        assert not any(flag for slot, flag in captured if slot == 1)


class TestWholeStackDeterminism:
    def run_once(self, seed):
        sim = Simulator()
        limiter = make_limiter(sim, "bcpqp", rate=mbps(10), num_queues=3,
                               max_rtt=ms(50))
        specs = [
            FlowSpec(slot=0, cc="reno", rtt=ms(10)),
            FlowSpec(slot=1, cc="bbr", rtt=ms(20)),
            FlowSpec(slot=2, cc="cubic", rtt=ms(30),
                     on_off=OnOffSpec(burst_packets_mean=50,
                                      off_time_mean=0.2)),
        ]
        scenario = AggregateScenario(sim, limiter=limiter, specs=specs,
                                     rng=random.Random(seed), horizon=6.0)
        scenario.run()
        return (
            sim.events_processed,
            limiter.stats.forwarded_packets,
            limiter.stats.dropped_packets,
            tuple((r.time, r.flow.slot, r.seq)
                  for r in scenario.trace.records[:200]),
        )

    def test_identical_runs_bit_for_bit(self):
        assert self.run_once(5) == self.run_once(5)

    def test_different_seeds_diverge(self):
        # The on-off slot draws burst sizes from the seeded RNG.
        assert self.run_once(5) != self.run_once(6)


class TestHashClassificationStudy:
    def test_fairness_improves_with_queue_count(self):
        from repro.experiments import ext_hash_classification as study

        result = study.run(study.Config(
            num_flows=8, queue_counts=(2, 16), horizon=8.0, warmup=3.0))
        few, many = result.fairness_by_queues[2], result.fairness_by_queues[16]
        assert many > few
        assert result.collisions_by_queues[2] >= \
            result.collisions_by_queues[16]
