"""Smoke tests for the experiment harness: every figure module runs at a
tiny scale and produces structurally sane results.  (The figure *shapes*
are asserted by the benchmark suite; these tests catch harness breakage
quickly.)"""

import pytest

from repro.experiments import (
    appendix_a,
    common,
    ext_ecn,
    fig1_motivation,
    fig2_sizing,
    fig3_secondary_bottleneck,
    fig4_rate_enforcement,
    fig5_efficiency,
    fig6_policy,
    fig7_applications,
    fig9_video_timeseries,
)
from repro.units import mbps, ms
from repro.workload.aggregates import Section61Config
from repro.workload.spec import FlowSpec


class TestCommonHarness:
    def test_run_aggregate_measures_everything(self):
        result = common.run_aggregate(
            "bcpqp",
            [FlowSpec(slot=0, cc="reno", rtt=ms(20))],
            rate=mbps(10),
            max_rtt=ms(50),
            horizon=5.0,
            warmup=1.0,
        )
        assert result.scheme == "bcpqp"
        assert 0.5 < result.mean_normalized_throughput < 1.3
        assert result.peak_normalized_throughput >= \
            result.mean_normalized_throughput * 0.9
        assert 0.0 <= result.drop_rate <= 1.0
        assert result.cycles_per_packet > 0
        assert 0.0 <= result.fairness <= 1.0

    def test_print_table_smoke(self, capsys):
        common.print_table(["a", "bb"], [[1, 2], [3, 4]])
        out = capsys.readouterr().out
        assert "a" in out and "bb" in out and "3" in out


class TestFigureModules:
    def test_fig1(self):
        result = fig1_motivation.run(fig1_motivation.Config(
            horizon=4.0, warmup=1.0, bucket_multipliers=(0.5, 4.0)))
        assert set(result.fairness) == {"shaper", "policer"}
        assert len(result.bucket_tradeoff) == 2

    def test_fig2(self):
        result = fig2_sizing.run(fig2_sizing.Config(
            buffer_kb=(250, 1000), horizon=8.0, warmup=2.0))
        assert result.analytic_min_bytes == pytest.approx(579e3, rel=0.01)
        assert set(result.by_buffer) == {250, 1000}

    def test_fig3(self):
        result = fig3_secondary_bottleneck.run(
            fig3_secondary_bottleneck.Config(horizon=8.0, warmup=3.0))
        assert set(result.bottleneck_drops) == {"pqp", "bcpqp"}
        for jain in result.mean_window_fairness.values():
            assert 0.0 <= jain <= 1.0

    def test_fig4(self):
        config = fig4_rate_enforcement.Config(
            workload=Section61Config(
                num_aggregates=2, rates=(mbps(7.5),),
                flows_per_aggregate=2, horizon=4.0, seed=3),
            warmup=1.0,
            schemes=("policer", "bcpqp"),
        )
        results = fig4_rate_enforcement.run(config)
        assert set(results) == {"policer", "bcpqp"}
        for summary in results.values():
            assert summary.normalized_samples
            assert mbps(7.5) in summary.drop_rate_by_rate

    def test_fig5(self):
        result = fig5_efficiency.run(fig5_efficiency.Config(
            horizon=4.0, warmup=1.0, schemes=("policer", "bcpqp")))
        assert result.cycles_per_packet["bcpqp"] > \
            result.cycles_per_packet["policer"]
        ratios = result.ratio_to("policer")
        assert ratios["policer"] == 1.0

    def test_fig6_weighted_only(self):
        config = fig6_policy.Config(
            workload=Section61Config(
                num_aggregates=2, rates=(mbps(7.5),),
                flows_per_aggregate=2, horizon=4.0, seed=3),
            warmup=1.0,
            fairness_schemes=("bcpqp",),
            packets_per_weight=100,
            weights=(1, 2),
            weighted_horizon=15.0,
            nested_horizon=6.0,
        )
        result = fig6_policy.run(config)
        assert "bcpqp" in result.fairness_cdf
        assert set(result.weighted) == {"fairpolicer", "bcpqp"}

    def test_fig7(self):
        result = fig7_applications.run(fig7_applications.Config(
            video_chunks=4, web_pages=3, horizon=40.0))
        assert ("bcpqp", "youtube") in result.video
        assert "bcpqp" in result.web

    def test_fig9(self):
        result = fig9_video_timeseries.run(fig9_video_timeseries.Config(
            chunks=4, horizon=40.0))
        for scheme in fig9_video_timeseries.SCHEMES:
            assert 0.0 <= result.video_share[scheme] <= 1.0

    def test_appendix_a(self):
        results = appendix_a.run(appendix_a.Config(
            points=((mbps(10), ms(50)),), multipliers=(0.5, 2.0),
            horizon=10.0, warmup=3.0))
        assert len(results) == 1
        assert set(results[0].achieved) == {0.5, 2.0}

    def test_ext_ecn(self):
        result = ext_ecn.run(ext_ecn.Config(horizon=6.0, warmup=2.0))
        assert ("pqp", True) in result.cells
        assert result.cells[("pqp", True)].marked_packets > 0
