"""Sharded fleet execution: partitioning, seeding, recorder, merge.

The load-bearing pin is shard-count invariance: the same
:class:`~repro.fleet.FleetSpec` partitioned into 1, 2 or 7 shards must
merge to byte-identical :class:`~repro.metrics.merge.FleetMetrics` —
down to the sha256 digest over the full per-aggregate columns — for
every enforcement scheme.  Everything the fleet layer is built on
(contiguous balanced partitioning, per-aggregate seeding, the columnar
recorder's binning semantics, the merge's canonical reduction order) is
pinned here too.
"""

from __future__ import annotations

import dataclasses
from array import array

import pytest

from repro.cc.endpoint import FlowDemux
from repro.fleet import (
    FleetRecorder,
    FleetSpec,
    ShardConfig,
    plan_for,
    run_fleet,
    shard_bounds,
    shard_configs,
    simulate_shard,
)
from repro.fleet.shard import _interned_policy
from repro.metrics.merge import merge_shard_summaries
from repro.metrics.throughput import bin_layout, binned_bytes
from repro.net.middlebox import Middlebox
from repro.net.packet import FlowId
from repro.net.trace import Trace
from repro.schemes import make_limiter
from repro.sim.simulator import Simulator
from repro.wiring import wire_flow

pytestmark = pytest.mark.fleet

SCHEMES = ("policer", "fairpolicer", "pqp", "bcpqp", "shaper")


class TestShardBounds:
    def test_contiguous_balanced_tiling(self):
        for aggregates in (1, 2, 7, 10, 23):
            for shards in range(1, aggregates + 1):
                bounds = [
                    shard_bounds(aggregates, shards, i) for i in range(shards)
                ]
                # tiles [0, aggregates) contiguously
                assert bounds[0][0] == 0
                assert bounds[-1][1] == aggregates
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo
                # balanced within one
                sizes = [hi - lo for lo, hi in bounds]
                assert max(sizes) - min(sizes) <= 1

    def test_rejects_more_shards_than_aggregates(self):
        with pytest.raises(ValueError, match="cannot split"):
            shard_bounds(3, 4, 0)

    def test_rejects_bad_index(self):
        with pytest.raises(ValueError, match="outside"):
            shard_bounds(10, 2, 2)


class TestPlanDeterminism:
    def test_plan_depends_only_on_seed_and_id(self):
        # The same aggregate id yields the same plan regardless of
        # population size or partitioning — the root of shard invariance.
        small = FleetSpec(aggregates=5, seed=9)
        large = FleetSpec(aggregates=500, seed=9)
        for aggregate in range(5):
            assert plan_for(small, aggregate) == plan_for(large, aggregate)

    def test_different_seeds_differ(self):
        a = [plan_for(FleetSpec(aggregates=8, seed=1), i) for i in range(8)]
        b = [plan_for(FleetSpec(aggregates=8, seed=2), i) for i in range(8)]
        assert a != b

    def test_policy_interning_shares_equal_shapes(self):
        spec = FleetSpec(aggregates=40, seed=3)
        cache: dict = {}
        plans = [plan_for(spec, i) for i in range(40)]
        policies = [_interned_policy(p, cache) for p in plans]
        # far fewer distinct policies than aggregates
        assert len(cache) < len(plans)
        for plan, policy in zip(plans, policies):
            assert policy is cache[plan.policy_key()]
            assert policy.num_queues == plan.num_flows


class TestFleetSpecValidation:
    def test_rejects_zero_aggregates(self):
        with pytest.raises(ValueError):
            FleetSpec(aggregates=0)

    def test_rejects_warmup_after_horizon(self):
        with pytest.raises(ValueError):
            FleetSpec(aggregates=1, warmup=2.0, horizon=1.0)

    def test_rejects_span_shorter_than_window(self):
        with pytest.raises(ValueError):
            FleetSpec(aggregates=1, warmup=0.2, horizon=0.3, window=0.25)

    def test_shard_config_validates_eagerly(self):
        with pytest.raises(ValueError):
            ShardConfig(spec=FleetSpec(aggregates=2), shards=3, index=2)


def _shard_trace(spec: FleetSpec):
    """Run one unsharded shard with a Trace in place of the recorder."""
    sim = Simulator()
    box = Middlebox(sim)
    demux = FlowDemux()
    plans = [plan_for(spec, a) for a in range(spec.aggregates)]
    trace = Trace(sim, demux)
    policies: dict = {}
    for plan in plans:
        limiter = make_limiter(
            sim,
            spec.scheme,
            rate=plan.rate,
            num_queues=plan.num_flows,
            max_rtt=plan.max_rtt,
            policy=_interned_policy(plan, policies),
            phantom_service=spec.phantom_service,
        )
        limiter.connect(trace)
        box.add_aggregate(plan.aggregate, limiter)
        for fs in plan.specs:
            wire_flow(
                sim,
                FlowId(plan.aggregate, fs.slot, 0),
                cc=fs.cc,
                rtt=fs.rtt,
                ingress=box,
                demux=demux,
                packets=None,
                start=fs.start,
            )
    sim.run(until=spec.horizon)
    return trace, plans


class TestRecorderByteIdentity:
    def test_binning_matches_posthoc_trace_binning(self):
        # The recorder streams bytes into bins during the run; binning a
        # full trace afterwards with the classic metrics path must give
        # the exact same floats, aggregate by aggregate.
        spec = FleetSpec(aggregates=6, seed=21, horizon=0.93, warmup=0.2)
        summary = simulate_shard(ShardConfig(spec=spec, shards=1, index=0))
        trace, plans = _shard_trace(spec)
        nbins, _last = bin_layout(spec.window, spec.warmup, spec.horizon)
        assert summary.nbins == nbins
        for row, plan in enumerate(plans):
            rows = [
                (t, s)
                for t, f, s in zip(trace.times, trace.flow_ids, trace.sizes)
                if f.aggregate == plan.aggregate
            ]
            sub = Trace(Simulator())
            for t, s in rows:
                sub.times.append(t)
                sub.flow_ids.append(FlowId(plan.aggregate, 0, 0))
                sub.sizes.append(s)
            classic = binned_bytes(
                sub, window=spec.window, start=spec.warmup, end=spec.horizon
            )
            streamed = list(
                summary.binned_bytes[row * nbins:(row + 1) * nbins]
            )
            assert streamed == classic
            assert summary.goodput_bytes[row] == sum(classic)

    def test_slot_goodput_matches_window_filtered_trace(self):
        spec = FleetSpec(aggregates=5, seed=12, horizon=0.9, warmup=0.2)
        summary = simulate_shard(ShardConfig(spec=spec, shards=1, index=0))
        trace, plans = _shard_trace(spec)
        for row, plan in enumerate(plans):
            for fs in plan.specs:
                want = sum(
                    s
                    for t, f, s in zip(
                        trace.times, trace.flow_ids, trace.sizes
                    )
                    if f.aggregate == plan.aggregate
                    and f.slot == fs.slot
                    and spec.warmup <= t < spec.horizon
                )
                got = summary.slot_goodput[
                    summary.slot_offsets[row] + fs.slot
                ]
                assert got == want

    def test_recorder_counts_only_data_packets_in_window(self):
        sim = Simulator()
        recorder = FleetRecorder(
            sim,
            FlowDemux(),
            lo=0,
            slot_counts=[1],
            window=0.25,
            warmup=0.2,
            horizon=0.7,
        )
        from repro.net.packet import Packet

        flow = FlowId(0, 0, 0)
        sim._now = 0.1  # before warmup
        recorder.receive(Packet.data(flow, 0, sim.now))
        sim._now = 0.3  # in window
        recorder.receive(Packet.data(flow, 1, sim.now))
        assert recorder.recorded_packets == 1
        assert recorder.goodput_bytes[0] > 0


class TestShardInvariance:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_merged_metrics_byte_identical_across_shard_counts(self, scheme):
        # The tentpole pin: shards in {1, 2, 7} produce equal
        # FleetMetrics — full dataclass equality, digest included.
        spec = FleetSpec(
            aggregates=7, seed=31, scheme=scheme, horizon=0.8, warmup=0.2
        )
        base = run_fleet(spec, shards=1).metrics
        assert base.arrived_packets > 0
        for shards in (2, 7):
            merged = run_fleet(spec, shards=shards).metrics
            assert merged == base
            assert merged.digest == base.digest

    def test_parallel_workers_byte_identical_to_serial(self):
        spec = FleetSpec(aggregates=6, seed=4, horizon=0.8, warmup=0.2)
        serial = run_fleet(spec, shards=3).metrics
        parallel = run_fleet(spec, shards=3, jobs=2).metrics
        assert parallel == serial

    def test_validation_does_not_change_outcomes(self):
        plain = FleetSpec(aggregates=4, seed=8, horizon=0.7, warmup=0.2)
        checked = dataclasses.replace(plain, validate=True)
        a = run_fleet(plain, shards=2).metrics
        b = run_fleet(checked, shards=2).metrics
        assert a == b


class TestMerge:
    def _summaries(self, shards: int):
        spec = FleetSpec(aggregates=8, seed=17, horizon=0.8, warmup=0.2)
        return [simulate_shard(c) for c in shard_configs(spec, shards)]

    def test_merge_accepts_any_summary_order(self):
        summaries = self._summaries(3)
        a = merge_shard_summaries(summaries)
        b = merge_shard_summaries(list(reversed(summaries)))
        assert a == b

    def test_merge_rejects_gapped_partition(self):
        summaries = self._summaries(3)
        with pytest.raises(ValueError, match="tile"):
            merge_shard_summaries([summaries[0], summaries[2]])

    def test_merge_rejects_parameter_mismatch(self):
        summaries = self._summaries(2)
        bad = dataclasses.replace(summaries[1], window=0.5)
        with pytest.raises(ValueError, match="disagree"):
            merge_shard_summaries([summaries[0], bad])

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_shard_summaries([])

    def test_digest_covers_per_aggregate_columns(self):
        # Two runs whose fleet-level totals agree but whose per-aggregate
        # columns differ must produce different digests.
        summaries = self._summaries(2)
        base = merge_shard_summaries(summaries)
        perturbed = dataclasses.replace(
            summaries[0],
            goodput_bytes=array(
                "d",
                [
                    v + (1.0 if i == 0 else -1.0)
                    for i, v in enumerate(summaries[0].goodput_bytes[:2])
                ]
                + list(summaries[0].goodput_bytes[2:]),
            ),
        )
        other = merge_shard_summaries([perturbed, summaries[1]])
        assert other.digest != base.digest

    def test_op_counts_and_cycles_sum_across_shards(self):
        summaries = self._summaries(4)
        merged = merge_shard_summaries(summaries)
        assert merged.modeled_cycles == pytest.approx(
            sum(sum(s.modeled_cycles) for s in summaries)
        )
        total_ops = sum(merged.op_counts.values())
        assert total_ops > 0


class TestFleetSmoke:
    def test_isolated_shards_report_rss_and_match(self):
        spec = FleetSpec(aggregates=4, seed=2, horizon=0.7, warmup=0.2)
        plain = run_fleet(spec, shards=2)
        isolated = run_fleet(spec, shards=2, isolate=True)
        assert isolated.metrics == plain.metrics
        assert all(s.peak_rss_bytes > 0 for s in isolated.summaries)

    def test_result_accounting(self):
        spec = FleetSpec(aggregates=4, seed=2, horizon=0.7, warmup=0.2)
        result = run_fleet(spec, shards=2)
        assert result.us_per_packet > 0
        assert result.run_seconds > 0
        assert result.total_flows == sum(s.flows for s in result.summaries)
        assert result.metrics.cycles_per_packet > 0

    def test_experiments_cli_entry(self, capsys):
        from repro.experiments import fleet_scale

        result = fleet_scale.main(
            fleet_scale.Config(aggregates=6, shards=2, horizon=0.7)
        )
        out = capsys.readouterr().out
        assert "Fleet: 6 aggregates" in out
        assert result.metrics.digest[:12] in out
