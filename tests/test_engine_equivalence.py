"""Pinned full-simulation outcomes across the event-engine overhaul.

The soft-timer / coalesced-delivery / pooled-handle engine must be
*byte-identical* to the one-event-per-packet engine it replaced: same
(time, seq) firing order, hence the same packets dropped, the same RTT
samples, the same figures.  These cells were measured under both engines
(float-for-float equal) and are pinned **exactly** — no tolerances.  A
change to event ordering anywhere (timer wake seqs, link/pipe delivery
interleaving, pool reuse) shows up here as a hard failure.

The cells deliberately stress the order-sensitive paths: mixed CC
algorithms with different RTTs (RTO/TLP timer ties — PTO clamps produce
*constant* deadlines, so cross-flow same-instant ties are common, not
measure-zero), loss-heavy policers (retransmission scheduling), and the
shaper (its own serialization events interleaving with pipe delivery).
"""

import pytest

from repro.experiments import common
from repro.units import mbps, ms
from repro.workload.spec import FlowSpec

# scheme -> (cc mix, pinned (mean_xr, peak_xr, drop_rate, jain)) at
# rate=5 Mbps, max_rtt=80 ms, horizon=6 s, warmup=1 s, RTTs 20+15i ms.
PINNED = {
    ("policer", ("reno", "cubic", "bbr", "reno")): (
        1.0003200000000003, 1.0464, 0.37987730061349695, 0.41787186941706134,
    ),
    ("bcpqp", ("reno", "cubic", "bbr", "reno")): (
        0.99312, 1.1712, 0.31256830601092894, 0.9997862986363284,
    ),
    ("pqp", ("cubic", "bbr")): (
        0.99312, 1.104, 0.46503496503496505, 0.9999885535681331,
    ),
    ("shaper", ("reno", "cubic")): (
        0.9998400000000001, 1.008, 0.0436418359668924, 0.9999997695263074,
    ),
    ("fairpolicer", ("bbr", "reno")): (
        0.99696, 1.1328, 0.4185340802987862, 0.9999942048524393,
    ),
}


@pytest.mark.parametrize(
    "scheme,ccs", sorted(PINNED), ids=lambda v: v if isinstance(v, str) else "+".join(v)
)
def test_outcomes_identical_to_pre_overhaul_engine(scheme, ccs):
    specs = [
        FlowSpec(slot=i, cc=cc, rtt=ms(20 + 15 * i)) for i, cc in enumerate(ccs)
    ]
    result = common.run_aggregate(
        scheme, specs, rate=mbps(5), max_rtt=ms(80), horizon=6.0, warmup=1.0
    )
    expected = PINNED[(scheme, ccs)]
    got = (
        result.mean_normalized_throughput,
        result.peak_normalized_throughput,
        result.drop_rate,
        result.fairness,
    )
    # Exact equality is the contract: the engines are the same simulation.
    assert got == expected


@pytest.mark.batch
@pytest.mark.parametrize(
    "scheme,ccs", sorted(PINNED), ids=lambda v: v if isinstance(v, str) else "+".join(v)
)
def test_batched_engine_matches_unbatched(scheme, ccs):
    """The batched packet path is the same simulation at a different
    delivery granularity: every outcome metric must be bit-for-bit equal
    between ``batch=1`` (legacy per-packet reference) and the unbounded
    batched engine, across all five schemes."""
    specs = [
        FlowSpec(slot=i, cc=cc, rtt=ms(20 + 15 * i)) for i, cc in enumerate(ccs)
    ]
    results = [
        common.run_aggregate(
            scheme, specs, rate=mbps(5), max_rtt=ms(80), horizon=6.0,
            warmup=1.0, batch=batch,
        )
        for batch in (1, None)
    ]
    unbatched, batched = results
    assert (
        unbatched.mean_normalized_throughput,
        unbatched.peak_normalized_throughput,
        unbatched.drop_rate,
        unbatched.fairness,
    ) == (
        batched.mean_normalized_throughput,
        batched.peak_normalized_throughput,
        batched.drop_rate,
        batched.fairness,
    )
    # And both match the pre-overhaul pinned figures.
    assert (
        batched.mean_normalized_throughput,
        batched.peak_normalized_throughput,
        batched.drop_rate,
        batched.fairness,
    ) == PINNED[(scheme, ccs)]
