"""Tests for the token-bucket policer."""

import pytest

from repro.limiters.token_bucket import TokenBucketPolicer
from repro.net.packet import FlowId, Packet
from repro.net.sink import NullSink
from repro.sim.simulator import Simulator

FLOW = FlowId(0, 0)


def make(sim, rate=10_000.0, bucket=3000.0, full=True):
    tb = TokenBucketPolicer(sim, rate=rate, bucket_bytes=bucket,
                            initially_full=full)
    tb.connect(NullSink())
    return tb


def pkt(seq=0, size=1500):
    return Packet.data(FLOW, seq, 0.0, size=size)


class TestTokenBucket:
    def test_burst_up_to_bucket_then_drop(self):
        sim = Simulator()
        tb = make(sim)  # bucket = 2 packets
        tb.receive(pkt(0))
        tb.receive(pkt(1))
        tb.receive(pkt(2))
        assert tb.stats.forwarded_packets == 2
        assert tb.stats.dropped_packets == 1

    def test_tokens_refill_over_time(self):
        sim = Simulator()
        tb = make(sim, rate=1500.0, bucket=1500.0)
        tb.receive(pkt(0))
        assert tb.tokens == pytest.approx(0.0)
        sim.schedule(1.0, lambda: tb.receive(pkt(1)))
        sim.run()
        assert tb.stats.forwarded_packets == 2

    def test_refill_capped_at_bucket(self):
        sim = Simulator()
        tb = make(sim, rate=1e6, bucket=3000.0)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert tb.tokens == pytest.approx(3000.0)

    def test_long_run_rate_enforced(self):
        """A saturating arrival process passes exactly rate x time bytes."""
        sim = Simulator()
        rate = 15_000.0
        tb = make(sim, rate=rate, bucket=3000.0, full=False)

        def arrive(i=[0]):
            tb.receive(pkt(i[0]))
            i[0] += 1
            sim.schedule(0.01, arrive)  # 150 kB/s demand, 10x the rate

        sim.schedule(0.0, arrive)
        sim.run(until=20.0)
        assert tb.stats.forwarded_bytes == pytest.approx(rate * 20.0, rel=0.02)

    def test_initially_empty(self):
        sim = Simulator()
        tb = make(sim, full=False)
        tb.receive(pkt())
        assert tb.stats.dropped_packets == 1

    def test_small_packets_pass_when_large_wont(self):
        sim = Simulator()
        tb = make(sim, rate=1000.0, bucket=1500.0)
        tb.receive(pkt(0))  # drains bucket
        tb.receive(pkt(1, size=1500))
        assert tb.stats.dropped_packets == 1
        sim.schedule(0.2, lambda: tb.receive(pkt(2, size=100)))
        sim.run()
        assert tb.stats.forwarded_packets == 2

    def test_requires_downstream(self):
        sim = Simulator()
        tb = TokenBucketPolicer(sim, rate=100.0, bucket_bytes=2000.0)
        with pytest.raises(RuntimeError):
            tb.receive(pkt())

    def test_invalid_params(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TokenBucketPolicer(sim, rate=0, bucket_bytes=1)
        with pytest.raises(ValueError):
            TokenBucketPolicer(sim, rate=1, bucket_bytes=0)

    def test_cost_is_alu_only(self):
        sim = Simulator()
        tb = make(sim)
        for i in range(10):
            tb.receive(pkt(i))
        snapshot = tb.cost.snapshot()
        assert snapshot["alu"] > 0
        assert snapshot["pkt_store"] == 0
        assert snapshot["pkt_fetch"] == 0
        assert snapshot["timer"] == 0
