"""Tests for the soft-reschedule :class:`repro.sim.Timer`.

The timer's contract has two halves: the usual one-shot semantics
(fires at the deadline, cancellable, reschedulable) and the ordering
guarantee that makes the engine overhaul byte-identical — the callback
executes at exactly the heap position ``(deadline, seq)`` that the
*latest* reschedule reserved, so same-instant ties interleave with other
events precisely as the old cancel+push engine did.
"""

import pytest
from hypothesis import given, strategies as st

from repro.sim import SimulationError, Simulator, Timer


class TestBasicSemantics:
    def test_fires_at_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.schedule_after(1.5)
        assert timer.active
        assert timer.deadline == 1.5
        sim.run()
        assert fired == [1.5]
        assert not timer.active

    def test_schedule_at_absolute(self):
        sim = Simulator(start_time=3.0)
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.schedule_at(4.0)
        sim.run()
        assert fired == [4.0]

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.schedule_after(1.0)
        timer.cancel()
        assert not timer.active
        sim.run()
        assert fired == []

    def test_cancel_inactive_is_noop(self):
        sim = Simulator()
        Timer(sim, lambda: None).cancel()

    def test_callback_may_reschedule(self):
        sim = Simulator()
        fired = []

        def tick() -> None:
            fired.append(sim.now)
            if len(fired) < 3:
                timer.schedule_after(1.0)

        timer = Timer(sim, tick)
        timer.schedule_after(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.1])
    def test_rejects_bad_delay(self, bad):
        timer = Timer(Simulator(), lambda: None)
        with pytest.raises(SimulationError):
            timer.schedule_after(bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_rejects_bad_time(self, bad):
        timer = Timer(Simulator(), lambda: None)
        with pytest.raises(SimulationError):
            timer.schedule_at(bad)


class TestSoftReschedule:
    def test_reschedule_later_never_fires_stale(self):
        # The per-ACK pattern: push the deadline out on every tick.  The
        # timer must fire exactly once, at the final deadline.
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.schedule_after(1.0)
        for i in range(20):
            sim.schedule(0.04 * (i + 1), timer.schedule_after, 1.0)
        sim.run()
        assert fired == [0.8 + 1.0]

    def test_reschedule_later_is_heap_free(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.schedule_after(1.0)
        pushes = sim.heap_pushes
        for _ in range(100):
            timer.schedule_after(1.0)  # deadline moves, heap untouched
        assert sim.heap_pushes == pushes
        sim.run()

    def test_reschedule_earlier_fires_at_new_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.schedule_after(5.0)
        timer.schedule_after(1.0)
        sim.run()
        assert fired == [1.0]

    def test_cancel_then_reschedule_reuses_stale_wake(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.schedule_after(1.0)
        timer.cancel()
        timer.schedule_after(2.0)  # old wake re-arms lazily at t=1
        sim.run()
        assert fired == [2.0]

    def test_stale_wake_discarded_after_cancel(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.schedule_after(1.0)
        timer.schedule_after(3.0)
        timer.cancel()
        sim.run()
        assert fired == []


class TestTieOrdering:
    def test_same_instant_insertion_order_with_events(self):
        # A timer scheduled between two plain events at the same instant
        # fires between them — the old cancel+push engine's order.
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "before")
        timer = Timer(sim, lambda: fired.append("timer"))
        timer.schedule_at(1.0)
        sim.schedule(1.0, fired.append, "after")
        sim.run()
        assert fired == ["before", "timer", "after"]

    def test_reschedule_moves_timer_to_back_of_tie(self):
        # Rescheduling to the *same* deadline must re-seat the timer at
        # the reschedule point: an event scheduled in between now fires
        # first.  This is the tie the RTO/TLP constant-PTO clamp hits.
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append("timer"))
        timer.schedule_at(1.0)
        sim.schedule(1.0, fired.append, "event")

        def resched() -> None:
            timer.schedule_at(1.0)  # same deadline, later seq

        sim.schedule(0.5, resched)
        sim.run()
        assert fired == ["event", "timer"]

    def test_two_timers_tie_in_latest_reschedule_order(self):
        sim = Simulator()
        fired = []
        a = Timer(sim, lambda: fired.append("a"))
        b = Timer(sim, lambda: fired.append("b"))
        a.schedule_at(1.0)
        b.schedule_at(1.0)

        def resched_a() -> None:
            a.schedule_at(1.0)  # a now reserved *after* b

        sim.schedule(0.5, resched_a)
        sim.run()
        assert fired == ["b", "a"]

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 9)),
            min_size=1,
            max_size=30,
        )
    )
    def test_timer_order_matches_cancel_push_reference(self, ops):
        """Property: N timers driven by an arbitrary reschedule script
        fire in exactly the order a cancel+push implementation would."""

        def drive(schedule_timer, cancel_timer, sim, fired):
            # Replay the script at t in {1, 2, ...}; every op targets a
            # shared deadline instant t=100 so everything ties there.
            for step, (tid, action) in enumerate(ops):
                if action == 0:
                    sim.schedule(float(step + 1), cancel_timer, tid)
                else:
                    sim.schedule(float(step + 1), schedule_timer, tid)
            sim.run()
            return fired

        # Reference: plain cancel+push via schedule_at handles.
        ref_sim = Simulator()
        ref_fired = []
        handles = {}

        def ref_schedule(tid):
            if tid in handles:
                handles[tid].cancel()
            handles[tid] = ref_sim.schedule_at(100.0, ref_fired.append, tid)

        def ref_cancel(tid):
            if tid in handles:
                handles[tid].cancel()
                del handles[tid]

        drive(ref_schedule, ref_cancel, ref_sim, ref_fired)

        # Subject: soft-reschedule timers.
        sim = Simulator()
        fired = []
        timers = {
            tid: Timer(sim, (lambda t: lambda: fired.append(t))(tid))
            for tid in range(4)
        }
        drive(
            lambda tid: timers[tid].schedule_at(100.0),
            lambda tid: timers[tid].cancel(),
            sim,
            fired,
        )
        assert fired == ref_fired
