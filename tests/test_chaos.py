"""Deterministic chaos harness for the supervised sweep runner.

Seeded/explicit fault plans kill workers mid-cell (SIGKILL, as an OOM
killer would), hang them (recovered by the task timeout), raise
transient exceptions, and corrupt at-rest cache/journal entries — and
every test asserts the three properties the fault-tolerance layer
promises:

* **recovery** — the sweep completes despite the faults;
* **accounting** — retries/crashes/timeouts are counted exactly (the
  plans are deterministic, so the counts are too);
* **identity** — recovered output is byte-identical to a clean serial
  run (supervision changes availability, never values).

Fast fixed-seed smoke slice: ``pytest -m chaos`` (the whole module).
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import tempfile
from pathlib import Path

import pytest

from repro.experiments.common import print_table
from repro.runner.pool import _task_name
from repro.runner import (
    AggregateConfig,
    FaultPlan,
    ResultCache,
    RetryPolicy,
    SweepError,
    SweepJournal,
    TransientFault,
    corrupt_file,
    run_supervised,
    run_tasks,
    simulate_aggregate,
)
from repro.units import mbps, ms
from repro.workload.spec import FlowSpec

pytestmark = pytest.mark.chaos

#: No backoff sleeping in tests: retry schedules stay deterministic
#: through RetryPolicy.delay() but cost zero wall clock.
FAST = RetryPolicy(retries=2, backoff_base=0.0)


def _double(x):
    return x * 2


def _crumb_double(arg):
    """Worker that leaves one breadcrumb file per invocation."""
    value, crumb_dir = arg
    fd, _ = tempfile.mkstemp(prefix=f"cell{value}-", dir=crumb_dir)
    os.close(fd)
    return value * 2


def _crumb_count(crumb_dir, value) -> int:
    return sum(
        1 for name in os.listdir(crumb_dir)
        if name.startswith(f"cell{value}-")
    )


def _tiny_grid(n=3):
    return [
        AggregateConfig(
            scheme="bcpqp",
            specs=(FlowSpec(slot=0, cc="reno", rtt=ms(20)),
                   FlowSpec(slot=1, cc="cubic", rtt=ms(30))),
            rate=mbps(5),
            max_rtt=ms(30),
            horizon=1.5,
            warmup=0.5,
            seed=seed,
        )
        for seed in range(1, n + 1)
    ]


def _figure_table(outcomes) -> bytes:
    """Render outcomes the way the figure modules do (print_table)."""
    rows = [
        [o.scheme, f"{o.mean_normalized_throughput:.3f}",
         f"{o.drop_rate:.4f}", o.arrived_packets,
         f"{o.cycles_per_packet:.2f}"]
        for o in outcomes
    ]
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        print_table(["scheme", "mean", "drops", "pkts", "cycles"], rows)
    return buffer.getvalue().encode()


class TestFaultRecovery:
    def test_sigkilled_worker_does_not_take_down_the_sweep(self):
        plan = FaultPlan.explicit({1: ["kill"]})
        report = run_supervised(
            _double, range(6), jobs=2, policy=FAST, fault_plan=plan
        )
        assert report.results == [0, 2, 4, 6, 8, 10]
        assert report.ok
        assert report.stats.crashes == 1
        assert report.stats.retries == 1

    def test_hung_cell_is_timed_out_and_retried(self):
        plan = FaultPlan.explicit({0: ["hang"]}, hang_seconds=30.0)
        report = run_supervised(
            _double, range(3), jobs=2, policy=FAST,
            task_timeout=1.0, fault_plan=plan,
        )
        assert report.results == [0, 2, 4]
        assert report.stats.timeouts == 1
        assert report.stats.retries == 1

    def test_transient_exception_is_retried_with_accounting(self):
        plan = FaultPlan.explicit({2: ["raise", "raise"]})
        report = run_supervised(
            _double, range(4), jobs=2, policy=FAST, fault_plan=plan
        )
        assert report.results == [0, 2, 4, 6]
        assert report.stats.errors == 2
        assert report.stats.retries == 2
        assert report.stats.crashes == 0

    def test_seeded_plan_is_deterministic(self):
        assert FaultPlan.seeded(7, 20, rate=0.5) == \
            FaultPlan.seeded(7, 20, rate=0.5)
        assert FaultPlan.seeded(7, 20, rate=0.5) != \
            FaultPlan.seeded(8, 20, rate=0.5)

    def test_mixed_seeded_faults_still_recover_identically(self):
        # One seeded storm over a real (tiny) simulation grid: killed,
        # raising and clean cells must all land on clean-run values.
        grid = _tiny_grid(3)
        clean = run_tasks(simulate_aggregate, grid)
        plan = FaultPlan.seeded(3, len(grid), rate=0.7,
                                kinds=("kill", "raise"))
        assert plan.plan, "seed must inject at least one fault"
        report = run_supervised(
            simulate_aggregate, grid, jobs=2, policy=FAST, fault_plan=plan
        )
        assert report.ok
        assert _figure_table(report.results) == _figure_table(clean)


class TestFailurePolicy:
    def test_exhausted_retries_record_failure_and_continue(self):
        plan = FaultPlan.explicit({0: ["raise"] * 3})
        report = run_supervised(
            _double, range(3), jobs=2, policy=FAST, fault_plan=plan
        )
        assert report.results == [None, 2, 4]
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert (failure.index, failure.kind, failure.attempts) == \
            (0, "error", 3)
        assert "TransientFault" in failure.detail

    def test_fail_fast_aborts_with_sweep_error(self):
        plan = FaultPlan.explicit({0: ["raise"] * 3})
        with pytest.raises(SweepError) as excinfo:
            run_supervised(
                _double, range(3), jobs=2, policy=FAST,
                fault_plan=plan, fail_fast=True,
            )
        assert excinfo.value.report.failures

    def test_run_tasks_surfaces_permanent_failures(self):
        plan = FaultPlan.explicit({1: ["raise"] * 2})
        with pytest.raises(SweepError):
            run_tasks(_double, range(3), jobs=2, retries=1,
                      fault_plan=plan)

    def test_circuit_breaker_degrades_parallel_to_serial(self):
        # Every cell crashes twice: the breaker must walk the worker
        # budget down (parallel -> reduced -> serial) instead of aborting,
        # and the third attempts still produce correct results.
        plan = FaultPlan.explicit({i: ["kill", "kill"] for i in range(4)})
        policy = RetryPolicy(retries=3, backoff_base=0.0,
                             breaker_threshold=2)
        report = run_supervised(
            _double, range(4), jobs=4, policy=policy, fault_plan=plan
        )
        assert report.results == [0, 2, 4, 6]
        assert report.stats.crashes == 8
        assert len(report.stats.degradations) >= 2
        assert "serial" in report.stats.degradations[-1]


class TestCorruptCache:
    def test_corrupt_entry_is_quarantined_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _tiny_grid(1)[0]
        first = run_tasks(simulate_aggregate, [config], cache=cache)
        entries = list(tmp_path.glob("*.pkl"))
        assert len(entries) == 1
        corrupt_file(entries[0], mode="truncate")
        second = run_tasks(simulate_aggregate, [config], cache=cache)
        assert cache.corrupt == 1
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [entries[0].name]
        assert _figure_table(first) == _figure_table(second)
        # The recomputed value was re-stored and verifies again.
        assert len(list(tmp_path.glob("*.pkl"))) == 1

    def test_garbled_entry_detected_by_checksum(self, tmp_path):
        # Same length, flipped bytes: only the digest can catch this.
        cache = ResultCache(tmp_path)
        cache.store("abc", {"x": list(range(100))})
        corrupt_file(tmp_path / "abc.pkl", mode="garble")
        hit, value = cache.load("abc")
        assert not hit and value is None
        assert cache.corrupt == 1

    def test_supervised_sweep_rides_through_corrupt_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        clean = run_tasks(_double, range(4), cache=cache)
        for entry in tmp_path.glob("*.pkl"):
            corrupt_file(entry, mode="truncate")
        report = run_supervised(
            _double, range(4), jobs=2, policy=FAST, cache=cache
        )
        assert report.results == clean
        assert cache.corrupt == 4


class TestJournalResume:
    def test_resume_replays_only_missing_cells(self, tmp_path):
        crumbs = tmp_path / "crumbs"
        crumbs.mkdir()
        cells = [(i, str(crumbs)) for i in range(5)]
        # First run: cell 3 fails permanently, the rest complete.
        plan = FaultPlan.explicit({3: ["raise"] * 2})
        policy = RetryPolicy(retries=1, backoff_base=0.0)
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        report = run_supervised(
            _crumb_double, cells, jobs=2, policy=policy,
            journal=journal, fault_plan=plan,
        )
        assert report.results == [0, 2, 4, None, 8]
        counts_before = {i: _crumb_count(crumbs, i) for i in range(5)}
        # Resume: only the missing cell reruns; replayed results are
        # loaded from the journal, not recomputed.
        journal2 = SweepJournal(tmp_path / "sweep.jsonl")
        report2 = run_supervised(
            _crumb_double, cells, jobs=2, policy=policy, journal=journal2
        )
        assert report2.results == [0, 2, 4, 6, 8]
        assert report2.stats.replayed == 4
        for i in (0, 1, 2, 4):
            assert _crumb_count(crumbs, i) == counts_before[i]
        assert _crumb_count(crumbs, 3) == counts_before[3] + 1

    def test_interrupted_resume_tables_are_byte_identical(self, tmp_path):
        # The acceptance property: interrupt a figure sweep mid-way,
        # resume it, and the rendered table must match an uninterrupted
        # serial run byte for byte.
        grid = _tiny_grid(3)
        uninterrupted = _figure_table(run_tasks(simulate_aggregate, grid))
        # "Ctrl-C" stand-in: fail-fast aborts the sweep after at least
        # one cell has been journaled (cell 1 permanently faults).
        plan = FaultPlan.explicit({1: ["raise"]})
        journal = SweepJournal(tmp_path / "fig.jsonl")
        with pytest.raises(SweepError):
            run_supervised(
                simulate_aggregate, grid, jobs=1,
                policy=RetryPolicy(retries=0, backoff_base=0.0),
                journal=journal, fault_plan=plan, fail_fast=True,
            )
        assert journal.results, "interruption must leave journaled cells"
        resumed = run_supervised(
            simulate_aggregate, grid, jobs=1,
            policy=RetryPolicy(retries=0, backoff_base=0.0),
            journal=SweepJournal(tmp_path / "fig.jsonl"),
        )
        assert resumed.ok
        assert resumed.stats.replayed >= 1
        assert _figure_table(resumed.results) == uninterrupted

    def test_torn_journal_line_is_skipped(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        report = run_supervised(_double, range(3), jobs=1, policy=FAST,
                                journal=journal)
        assert report.results == [0, 2, 4]
        # A crash mid-append leaves a torn trailing line.
        with (tmp_path / "sweep.jsonl").open("a") as fh:
            fh.write('{"done": 99, "resul')
        journal2 = SweepJournal(tmp_path / "sweep.jsonl")
        journal2.bind(_task_name(_double), [repr(x) for x in range(3)])
        assert sorted(journal2.results) == [0, 1, 2]
        journal2.close()

    def test_corrupt_journal_result_reruns_cell(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        run_supervised(_double, range(3), jobs=1, policy=FAST,
                       journal=journal)
        corrupt_file(Path(f"{tmp_path / 'sweep.jsonl'}.d") / "1.pkl",
                     mode="truncate")
        journal2 = SweepJournal(tmp_path / "sweep.jsonl")
        report = run_supervised(_double, range(3), jobs=1, policy=FAST,
                                journal=journal2)
        assert report.results == [0, 2, 4]
        assert report.stats.replayed == 2

    def test_stale_journal_for_different_grid_is_rotated(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        run_supervised(_double, range(3), jobs=1, policy=FAST,
                       journal=journal)
        journal2 = SweepJournal(tmp_path / "sweep.jsonl")
        with pytest.warns(RuntimeWarning, match="different grid"):
            report = run_supervised(_double, range(4), jobs=1, policy=FAST,
                                    journal=journal2)
        assert report.results == [0, 2, 4, 6]
        assert report.stats.replayed == 0
        assert (tmp_path / "sweep.jsonl.stale").exists()

    def test_journal_records_fault_events(self, tmp_path):
        plan = FaultPlan.explicit({0: ["raise"]})
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        run_supervised(_double, range(2), jobs=1, policy=FAST,
                       journal=journal, fault_plan=plan)
        lines = [
            json.loads(raw)
            for raw in (tmp_path / "sweep.jsonl").read_text().splitlines()
        ]
        events = [l for l in lines if "event" in l]
        assert [(e["event"], e["index"]) for e in events] == [("error", 0)]


class TestRetrySchedule:
    def test_backoff_grows_and_is_deterministic(self):
        policy = RetryPolicy(retries=5, backoff_base=0.5, jitter=0.1,
                             seed=42)
        delays = [policy.delay(3, attempt) for attempt in range(4)]
        assert delays == [policy.delay(3, a) for a in range(4)]
        for earlier, later in zip(delays, delays[1:]):
            assert later > earlier
        for attempt, delay in enumerate(delays):
            base = 0.5 * 2.0 ** attempt
            assert base <= delay <= base * 1.1

    def test_backoff_respects_ceiling(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_max=2.0, jitter=0.0)
        assert policy.delay(0, 10) == 2.0
