"""Property tests for Theorem 1 (§3.4).

Over any interval in which a phantom queue stays non-empty, the bytes it
accepts are bounded by ``r x dt ± B``; and a multi-queue system's aggregate
acceptance is bounded by ``r x dt ± sum(B_i)``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.classify.classifier import SlotClassifier
from repro.core.pqp import PQP
from repro.net.packet import FlowId, Packet
from repro.net.sink import NullSink
from repro.policy.tree import Policy
from repro.sim.simulator import Simulator


@st.composite
def arrival_pattern(draw):
    """A list of (inter-arrival, queue, size) tuples."""
    n = draw(st.integers(min_value=20, max_value=150))
    gaps = draw(st.lists(st.floats(min_value=0.0, max_value=0.02),
                         min_size=n, max_size=n))
    queues = draw(st.lists(st.integers(min_value=0, max_value=1),
                           min_size=n, max_size=n))
    sizes = draw(st.lists(st.integers(min_value=100, max_value=1500),
                          min_size=n, max_size=n))
    return list(zip(gaps, queues, sizes))


@settings(deadline=None, max_examples=60)
@given(arrival_pattern(),
       st.floats(min_value=1e4, max_value=1e6),
       st.floats(min_value=3000, max_value=30_000))
def test_acceptance_bounded_by_rate_and_buffers(pattern, rate, capacity):
    """A(t1, t2) <= r x dt + sum(B_i) for arbitrary arrivals — the upper
    half of Theorem 1 holds unconditionally (the lower bound needs the
    non-empty condition, exercised in the deterministic test below)."""
    sim = Simulator()
    pqp = PQP(sim, rate=rate, policy=Policy.fair(2),
              classifier=SlotClassifier(2), queue_bytes=capacity)
    pqp.connect(NullSink())
    now = 0.0
    for gap, queue, size in pattern:
        now += gap
        sim.run(until=now)
        pqp.receive(Packet.data(FlowId(0, queue), 0, now, size=size))
    accepted = pqp.stats.forwarded_bytes
    assert accepted <= rate * now + 2 * capacity + 1e-6


def test_lower_bound_when_queue_never_empties():
    """While the queue stays non-empty, acceptance >= r x dt - B."""
    sim = Simulator()
    rate, capacity = 150_000.0, 15_000.0
    pqp = PQP(sim, rate=rate, policy=Policy.fair(1),
              classifier=SlotClassifier(1), queue_bytes=capacity)
    pqp.connect(NullSink())

    # Saturating arrivals: the queue is always topped up, never empty.
    def arrive(i=[0]):
        for _ in range(4):
            pqp.receive(Packet.data(FlowId(0, 0), i[0], sim.now))
            i[0] += 1
        sim.schedule(0.01, arrive)

    sim.schedule(0.0, arrive)
    sim.run(until=10.0)
    accepted = pqp.stats.forwarded_bytes
    assert accepted >= rate * 10.0 - capacity - 1e-6
    assert accepted <= rate * 10.0 + capacity + 1e-6
    # And the long-run average rate converges to r (the limit in §3.4).
    assert accepted / 10.0 == pytest.approx(rate, rel=capacity / (rate * 10))


def test_enforced_rate_converges_as_interval_grows():
    """r' = A/dt approaches r as dt grows (the limit argument of §3.4)."""
    sim = Simulator()
    rate, capacity = 150_000.0, 30_000.0
    pqp = PQP(sim, rate=rate, policy=Policy.fair(1),
              classifier=SlotClassifier(1), queue_bytes=capacity)
    pqp.connect(NullSink())
    checkpoints = {}

    def arrive(i=[0]):
        for _ in range(4):
            pqp.receive(Packet.data(FlowId(0, 0), i[0], sim.now))
            i[0] += 1
        sim.schedule(0.01, arrive)

    sim.schedule(0.0, arrive)
    errors = []
    for horizon in (1.0, 5.0, 25.0):
        sim.run(until=horizon)
        checkpoints[horizon] = pqp.stats.forwarded_bytes
        errors.append(abs(checkpoints[horizon] / horizon - rate) / rate)
    assert errors[0] >= errors[1] >= errors[2]
    assert errors[2] < 0.01
