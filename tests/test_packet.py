"""Tests for packet and flow-identity types."""

from hypothesis import given, strategies as st

from repro.net.packet import FlowId, Packet, PacketKind
from repro.units import ACK_SIZE, MSS


def test_data_packet_defaults():
    flow = FlowId(1, 2)
    pkt = Packet.data(flow, seq=5, sent_at=1.0)
    assert pkt.is_data and not pkt.is_ack
    assert pkt.size == MSS
    assert pkt.seq == 5
    assert pkt.retransmit is False


def test_ack_packet():
    flow = FlowId(1, 2)
    ack = Packet.ack(flow, ack_next=7, sent_at=2.0, echo_ts=1.5, echo_retransmit=False)
    assert ack.is_ack and not ack.is_data
    assert ack.size == ACK_SIZE
    assert ack.ack_next == 7
    assert ack.echo_ts == 1.5


def test_ack_carries_sack_blocks():
    flow = FlowId(0, 0)
    ack = Packet.ack(flow, 3, 1.0, echo_ts=0.9, echo_retransmit=False,
                     sack=((5, 8), (10, 11)))
    assert ack.sack == ((5, 8), (10, 11))


def test_packet_uids_unique():
    flow = FlowId(0, 0)
    uids = {Packet.data(flow, i, 0.0).uid for i in range(100)}
    assert len(uids) == 100


def test_flow_id_identity_and_hash():
    assert FlowId(1, 2, 0) == FlowId(1, 2, 0)
    assert FlowId(1, 2, 0) != FlowId(1, 2, 1)
    assert len({FlowId(1, 2, 0), FlowId(1, 2, 0), FlowId(1, 3, 0)}) == 2


def test_flow_id_str():
    assert str(FlowId(3, 1, 2)) == "agg3.s1.i2"


def test_kind_enum():
    assert PacketKind.DATA.value == "data"
    assert PacketKind.ACK.value == "ack"


class TestAckPool:
    def setup_method(self):
        Packet._ack_pool.clear()

    def test_recycled_ack_is_reissued(self):
        flow = FlowId(0, 0)
        ack = Packet.ack(flow, 1, 0.0, echo_ts=0.0, echo_retransmit=False)
        Packet.recycle_ack(ack)
        reissued = Packet.ack(flow, 2, 1.0, echo_ts=0.5, echo_retransmit=True)
        assert reissued is ack

    def test_reissue_resets_every_field_and_bumps_generation(self):
        flow = FlowId(0, 0)
        ack = Packet.ack(flow, 9, 0.0, echo_ts=0.1, echo_retransmit=True,
                         sack=((2, 4),))
        ack.ce = True
        ack.ecn_echo = True
        gen, uid = ack.generation, ack.uid
        Packet.recycle_ack(ack)
        fresh = Packet.ack(FlowId(1, 1), 3, 2.0, echo_ts=1.5,
                           echo_retransmit=False)
        assert fresh is ack
        assert fresh.generation == gen + 1
        assert fresh.uid != uid
        assert fresh.flow == FlowId(1, 1)
        assert fresh.ack_next == 3
        assert fresh.sent_at == 2.0
        assert fresh.echo_ts == 1.5
        assert fresh.echo_retransmit is False
        assert fresh.sack == ()
        assert fresh.ce is False and fresh.ecn_echo is False

    def test_double_recycle_never_duplicates_pool_entry(self):
        # A consumed packet must not be resurrectable twice: the second
        # recycle is a no-op, so two subsequent acks are distinct objects.
        flow = FlowId(0, 0)
        ack = Packet.ack(flow, 1, 0.0, echo_ts=0.0, echo_retransmit=False)
        Packet.recycle_ack(ack)
        Packet.recycle_ack(ack)
        a = Packet.ack(flow, 2, 1.0, echo_ts=0.0, echo_retransmit=False)
        b = Packet.ack(flow, 3, 2.0, echo_ts=0.0, echo_retransmit=False)
        assert a is not b

    def test_data_packets_never_pooled(self):
        pkt = Packet.data(FlowId(0, 0), 1, 0.0)
        Packet.recycle_ack(pkt)
        assert Packet._ack_pool == []

    def test_pool_is_bounded(self):
        flow = FlowId(0, 0)
        acks = [Packet.ack(flow, i, 0.0, echo_ts=0.0, echo_retransmit=False)
                for i in range(Packet._ACK_POOL_MAX + 50)]
        for ack in acks:
            Packet.recycle_ack(ack)
        assert len(Packet._ack_pool) == Packet._ACK_POOL_MAX

    def test_pool_fields_do_not_leak_into_eq_or_repr(self):
        flow = FlowId(0, 0)
        a = Packet.ack(flow, 1, 0.0, echo_ts=0.0, echo_retransmit=False)
        Packet.recycle_ack(a)
        b = Packet.ack(flow, 1, 0.0, echo_ts=0.0, echo_retransmit=False)
        assert "generation" not in repr(b) and "_in_pool" not in repr(b)

    @given(st.lists(st.booleans(), min_size=1, max_size=60))
    def test_reissue_never_resurrects_live_ack(self, recycle_script):
        """Property: across an arbitrary alloc/recycle interleaving, a
        reissued object is never one the caller still holds live, and
        every reissue bumps the recycled object's generation."""
        Packet._ack_pool.clear()
        flow = FlowId(0, 0)
        live: dict[int, tuple[Packet, int]] = {}
        for i, do_recycle in enumerate(recycle_script):
            ack = Packet.ack(flow, i, float(i), echo_ts=0.0,
                             echo_retransmit=False)
            # Reissue must never hand back an object still held live.
            assert id(ack) not in live
            if do_recycle:
                expected_gen = ack.generation + 1
                Packet.recycle_ack(ack)
                live.pop(id(ack), None)
                # Next alloc reuses it (LIFO pool) with a bumped generation.
                again = Packet.ack(flow, i, float(i), echo_ts=0.0,
                                   echo_retransmit=False)
                assert again is ack and again.generation == expected_gen
                live[id(again)] = (again, again.generation)
            else:
                live[id(ack)] = (ack, ack.generation)
