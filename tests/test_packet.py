"""Tests for packet and flow-identity types."""

from repro.net.packet import FlowId, Packet, PacketKind
from repro.units import ACK_SIZE, MSS


def test_data_packet_defaults():
    flow = FlowId(1, 2)
    pkt = Packet.data(flow, seq=5, sent_at=1.0)
    assert pkt.is_data and not pkt.is_ack
    assert pkt.size == MSS
    assert pkt.seq == 5
    assert pkt.retransmit is False


def test_ack_packet():
    flow = FlowId(1, 2)
    ack = Packet.ack(flow, ack_next=7, sent_at=2.0, echo_ts=1.5, echo_retransmit=False)
    assert ack.is_ack and not ack.is_data
    assert ack.size == ACK_SIZE
    assert ack.ack_next == 7
    assert ack.echo_ts == 1.5


def test_ack_carries_sack_blocks():
    flow = FlowId(0, 0)
    ack = Packet.ack(flow, 3, 1.0, echo_ts=0.9, echo_retransmit=False,
                     sack=((5, 8), (10, 11)))
    assert ack.sack == ((5, 8), (10, 11))


def test_packet_uids_unique():
    flow = FlowId(0, 0)
    uids = {Packet.data(flow, i, 0.0).uid for i in range(100)}
    assert len(uids) == 100


def test_flow_id_identity_and_hash():
    assert FlowId(1, 2, 0) == FlowId(1, 2, 0)
    assert FlowId(1, 2, 0) != FlowId(1, 2, 1)
    assert len({FlowId(1, 2, 0), FlowId(1, 2, 0), FlowId(1, 3, 0)}) == 2


def test_flow_id_str():
    assert str(FlowId(3, 1, 2)) == "agg3.s1.i2"


def test_kind_enum():
    assert PacketKind.DATA.value == "data"
    assert PacketKind.ACK.value == "ack"
