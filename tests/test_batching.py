"""Batched packet path: ordering and equivalence properties.

The batched engine's contract is that a batch is *bookkeeping*, not a
semantic unit: draining a same-instant prefix of a pipe/link FIFO in one
callback must produce exactly the global event interleaving the
per-packet engine would have produced.  These tests drive randomized
workloads of packet arrivals and competing timer events through a
:class:`~repro.net.pipe.Pipe` under every interesting batch limit
(1 = legacy per-packet, tiny caps that split batches at awkward places,
and the unbounded default) and require the observed delivery/timer log
to be *identical* across all of them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import FlowId, Packet
from repro.net.pipe import Pipe
from repro.sim.simulator import Simulator

pytestmark = pytest.mark.batch

#: Batch limits under test: the two engine endpoints plus boundary-forcing
#: caps (a cap of 2 or 3 splits every burst into multiple drains).
BATCH_LIMITS = (1, 2, 3, None)

FLOW = FlowId(aggregate=0, slot=0)


class _Recorder:
    """Terminal sink logging each delivery as ("pkt", time, seq)."""

    def __init__(self, sim: Simulator, log: list) -> None:
        self._sim = sim
        self._log = log

    def receive(self, packet: Packet) -> None:
        self._log.append(("pkt", self._sim.now, packet.seq))


def _run_scenario(batch, arrivals, timers, delay):
    """One simulation: ``arrivals`` are (time, count) packet bursts into a
    pipe, ``timers`` are competing pure events; returns the merged log."""
    sim = Simulator(batch_limit=batch)
    log: list = []
    pipe = Pipe(sim, delay, _Recorder(sim, log))
    seq = 0
    for time, count in arrivals:
        # Unique seq per packet, stable across batch limits.
        burst = [seq + i for i in range(count)]
        seq += count

        def fire(t=time, burst=tuple(burst)):
            for s in burst:
                pipe.receive(Packet.data(FLOW, seq=s, sent_at=t))

        sim.call_at(time, fire)
    for time in timers:
        sim.call_at(time, lambda t=time: log.append(("timer", t)))
    sim.run()
    return log


@given(
    arrivals=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=8,
    ),
    timers=st.lists(
        st.floats(min_value=0.0, max_value=0.02, allow_nan=False),
        max_size=6,
    ),
    delay=st.sampled_from((0.0, 0.001, 0.0042)),
)
@settings(max_examples=40, deadline=None)
def test_batch_boundaries_preserve_global_event_order(arrivals, timers, delay):
    """Property: for random bursts of pipe arrivals interleaved with
    competing timer events — including exact time ties, where ordering
    falls to reserved seqs — every batch limit yields the identical
    globally-ordered log."""
    reference = _run_scenario(1, arrivals, timers, delay)
    for batch in BATCH_LIMITS[1:]:
        assert _run_scenario(batch, arrivals, timers, delay) == reference


def test_batch_one_uses_legacy_drain():
    """``batch=1`` must keep the per-packet reference path: no batched
    deliveries are ever counted."""
    sim = Simulator(batch_limit=1)
    log: list = []
    pipe = Pipe(sim, 0.001, _Recorder(sim, log))
    for i in range(10):
        pipe.receive(Packet.data(FLOW, seq=i, sent_at=0.0))
    sim.run()
    assert [entry[2] for entry in log] == list(range(10))
    assert sim.batched_deliveries == 0


def test_unbounded_batch_drains_same_instant_prefix_in_one_call():
    """A same-instant burst behind a constant-delay pipe arrives as one
    batched drain under the unbounded engine."""
    sim = Simulator()
    batches: list[list[int]] = []

    class BatchRecorder:
        def receive(self, packet: Packet) -> None:
            batches.append([packet.seq])

        def receive_batch(self, packets: list[Packet]) -> None:
            batches.append([p.seq for p in packets])

    pipe = Pipe(sim, 0.001, BatchRecorder())
    for i in range(10):
        pipe.receive(Packet.data(FLOW, seq=i, sent_at=0.0))
    sim.run()
    assert batches == [list(range(10))]


class TestDataPool:
    """DATA-packet free list: recycling and reissue invariants."""

    def setup_method(self) -> None:
        Packet._data_pool.clear()

    def teardown_method(self) -> None:
        Packet._data_pool.clear()

    def test_recycle_data_pools_only_data_and_latches(self):
        data = Packet.data(FLOW, seq=1, sent_at=0.5)
        ack = Packet.ack(FLOW, 2, 0.6, echo_ts=0.5, echo_retransmit=False)
        Packet.recycle_data([data, ack, data])
        assert Packet._data_pool == [data]
        assert data._in_pool and not ack._in_pool

    def test_reissue_reinitializes_data_fields_and_bumps_generation(self):
        data = Packet.data(
            FLOW, seq=7, sent_at=0.5, retransmit=True, ecn_capable=True
        )
        data.ce = True  # mid-flight AQM mark must not survive reissue
        old_uid, old_gen = data.uid, data.generation
        Packet.recycle_data([data])
        fresh = Packet.data(FlowId(1, 2), seq=9, sent_at=1.25)
        assert fresh is data
        assert fresh.generation == old_gen + 1
        assert fresh.uid != old_uid
        assert (fresh.flow, fresh.seq, fresh.sent_at) == (FlowId(1, 2), 9, 1.25)
        assert not (fresh.retransmit or fresh.ecn_capable or fresh.ce)
        assert not fresh._in_pool

    def test_pool_is_bounded(self):
        packets = [
            Packet.data(FLOW, seq=i, sent_at=0.0)
            for i in range(Packet._DATA_POOL_MAX + 10)
        ]
        Packet.recycle_data(packets)
        assert len(Packet._data_pool) == Packet._DATA_POOL_MAX
