"""Property tests: the phantom service disciplines agree.

``fluid`` (virtual-time engine) is checked tightly against ``fluid-ref``
(the reference piecewise loop): same drop decisions, same drained bytes,
same magic reclamation — they compute the same GPS process, differing
only in float rounding.  ``quantum`` is checked loosely: it serves in
MSS-sized phantom packets, so its drain trails the fluid one by up to a
few quanta at any instant.

A separate test pins that the *modeled* cost accounting (Op counts and
``drain_recomputes``) is identical across fluid and fluid-ref — the cost
model charges the paper's per-packet operations, not the Python work the
optimized engine skips.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.classify.classifier import SlotClassifier
from repro.core.phantom import PhantomQueueSet
from repro.core.pqp import PQP
from repro.net.packet import FlowId, Packet
from repro.net.sink import NullSink
from repro.policy.tree import Policy
from repro.sim.simulator import Simulator
from repro.units import MSS

#: The policy shapes the paper's scenarios exercise (flat fair, weighted,
#: strict priority, two-level hierarchy).
POLICIES = [
    Policy.fair(1),
    Policy.fair(3),
    Policy.weighted([1.0, 2.0, 4.0]),
    Policy.prioritized([0, 1, 0]),
    Policy.nested([[1.0, 1.0], [2.0, 1.0]], group_weights=[2.0, 1.0]),
]

# op kinds: 0 = try_enqueue, 1 = fill_with_magic, 2 = reclaim_magic
_OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),       # kind
        st.integers(min_value=0, max_value=9),       # queue (mod n)
        st.floats(min_value=1.0, max_value=6000.0),  # size
        st.floats(min_value=0.0, max_value=0.4),     # dt before op
    ),
    min_size=1,
    max_size=60,
)


def _replay(policy, ops, service, *, rate=4000.0, cap=15_000.0):
    """Run one op sequence; return (decision trace, final observables)."""
    n = policy.num_queues
    q = PhantomQueueSet(policy, rate, [cap] * n, service=service)
    now = 0.0
    decisions = []
    for kind, queue, size, dt in ops:
        queue %= n
        now += dt
        q.advance(now)
        if kind == 0:
            decisions.append(("enq", queue, q.try_enqueue(queue, size)))
        elif kind == 1:
            decisions.append(("fill", queue, q.fill_with_magic(queue)))
        else:
            decisions.append(("reclaim", queue, q.reclaim_magic(queue)))
    q.advance(now + 0.1)
    lengths = [q.length(i) for i in range(n)]
    magic = [q.magic_bytes(i) for i in range(n)]
    return decisions, (q.drained_bytes, q.total_length(), lengths, magic)


class TestFluidMatchesReference:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: repr(p)[:40])
    @settings(deadline=None, max_examples=30)
    @given(ops=_OPS)
    def test_decisions_and_bytes_agree(self, policy, ops):
        fast_dec, fast_obs = _replay(policy, ops, "fluid")
        ref_dec, ref_obs = _replay(policy, ops, "fluid-ref")
        # Drop decisions and reclaim/fill byte values, op by op.
        assert len(fast_dec) == len(ref_dec)
        for (fk, fq, fv), (rk, rq, rv) in zip(fast_dec, ref_dec):
            assert (fk, fq) == (rk, rq)
            if fk == "enq":
                assert fv == rv  # same accept/drop verdict
            else:
                assert fv == pytest.approx(rv, rel=1e-9, abs=1e-6)
        f_drained, f_total, f_lengths, f_magic = fast_obs
        r_drained, r_total, r_lengths, r_magic = ref_obs
        assert f_drained == pytest.approx(r_drained, rel=1e-9, abs=1e-6)
        assert f_total == pytest.approx(r_total, rel=1e-9, abs=1e-6)
        for fl, rl in zip(f_lengths, r_lengths):
            assert fl == pytest.approx(rl, rel=1e-9, abs=1e-6)
        for fm, rm in zip(f_magic, r_magic):
            assert fm == pytest.approx(rm, rel=1e-9, abs=1e-6)


class TestQuantumApproximatesFluid:
    @pytest.mark.parametrize(
        "policy", [Policy.fair(3), Policy.weighted([1.0, 2.0, 4.0])],
        ids=["fair3", "weighted"],
    )
    @settings(deadline=None, max_examples=25)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),       # queue
                st.floats(min_value=500.0, max_value=6000.0),
                st.floats(min_value=0.0, max_value=0.3),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_drained_bytes_within_quanta(self, policy, ops):
        # Enqueue-only workload, capacities large enough that neither
        # discipline drops: the batched-DRR drain must track the fluid
        # one to within a few MSS quanta of in-flight service.
        n = policy.num_queues
        runs = {}
        for service in ("fluid", "quantum"):
            q = PhantomQueueSet(policy, 4000.0, [1e9] * n, service=service)
            now = 0.0
            for queue, size, dt in ops:
                now += dt
                q.advance(now)
                assert q.try_enqueue(queue % n, size)
            q.advance(now + 0.05)
            runs[service] = (q.drained_bytes, q.total_length())
        slack = (n + 2) * MSS + 1e-3
        assert runs["fluid"][0] == pytest.approx(
            runs["quantum"][0], abs=slack
        )
        assert runs["fluid"][1] == pytest.approx(
            runs["quantum"][1], abs=slack
        )


def _drive_pqp(service):
    """A deterministic arrival pattern with drops, idle gaps and bursts."""
    sim = Simulator()
    pqp = PQP(
        sim,
        rate=15_000.0,
        policy=Policy.weighted([1.0, 2.0]),
        classifier=SlotClassifier(2),
        queue_bytes=6_000.0,
        service=service,
    )
    pqp.connect(NullSink())
    seq = [0]

    def burst(slot, count):
        def fire():
            for _ in range(count):
                pqp.receive(
                    Packet.data(FlowId(0, slot), seq[0], sim.now, size=1500)
                )
                seq[0] += 1
        return fire

    # Bursts that overflow queue 0, interleaved arrivals, then a long idle
    # gap followed by more traffic (exercises the idle fast path).
    for t, slot, count in [
        (0.0, 0, 6), (0.1, 1, 3), (0.25, 0, 2), (0.3, 1, 5),
        (2.0, 0, 4), (2.05, 1, 1), (2.5, 0, 1),
    ]:
        sim.schedule(t, burst(slot, count))
    sim.run()
    return pqp


class TestCostModelPinned:
    def test_op_counts_identical_across_fluid_engines(self):
        # The optimization must not move the modeled cost: identical
        # packets -> identical Op counts and drain_recomputes, whether
        # the drain is the O(N) reference loop or the virtual-time engine.
        fast = _drive_pqp("fluid")
        ref = _drive_pqp("fluid-ref")
        assert fast.cost.snapshot() == ref.cost.snapshot()
        assert fast.queues.drain_recomputes == ref.queues.drain_recomputes
        assert fast.stats.forwarded_packets == ref.stats.forwarded_packets
        assert fast.stats.dropped_packets == ref.stats.dropped_packets

    @pytest.mark.parametrize("service", PhantomQueueSet.SERVICES)
    def test_idle_advance_charges_nothing(self, service):
        q = PhantomQueueSet(
            Policy.fair(2), 1000.0, [10_000.0] * 2, service=service
        )
        q.advance(100.0)
        assert q.drain_recomputes == 0

    def test_full_aggregate_simulation_byte_identical(self):
        # Acceptance pin: figure experiments produce byte-identical
        # outcomes under fluid and fluid-ref for these configurations.
        # Shares come from the same memoized Policy vectors and drop
        # decisions compare against capacities with epsilon slack, so
        # the engines' last-ulp drain differences never flip a decision
        # and whole-simulation trajectories coincide exactly.
        import dataclasses

        from repro.runner import AggregateConfig, simulate_aggregate
        from repro.units import mbps, ms
        from repro.workload.spec import FlowSpec

        def key(o):
            return (
                o.drop_rate, o.cycles_per_packet, o.arrived_packets,
                tuple(o.aggregate_series.times),
                tuple(o.aggregate_series.values),
                tuple(
                    (s, tuple(ts.times), tuple(ts.values))
                    for s, ts in sorted(o.slot_series.items())
                ),
                o.flow_records,
            )

        for scheme in ("pqp", "bcpqp"):
            config = AggregateConfig(
                scheme=scheme,
                specs=(
                    FlowSpec(slot=0, cc="reno", rtt=ms(20)),
                    FlowSpec(slot=1, cc="cubic", rtt=ms(30)),
                ),
                rate=mbps(5), max_rtt=ms(30),
                horizon=2.0, warmup=0.5, seed=3,
            )
            ref = dataclasses.replace(config, phantom_service="fluid-ref")
            assert key(simulate_aggregate(config)) == key(
                simulate_aggregate(ref)
            ), f"{scheme}: fluid and fluid-ref outcomes diverged"

    def test_recompute_counts_match_reference_piecewise(self):
        # Three queues emptying at different instants: the virtual-time
        # engine must report the same piece count the reference loop
        # recomputes (k interior boundaries -> k+1 pieces).
        counts = {}
        for service in ("fluid", "fluid-ref"):
            q = PhantomQueueSet(
                Policy.fair(3), 3000.0, [1e6] * 3, service=service
            )
            q.try_enqueue(0, 500.0)
            q.try_enqueue(1, 1500.0)
            q.try_enqueue(2, 6000.0)
            q.advance(5.0)
            counts[service] = q.drain_recomputes
        assert counts["fluid"] == counts["fluid-ref"]
