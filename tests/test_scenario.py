"""Integration tests: full scenarios through the wiring harness."""

import random

import pytest

from repro import (
    AggregateScenario,
    BottleneckSpec,
    FlowSpec,
    OnOffSpec,
    Simulator,
    make_limiter,
)
from repro.metrics import (
    aggregate_throughput_series,
    jain_index,
    per_slot_throughput_series,
)
from repro.units import mbps, ms


def run_scenario(scheme, specs, *, rate=mbps(10), max_rtt=ms(50),
                 horizon=10.0, bottleneck=None, seed=1, **limiter_kwargs):
    sim = Simulator()
    limiter = make_limiter(sim, scheme, rate=rate,
                           num_queues=max(s.slot for s in specs) + 1,
                           max_rtt=max_rtt, **limiter_kwargs)
    scenario = AggregateScenario(
        sim, limiter=limiter, specs=specs, rng=random.Random(seed),
        horizon=horizon, bottleneck=bottleneck)
    scenario.run()
    return scenario, limiter


class TestSingleFlow:
    @pytest.mark.parametrize("cc", ["reno", "cubic", "bbr", "vegas"])
    def test_backlogged_flow_achieves_rate_through_bcpqp(self, cc):
        specs = [FlowSpec(slot=0, cc=cc, rtt=ms(30))]
        sc, limiter = run_scenario("bcpqp", specs, horizon=15.0)
        agg = aggregate_throughput_series(
            sc.trace.records, window=0.25, start=5.0, end=15.0)
        assert agg.mean() == pytest.approx(mbps(10), rel=0.15)

    def test_finite_flow_completes_and_is_recorded(self):
        specs = [FlowSpec(slot=0, cc="reno", rtt=ms(20), packets=200)]
        sc, _ = run_scenario("shaper", specs, horizon=20.0)
        records = sc.flow_records
        assert len(records) == 1
        assert records[0].packets == 200
        assert 0 < records[0].duration < 20.0

    def test_app_limited_flow_unaffected(self):
        """A flow sending below the enforced rate sees no drops (§3.5
        footnote: app-limited senders are not affected by policing)."""
        specs = [FlowSpec(slot=0, cc="reno", rtt=ms(20), packets=50,
                          on_off=OnOffSpec(burst_packets_mean=20,
                                           off_time_mean=1.0))]
        sc, limiter = run_scenario("bcpqp", specs, rate=mbps(50),
                                   horizon=10.0)
        assert limiter.stats.drop_rate < 0.02


class TestMultiFlowFairness:
    def test_bcpqp_matches_shaper_fairness(self):
        specs = [FlowSpec(slot=i, cc=cc, rtt=ms(10 + 10 * i))
                 for i, cc in enumerate(["reno", "cubic", "bbr", "vegas"])]
        results = {}
        for scheme in ("shaper", "bcpqp", "policer"):
            sc, _ = run_scenario(scheme, specs, horizon=15.0, seed=2)
            slots = per_slot_throughput_series(
                sc.trace.records, window=0.25, start=5.0, end=15.0)
            results[scheme] = jain_index([s.mean() for s in slots.values()])
        assert results["bcpqp"] > 0.9
        assert results["bcpqp"] > results["policer"]
        assert abs(results["bcpqp"] - results["shaper"]) < 0.1

    def test_weighted_sharing_with_bcpqp(self):
        weights = [1.0, 3.0]
        specs = [FlowSpec(slot=i, cc="cubic", rtt=ms(20), weight=w)
                 for i, w in enumerate(weights)]
        sc, _ = run_scenario("bcpqp", specs, weights=weights, horizon=15.0)
        slots = per_slot_throughput_series(
            sc.trace.records, window=0.25, start=5.0, end=15.0)
        ratio = slots[1].mean() / slots[0].mean()
        assert ratio == pytest.approx(3.0, rel=0.25)

    def test_prioritization_with_bcpqp(self):
        from repro.policy.tree import Policy
        specs = [FlowSpec(slot=0, cc="cubic", rtt=ms(20)),
                 FlowSpec(slot=1, cc="cubic", rtt=ms(20))]
        sc, _ = run_scenario("bcpqp", specs, horizon=15.0,
                             policy=Policy.prioritized([0, 1]))
        slots = per_slot_throughput_series(
            sc.trace.records, window=0.25, start=5.0, end=15.0)
        # High-priority flow takes (nearly) everything; the low-priority
        # flow may be starved out of the measurement window entirely.
        low = slots[1].mean() if 1 in slots else 0.0
        assert slots[0].mean() > 8 * max(low, slots[0].mean() / 20)


class TestOnOffFlows:
    def test_on_off_slot_relaunches(self):
        specs = [FlowSpec(slot=0, cc="reno", rtt=ms(10),
                          on_off=OnOffSpec(burst_packets_mean=30,
                                           off_time_mean=0.2))]
        sc, _ = run_scenario("bcpqp", specs, horizon=10.0)
        assert len(sc.flow_records) >= 3
        incarnations = {r.incarnation for r in sc.flow_records}
        assert len(incarnations) == len(sc.flow_records)

    def test_flow_records_have_consistent_times(self):
        specs = [FlowSpec(slot=0, cc="cubic", rtt=ms(10),
                          on_off=OnOffSpec(burst_packets_mean=20,
                                           off_time_mean=0.1))]
        sc, _ = run_scenario("shaper", specs, horizon=8.0)
        for r in sc.flow_records:
            assert r.end > r.start >= 0.0


class TestSecondaryBottleneck:
    def test_bottleneck_limits_delivery(self):
        specs = [FlowSpec(slot=0, cc="cubic", rtt=ms(20))]
        sc, _ = run_scenario(
            "pqp", specs, rate=mbps(10), horizon=10.0,
            bottleneck=BottleneckSpec(rate=mbps(5), buffer_bytes=30 * 1500))
        agg = aggregate_throughput_series(
            sc.trace.records, window=0.25, start=3.0, end=10.0)
        assert agg.max() <= mbps(5) * 1.05

    def test_bottleneck_drops_accounted(self):
        specs = [FlowSpec(slot=0, cc="cubic", rtt=ms(20))]
        sc, _ = run_scenario(
            "pqp", specs, rate=mbps(10), horizon=10.0,
            bottleneck=BottleneckSpec(rate=mbps(5), buffer_bytes=10 * 1500))
        assert sc.bottleneck is not None
        assert sc.bottleneck.dropped_packets > 0


class TestScenarioValidation:
    def test_duplicate_slots_rejected(self):
        sim = Simulator()
        limiter = make_limiter(sim, "policer", rate=mbps(1), num_queues=1,
                               max_rtt=ms(50))
        with pytest.raises(ValueError):
            AggregateScenario(sim, limiter=limiter,
                              specs=[FlowSpec(slot=0), FlowSpec(slot=0)],
                              rng=random.Random(1))

    def test_empty_specs_rejected(self):
        sim = Simulator()
        limiter = make_limiter(sim, "policer", rate=mbps(1), num_queues=1,
                               max_rtt=ms(50))
        with pytest.raises(ValueError):
            AggregateScenario(sim, limiter=limiter, specs=[],
                              rng=random.Random(1))

    def test_same_seed_is_deterministic(self):
        specs = [FlowSpec(slot=0, cc="reno", rtt=ms(10),
                          on_off=OnOffSpec(burst_packets_mean=30,
                                           off_time_mean=0.2))]
        a, _ = run_scenario("bcpqp", specs, horizon=5.0, seed=3)
        b, _ = run_scenario("bcpqp", specs, horizon=5.0, seed=3)
        assert [r.packets for r in a.flow_records] == \
            [r.packets for r in b.flow_records]
        assert len(a.trace.records) == len(b.trace.records)
