"""Unit tests for the congestion-control algorithms (no network)."""

import pytest

from repro.cc.base import AckSample, make_cc
from repro.cc.bbr import Bbr
from repro.cc.cubic import Cubic
from repro.cc.filters import WindowedMax, WindowedMin
from repro.cc.reno import NewReno
from repro.cc.vegas import Vegas


def ack(newly=1, rtt=0.1, rate=None, inflight=10.0, now=0.0):
    return AckSample(newly_acked=newly, rtt=rtt, delivery_rate=rate,
                     inflight=inflight, now=now)


class TestRegistry:
    def test_known_names(self):
        assert isinstance(make_cc("reno"), NewReno)
        assert isinstance(make_cc("newreno"), NewReno)
        assert isinstance(make_cc("cubic"), Cubic)
        assert isinstance(make_cc("BBR"), Bbr)
        assert isinstance(make_cc("vegas"), Vegas)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_cc("quic-magic")


class TestNewReno:
    def test_slow_start_doubles_per_rtt(self):
        cc = NewReno(initial_cwnd=10)
        for _ in range(10):
            cc.on_ack(ack())
        assert cc.cwnd == pytest.approx(20.0)

    def test_congestion_avoidance_one_per_rtt(self):
        cc = NewReno(initial_cwnd=10)
        cc.ssthresh = 10  # force CA
        for _ in range(10):  # one cwnd's worth of acks
            cc.on_ack(ack())
        assert cc.cwnd == pytest.approx(11.0, rel=0.02)

    def test_loss_event_halves(self):
        cc = NewReno(initial_cwnd=20)
        cc.ssthresh = 20
        cc.on_loss_event(0.0, inflight=20)
        assert cc.cwnd == pytest.approx(10.0)
        assert cc.ssthresh == pytest.approx(10.0)

    def test_timeout_uses_flight_size(self):
        cc = NewReno(initial_cwnd=4)
        cc.on_timeout(0.0, flight=40)
        assert cc.cwnd == 1.0
        assert cc.ssthresh == pytest.approx(20.0)

    def test_cwnd_floor(self):
        cc = NewReno(initial_cwnd=2)
        cc.ssthresh = 2
        for _ in range(5):
            cc.on_loss_event(0.0, inflight=2)
        assert cc.cwnd >= cc.MIN_CWND

    def test_slow_start_exit_caps_at_ssthresh(self):
        cc = NewReno(initial_cwnd=9)
        cc.ssthresh = 10
        cc.on_ack(ack(newly=5))
        assert cc.cwnd >= 10.0
        assert cc.cwnd < 12.0


class TestCubic:
    def test_grows_toward_target_after_loss(self):
        cc = Cubic(initial_cwnd=100)
        cc.ssthresh = 100
        cc.on_loss_event(0.0, inflight=100)
        assert cc.cwnd == pytest.approx(70.0)
        w_after_loss = cc.cwnd
        # Window regrows with time, approaching the old W_max.
        t = 0.0
        for _ in range(3000):
            t += 0.01
            cc.on_ack(ack(now=t))
        assert cc.cwnd > w_after_loss
        assert cc.cwnd >= 95.0

    def test_growth_is_time_based_not_ack_based(self):
        """Same elapsed time, different ack counts => similar window."""
        def run(acks_per_rtt):
            cc = Cubic(initial_cwnd=50)
            cc.ssthresh = 50
            cc.on_loss_event(0.0, inflight=50)
            t = 0.0
            for _ in range(int(30 * acks_per_rtt)):
                t += 0.1 / acks_per_rtt
                cc.on_ack(ack(newly=1, now=t))
            return cc.cwnd
        # Denser acks shouldn't wildly change the trajectory endpoint.
        assert run(50) == pytest.approx(run(100), rel=0.15)

    def test_timeout_resets_epoch(self):
        cc = Cubic(initial_cwnd=50)
        cc.on_timeout(1.0, flight=50)
        assert cc.cwnd == 1.0
        assert cc.ssthresh == pytest.approx(35.0)


class TestVegas:
    def test_increases_when_no_queueing(self):
        cc = Vegas(initial_cwnd=10)
        cc.ssthresh = 10  # skip slow start
        for _ in range(50):
            cc.on_ack(ack(rtt=0.1))  # rtt == base rtt: no queueing signal
        assert cc.cwnd > 10

    def test_backs_off_when_queue_builds(self):
        cc = Vegas(initial_cwnd=20)
        cc.ssthresh = 20
        cc.on_ack(ack(rtt=0.1))  # establish base RTT
        for _ in range(100):
            cc.on_ack(ack(rtt=0.2))  # heavy queueing: diff >> beta
        assert cc.cwnd < 20

    def test_holds_inside_band(self):
        cc = Vegas(initial_cwnd=10)
        cc.ssthresh = 10
        cc.on_ack(ack(rtt=0.1))
        # diff = cwnd*(rtt-base)/rtt = 10*0.04/0.14 ~= 2.9, inside [2, 4].
        for _ in range(60):
            cc.on_ack(ack(rtt=0.14))
        assert cc.cwnd == pytest.approx(10.0, abs=2.0)

    def test_loss_halves(self):
        cc = Vegas(initial_cwnd=16)
        cc.ssthresh = 16
        cc.on_loss_event(0.0, inflight=16)
        assert cc.cwnd == pytest.approx(8.0)


class TestBbr:
    def feed(self, cc, *, bw, rtt, n=60, start=0.0, inflight=None):
        t = start
        for _ in range(n):
            t += rtt
            cc.on_ack(ack(rtt=rtt, rate=bw, now=t,
                          inflight=inflight if inflight is not None else bw * rtt))
        return t

    def test_estimates_bandwidth(self):
        cc = Bbr()
        self.feed(cc, bw=1000.0, rtt=0.05)
        assert cc.btl_bw() == pytest.approx(1000.0)
        assert cc.rtprop() == pytest.approx(0.05)

    def test_leaves_startup_when_bw_plateaus(self):
        cc = Bbr()
        self.feed(cc, bw=1000.0, rtt=0.05)
        assert cc._state in ("drain", "probe_bw")

    def test_cwnd_tracks_bdp(self):
        cc = Bbr()
        t = self.feed(cc, bw=1000.0, rtt=0.05)
        self.feed(cc, bw=1000.0, rtt=0.05, start=t, n=20)
        # cwnd ~= cwnd_gain * bw * rtprop = 2 * 50
        assert cc.cwnd == pytest.approx(100.0, rel=0.2)

    def test_pacing_rate_positive_after_estimate(self):
        cc = Bbr()
        self.feed(cc, bw=500.0, rtt=0.02)
        assert cc.pacing_rate(10.0) > 0

    def test_ignores_loss_events(self):
        cc = Bbr()
        self.feed(cc, bw=1000.0, rtt=0.05)
        before = cc.btl_bw()
        cc.on_loss_event(10.0, inflight=50)
        assert cc.btl_bw() == before

    def test_no_model_grows_like_slow_start(self):
        cc = Bbr(initial_cwnd=10)
        cc.on_ack(ack(newly=5, rtt=None, rate=None, now=0.1))
        assert cc.cwnd == pytest.approx(15.0)


class TestWindowedFilters:
    def test_max_tracks_maximum(self):
        f = WindowedMax(1.0)
        f.update(0.0, 5.0)
        f.update(0.5, 3.0)
        assert f.get() == 5.0

    def test_max_expires(self):
        f = WindowedMax(1.0)
        f.update(0.0, 5.0)
        f.update(1.5, 3.0)
        assert f.get(now=1.5) == 3.0

    def test_min_tracks_minimum(self):
        f = WindowedMin(10.0)
        f.update(0.0, 0.05)
        f.update(1.0, 0.08)
        assert f.get() == 0.05

    def test_age(self):
        f = WindowedMin(10.0)
        f.update(2.0, 1.0)
        assert f.age(5.0) == pytest.approx(3.0)

    def test_empty(self):
        f = WindowedMax(1.0)
        assert f.get() is None
        assert f.age(0.0) is None

    def test_reset(self):
        f = WindowedMax(1.0)
        f.update(0.0, 1.0)
        f.reset()
        assert f.get() is None

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedMax(0)
