"""End-to-end test: several subscribers through one middlebox.

Mirrors the deployment §6.1 describes — one rate-enforcer machine hosting
an independent limiter per traffic aggregate — and checks that aggregates
are isolated: each gets its own plan rate regardless of the others.
"""

import pytest

from repro import Middlebox, Simulator, make_limiter
from repro.cc.endpoint import FlowDemux
from repro.metrics import aggregate_throughput_series
from repro.net.packet import FlowId
from repro.net.trace import Trace
from repro.units import mbps, ms
from repro.wiring import wire_flow

PLANS = {0: mbps(5), 1: mbps(15)}


def build_and_run(horizon=12.0):
    sim = Simulator()
    box = Middlebox(sim)
    demux = FlowDemux()
    traces = {}
    for agg, rate in PLANS.items():
        limiter = make_limiter(sim, "bcpqp", rate=rate, num_queues=2,
                               max_rtt=ms(50), name=f"bcpqp-{agg}")
        trace = Trace(sim, demux, data_only=True, name=f"rx-{agg}")
        limiter.connect(trace)
        box.add_aggregate(agg, limiter)
        traces[agg] = trace
    # Two backlogged flows per subscriber, all entering via the middlebox.
    for agg in PLANS:
        for slot, cc in enumerate(("cubic", "reno")):
            wire_flow(sim, FlowId(agg, slot, 0), cc=cc, rtt=ms(20),
                      ingress=box, demux=demux, packets=None, start=0.0)
    sim.run(until=horizon)
    return sim, box, traces, horizon


class TestMiddleboxEndToEnd:
    def test_each_aggregate_gets_its_plan(self):
        _sim, _box, traces, horizon = build_and_run()
        for agg, rate in PLANS.items():
            series = aggregate_throughput_series(
                traces[agg].records, window=0.25, start=4.0, end=horizon)
            assert series.mean() == pytest.approx(rate, rel=0.1), agg

    def test_aggregates_are_isolated(self):
        """The small plan's flows never appear in the big plan's trace."""
        _sim, _box, traces, _horizon = build_and_run(horizon=6.0)
        for agg, trace in traces.items():
            assert {r.flow.aggregate for r in trace.records} == {agg}

    def test_no_unmatched_traffic(self):
        _sim, box, _traces, _horizon = build_and_run(horizon=4.0)
        assert box.unmatched_packets == 0

    def test_total_cycles_accumulate(self):
        _sim, box, _traces, _horizon = build_and_run(horizon=4.0)
        assert box.total_cycles() > 0
