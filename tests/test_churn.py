"""Live policy churn: atomic apply_update, epoch-seam migration, plans.

The module-level properties pin the transactional contract the tentpole
rests on:

* an empty :class:`ChurnPlan` is *byte-identical* to a churn-free run
  for all five schemes (the plan constructs no driver and schedules
  nothing);
* no-op updates are idempotent — applying the accepted all-``None``
  update any number of times mid-run leaves the simulation bit-identical;
* reject-then-retry equals retry alone — a rejected update mutates
  nothing, so a run that suffers a typed rejection mid-stream matches
  the run that never saw the invalid update;
* byte conservation holds across every epoch seam (the invariant
  checker runs in fail-fast mode under drawn churn plans: phantom
  ledgers, occupancy clamps, window migration, stale-memo checks);
* :meth:`Policy.invalidate` bumps the tree version baked into the share
  memo keys, so a stale active-set mask can never survive a tree edit.
"""

from __future__ import annotations

import dataclasses
import pickle
from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.churn import (
    ChurnAction,
    ChurnPlan,
    PolicyUpdate,
    UpdateRejected,
    draw_plan,
)
from repro.net.packet import FlowId, Packet
from repro.net.sink import NullSink
from repro.policy.tree import ClassNode, Leaf, Policy
from repro.runner.aggregate import AggregateConfig, simulate_aggregate
from repro.schemes import make_limiter
from repro.sim.simulator import Simulator
from repro.units import mbps, ms
from repro.validate.fuzz import FuzzCase, generate_case
from repro.workload.spec import FlowSpec

pytestmark = pytest.mark.churn

#: The five principal schemes the churn contract covers.
SCHEMES = ("shaper", "policer", "fairpolicer", "pqp", "bcpqp")


def _config(scheme: str, churn: ChurnPlan | None = None) -> AggregateConfig:
    return AggregateConfig(
        scheme=scheme,
        specs=(
            FlowSpec(slot=0, cc="reno", rtt=0.02),
            FlowSpec(slot=1, cc="cubic", rtt=0.05),
        ),
        rate=mbps(4.0),
        max_rtt=ms(100),
        horizon=1.5,
        warmup=0.5,
        seed=3,
        churn=churn,
    )


def _strip_counts(outcome):
    """The outcome minus the driver bookkeeping counters.

    A plan of pure no-ops (or rejected actions) must leave the
    *simulation* bit-identical; the applied/rejected tallies themselves
    legitimately differ — that is what they count.
    """
    return dataclasses.replace(outcome, updates_applied=0, updates_rejected=0)


# ---------------------------------------------------------------------------
# Empty plans and no-ops are free
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheme", SCHEMES)
def test_empty_plan_is_byte_identical(scheme):
    clean = simulate_aggregate(_config(scheme, churn=None))
    empty = simulate_aggregate(_config(scheme, churn=ChurnPlan()))
    assert pickle.dumps(clean) == pickle.dumps(empty)


@settings(max_examples=6)
@given(
    scheme=st.sampled_from(SCHEMES),
    times=st.lists(
        st.floats(min_value=0.1, max_value=1.4), min_size=1, max_size=3
    ),
)
def test_noop_updates_are_idempotent(scheme, times):
    """Applying the accepted all-``None`` update at arbitrary instants —
    once or many times — leaves the run bit-identical."""
    clean = simulate_aggregate(_config(scheme, churn=None))
    plan = ChurnPlan(actions=tuple(ChurnAction(t) for t in times))
    churned = simulate_aggregate(_config(scheme, churn=plan))
    assert churned.updates_applied == len(times)
    assert churned.updates_rejected == 0
    assert pickle.dumps(_strip_counts(churned)) == pickle.dumps(
        _strip_counts(clean)
    )


# ---------------------------------------------------------------------------
# Atomic commit-or-typed-reject
# ---------------------------------------------------------------------------


@settings(max_examples=6)
@given(
    scheme=st.sampled_from(SCHEMES),
    bad_time=st.floats(min_value=0.1, max_value=1.3),
)
def test_reject_then_retry_is_bit_identical(scheme, bad_time):
    """A rejected update mutates nothing: interleaving an invalid action
    (non-positive capacity — invalid for every scheme) into a valid plan
    yields the exact run of the valid plan alone."""
    good = ChurnAction(1.4, rate=mbps(3.0))
    valid = ChurnPlan(actions=(good,))
    poisoned = ChurnPlan(
        actions=(ChurnAction(bad_time, capacity_scale=-1.0), good)
    )
    baseline = simulate_aggregate(_config(scheme, churn=valid))
    retried = simulate_aggregate(_config(scheme, churn=poisoned))
    assert retried.updates_rejected == baseline.updates_rejected + 1
    assert pickle.dumps(_strip_counts(retried)) == pickle.dumps(
        _strip_counts(baseline)
    )


def _loaded_limiter(scheme="bcpqp"):
    sim = Simulator()
    limiter = make_limiter(sim, scheme, rate=mbps(10), num_queues=2,
                           max_rtt=ms(50))
    limiter.connect(NullSink())
    flows = [FlowId(0, i) for i in range(2)]
    for i in range(400):
        sim._now = i * 1e-4
        limiter.receive(Packet.data(flows[i % 2], i, sim.now))
    return sim, limiter


def test_rejected_update_leaves_state_untouched():
    _sim, limiter = _loaded_limiter()
    queues = limiter.queues
    before = (
        queues.epoch,
        queues.evicted_bytes,
        [queues.peek_length(q) for q in range(queues.num_queues)],
        queues.policy.version,
        queues.rate,
    )
    with pytest.raises(UpdateRejected, match="update rejected"):
        limiter.apply_update(PolicyUpdate(capacities=-1.0))
    after = (
        queues.epoch,
        queues.evicted_bytes,
        [queues.peek_length(q) for q in range(queues.num_queues)],
        queues.policy.version,
        queues.rate,
    )
    assert before == after


def test_queue_count_change_requires_capacities():
    _sim, limiter = _loaded_limiter()
    with pytest.raises(UpdateRejected, match="capacities"):
        limiter.apply_update(PolicyUpdate(weights=(1.0, 1.0, 1.0)))


def test_policer_rejects_weights_with_typed_error():
    _sim, limiter = _loaded_limiter("policer")
    with pytest.raises(UpdateRejected) as excinfo:
        limiter.apply_update(PolicyUpdate(weights=(1.0, 2.0)))
    assert excinfo.value.limiter == limiter.name
    assert "update rejected" in str(excinfo.value)


def test_shrink_evicts_and_bumps_epoch():
    _sim, limiter = _loaded_limiter()
    queues = limiter.queues
    occupied = sum(queues.peek_length(q) for q in range(queues.num_queues))
    assert occupied > 0
    epoch = queues.epoch
    tiny = 10.0
    limiter.apply_update(PolicyUpdate(capacities=tiny))
    assert queues.epoch == epoch + 1
    assert queues.evicted_bytes > 0
    for q in range(queues.num_queues):
        assert queues.peek_length(q) <= tiny + 1e-9


# ---------------------------------------------------------------------------
# Conservation across the epoch seam (invariant checker, fail-fast)
# ---------------------------------------------------------------------------


@settings(max_examples=8)
@given(
    scheme=st.sampled_from(("pqp", "bcpqp")),
    seed=st.integers(min_value=0, max_value=10_000),
    actions=st.integers(min_value=1, max_value=4),
)
def test_conservation_across_seams(scheme, seed, actions):
    """Drawn churn plans under the fail-fast invariant checker: every
    epoch seam re-verifies the byte ledger (in - reclaims - drained -
    evicted = total), occupancy clamps, window migration and memo-cache
    freshness.  Any violation raises inside the run."""
    plan = draw_plan(
        Random(seed),
        num_queues=2,
        rate=mbps(4.0),
        horizon=1.5,
        actions=actions,
    )
    config = dataclasses.replace(_config(scheme, churn=plan), validate=True)
    outcome = simulate_aggregate(config)
    assert outcome.updates_applied + outcome.updates_rejected == actions


# ---------------------------------------------------------------------------
# Policy.invalidate: stale masks cannot survive a tree edit
# ---------------------------------------------------------------------------


def test_invalidate_busts_share_memo():
    policy = Policy.weighted([1.0, 3.0])
    assert policy.fluid_rates([True, True], 100.0) == [25.0, 75.0]
    version = policy.version

    policy.invalidate(Policy.weighted([3.0, 1.0]).root)

    assert policy.version == version + 1
    # The same active-set mask now resolves against the new tree — a
    # stale cached share vector would have returned [25.0, 75.0].
    assert policy.fluid_rates([True, True], 100.0) == [75.0, 25.0]
    assert all(key[0] == policy.version for key in policy._share_cache)
    assert all(key[0] == policy.version for key in policy._flat_cache)


def test_invalidate_rejects_bad_tree_atomically():
    policy = Policy.weighted([1.0, 3.0])
    version = policy.version
    # Leaves must cover 0..N-1 exactly once; a tree skipping queue 1
    # (two leaves for queues 0 and 2) must be rejected atomically.
    bad = ClassNode(children=(Leaf(queue=0), Leaf(queue=2)))
    with pytest.raises(ValueError):
        policy.invalidate(bad)
    assert policy.version == version
    assert policy.fluid_rates([True, True], 100.0) == [25.0, 75.0]


# ---------------------------------------------------------------------------
# Fuzzer integration: corpus body-sharing and JSON round-trip
# ---------------------------------------------------------------------------


def test_churned_case_shares_body_and_roundtrips():
    clean = generate_case(3, 5)
    churned = generate_case(3, 5, churn=True)
    assert churned.churn is not None and churned.churn.enabled
    # Churn draws strictly after every existing field, so the churned
    # corpus shares scenario bodies with the clean corpus.
    assert dataclasses.replace(churned, churn=None) == clean
    assert churned.without_churn() == clean
    assert FuzzCase.from_json(churned.to_json()) == churned
