"""Tests for the scheme factory and its paper-default sizing."""

import pytest

from repro.core.bcpqp import BCPQP
from repro.core.pqp import PQP
from repro.core.sizing import bdp_bucket, reno_min_phantom_buffer
from repro.limiters.fair_policer import FairPolicer
from repro.limiters.shaper import Shaper
from repro.limiters.token_bucket import TokenBucketPolicer
from repro.schemes import SCHEMES, make_limiter
from repro.sim.simulator import Simulator
from repro.units import mbps, ms


def build(scheme, **kwargs):
    sim = Simulator()
    defaults = dict(rate=mbps(10), num_queues=4, max_rtt=ms(50))
    defaults.update(kwargs)
    return make_limiter(sim, scheme, **defaults)


class TestFactory:
    def test_all_schemes_build(self):
        types = {
            "shaper": Shaper,
            "shaper-fifo": Shaper,
            "policer": TokenBucketPolicer,
            "policer+": TokenBucketPolicer,
            "fairpolicer": FairPolicer,
            "pqp": PQP,
            "bcpqp": BCPQP,
        }
        for scheme in SCHEMES:
            limiter = build(scheme)
            assert isinstance(limiter, types[scheme])
            assert limiter.name == scheme

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            build("magic")

    def test_policer_bucket_is_bdp(self):
        p = build("policer")
        assert p.bucket_bytes == pytest.approx(bdp_bucket(mbps(10), ms(50)))

    def test_policer_plus_bucket_larger_than_bdp(self):
        assert build("policer+").bucket_bytes > build("policer").bucket_bytes

    def test_pqp_sized_for_reno(self):
        p = build("pqp")
        assert p.queues.capacity(0) == pytest.approx(
            reno_min_phantom_buffer(mbps(10), ms(50)))

    def test_bcpqp_oversized_with_headroom(self):
        bc = build("bcpqp")
        assert bc.queues.capacity(0) == pytest.approx(
            10 * reno_min_phantom_buffer(mbps(10), ms(50)))
        assert bc.theta_plus == 1.5
        assert bc.theta_minus == 0.5
        assert bc.period == pytest.approx(0.1)

    def test_queue_bytes_override(self):
        p = build("pqp", queue_bytes=12_345.0)
        assert p.queues.capacity(0) == 12_345.0

    def test_weights_build_weighted_policy(self):
        bc = build("bcpqp", weights=[1, 2, 3, 4])
        rates = bc.queues.policy.fluid_rates([True] * 4, 100.0)
        assert rates == pytest.approx([10, 20, 30, 40])

    def test_fifo_shaper_single_queue(self):
        s = build("shaper-fifo")
        assert s.num_queues == 1

    def test_tiny_bdp_gets_floor(self):
        p = build("policer", rate=mbps(0.1), max_rtt=ms(2))
        assert p.bucket_bytes >= 3000

    def test_validation(self):
        with pytest.raises(ValueError):
            build("policer", rate=0)
        with pytest.raises(ValueError):
            build("policer", max_rtt=0)

    def test_phantom_service_selection(self):
        assert build("pqp").queues.service == "fluid"
        assert build("pqp", phantom_service="quantum").queues.service == \
            "quantum"
        assert build("bcpqp", phantom_service="quantum").queues.service == \
            "quantum"

    def test_custom_policy_passthrough(self):
        from repro.policy.tree import Policy
        policy = Policy.prioritized([0, 0, 1, 1])
        bc = build("bcpqp", policy=policy)
        rates = bc.queues.policy.fluid_rates([True] * 4, 100.0)
        assert rates[2] == rates[3] == 0.0

    def test_bcpqp_threshold_passthrough(self):
        bc = build("bcpqp", theta_plus=2.0, theta_minus=0.25, period=0.05)
        assert bc.theta_plus == 2.0
        assert bc.theta_minus == 0.25
        assert bc.period == 0.05
