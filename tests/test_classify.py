"""Tests for flow classifiers."""

import pytest

from repro.classify.classifier import (
    HashClassifier,
    SingleQueueClassifier,
    SlotClassifier,
)
from repro.net.packet import FlowId


class TestSlotClassifier:
    def test_slot_is_queue(self):
        c = SlotClassifier(4)
        assert c.queue_of(FlowId(0, 2)) == 2

    def test_incarnations_keep_queue(self):
        c = SlotClassifier(4)
        assert c.queue_of(FlowId(0, 1, 0)) == c.queue_of(FlowId(0, 1, 7))

    def test_out_of_range_rejected(self):
        c = SlotClassifier(2)
        with pytest.raises(ValueError):
            c.queue_of(FlowId(0, 5))

    def test_needs_positive_queues(self):
        with pytest.raises(ValueError):
            SlotClassifier(0)


class TestHashClassifier:
    def test_stable_across_instances(self):
        a = HashClassifier(8)
        b = HashClassifier(8)
        flow = FlowId(3, 9)
        assert a.queue_of(flow) == b.queue_of(flow)

    def test_salt_changes_mapping(self):
        flows = [FlowId(0, s) for s in range(64)]
        a = HashClassifier(8, salt=0)
        b = HashClassifier(8, salt=1)
        assert any(a.queue_of(f) != b.queue_of(f) for f in flows)

    def test_range(self):
        c = HashClassifier(4)
        for s in range(100):
            assert 0 <= c.queue_of(FlowId(1, s)) < 4

    def test_spreads_flows(self):
        c = HashClassifier(8)
        buckets = {c.queue_of(FlowId(0, s)) for s in range(200)}
        assert len(buckets) == 8


class TestSingleQueueClassifier:
    def test_everything_queue_zero(self):
        c = SingleQueueClassifier()
        assert c.num_queues == 1
        assert c.queue_of(FlowId(9, 9, 9)) == 0
