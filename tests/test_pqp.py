"""Tests for the PQP limiter (phantom-queue policer)."""

import pytest

from repro.classify.classifier import SlotClassifier
from repro.core.pqp import PQP
from repro.net.packet import FlowId, Packet
from repro.net.sink import NullSink
from repro.policy.tree import Policy
from repro.sim.simulator import Simulator


def make(sim, *, rate=15_000.0, n=2, queue_bytes=15_000.0, policy=None):
    pqp = PQP(sim, rate=rate, policy=policy or Policy.fair(n),
              classifier=SlotClassifier(n), queue_bytes=queue_bytes)
    pqp.connect(NullSink())
    return pqp


def pkt(slot, seq=0, size=1500):
    return Packet.data(FlowId(0, slot), seq, 0.0, size=size)


class TestPQP:
    def test_forwards_immediately_when_room(self):
        sim = Simulator()
        sink = NullSink()
        pqp = make(sim)
        pqp.connect(sink)
        pqp.receive(pkt(0))
        assert sink.count == 1  # no buffering, no delay

    def test_drops_when_phantom_queue_full(self):
        sim = Simulator()
        pqp = make(sim, queue_bytes=3000.0)
        for i in range(4):
            pqp.receive(pkt(0, i))
        assert pqp.stats.forwarded_packets == 2
        assert pqp.stats.dropped_packets == 2
        assert pqp.stats.per_queue_drops[0] == 2

    def test_queues_isolated(self):
        sim = Simulator()
        pqp = make(sim, queue_bytes=3000.0)
        for i in range(4):
            pqp.receive(pkt(0, i))
        pqp.receive(pkt(1, 0))
        assert pqp.stats.forwarded_packets == 3  # queue 1 unaffected

    def test_phantom_drain_admits_later_packets(self):
        sim = Simulator()
        pqp = make(sim, rate=1500.0, queue_bytes=1500.0)
        pqp.receive(pkt(0, 0))
        pqp.receive(pkt(0, 1))
        assert pqp.stats.dropped_packets == 1
        sim.schedule(1.0, lambda: pqp.receive(pkt(0, 2)))
        sim.run()
        assert pqp.stats.forwarded_packets == 2

    def test_long_run_rate_enforced(self):
        sim = Simulator()
        rate = 15_000.0
        pqp = make(sim, rate=rate, queue_bytes=30_000.0)

        def arrive(i=[0]):
            pqp.receive(pkt(i[0] % 2, i[0]))
            i[0] += 1
            sim.schedule(0.005, arrive)  # 300 kB/s demand

        sim.schedule(0.0, arrive)
        sim.run(until=20.0)
        # Initial burst fills both queues (2 x 30 kB) then admission = rate.
        expected = rate * 20 + 2 * 30_000.0
        assert pqp.stats.forwarded_bytes == pytest.approx(expected, rel=0.05)

    def test_fair_admission_between_queues(self):
        sim = Simulator()
        rate = 15_000.0
        pqp = make(sim, rate=rate, queue_bytes=15_000.0)
        fwd = {0: 0, 1: 0}

        class _Sink:
            def receive(self, p):
                fwd[p.flow.slot] += 1

        pqp.connect(_Sink())

        def arrive(i=[0]):
            pqp.receive(pkt(0, i[0]))
            pqp.receive(pkt(0, i[0]))  # slot 0 twice as aggressive
            pqp.receive(pkt(1, i[0]))
            i[0] += 1
            sim.schedule(0.01, arrive)

        sim.schedule(0.0, arrive)
        sim.run(until=30.0)
        assert fwd[0] == pytest.approx(fwd[1], rel=0.1)

    def test_per_queue_capacities(self):
        sim = Simulator()
        pqp = PQP(sim, rate=1000.0, policy=Policy.fair(2),
                  classifier=SlotClassifier(2), queue_bytes=[1500.0, 4500.0])
        pqp.connect(NullSink())
        assert pqp.queues.capacity(0) == 1500.0
        assert pqp.queues.capacity(1) == 4500.0

    def test_mismatched_classifier_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PQP(sim, rate=1.0, policy=Policy.fair(2),
                classifier=SlotClassifier(3), queue_bytes=1.0)

    def test_no_packet_memory_cost(self):
        sim = Simulator()
        pqp = make(sim)
        for i in range(10):
            pqp.receive(pkt(0, i))
        snap = pqp.cost.snapshot()
        assert snap["pkt_store"] == 0
        assert snap["pkt_fetch"] == 0
        assert snap["timer"] == 0
