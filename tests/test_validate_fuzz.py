"""Differential-fuzzer smoke tests (marked ``validate``).

A small fixed-seed slice of the fuzz corpus, wired like the scaling
smoke tests: deselected from the default tier-1 run (``-m "not
validate"`` is implied by selecting none), selected in CI with
``-m validate``.  The full acceptance gate is::

    python -m repro.validate --fuzz 200 --seed 1
"""

import pytest

from repro.validate.fuzz import (
    BASELINES,
    FuzzCase,
    fuzz,
    generate_case,
    run_case,
)

pytestmark = pytest.mark.validate

#: Small fixed budget: a few cases through all 9 engine combinations
#: (3 services x 2 phantom schemes + 2 opposite-batch re-runs + 1
#: baseline scheme), plus the sharded-fleet diff tier on cases that
#: draw ``shards > 1``.
SMOKE_CASES = 6
SMOKE_SEED = 1


def _fleet_sims(case: FuzzCase) -> int:
    """Extra simulations the sharded-fleet diff tier adds to a case."""
    return 0 if case.shards <= 1 else 1 + case.shards


class TestFuzzSmoke:
    def test_corpus_slice_is_clean(self):
        failures, simulations = fuzz(SMOKE_CASES, SMOKE_SEED)
        assert simulations == sum(
            9 + _fleet_sims(generate_case(SMOKE_SEED, i))
            for i in range(SMOKE_CASES)
        )
        for failing in failures:
            for message in failing.violations + failing.divergences:
                print(message)
        assert failures == []

    def test_generation_is_deterministic(self):
        a = generate_case(SMOKE_SEED, 3)
        b = generate_case(SMOKE_SEED, 3)
        assert a == b
        assert generate_case(SMOKE_SEED + 1, 3) != a

    def test_case_json_round_trip(self):
        case = generate_case(SMOKE_SEED, 4)
        assert FuzzCase.from_json(case.to_json()) == case

    def test_round_trip_preserves_shards(self):
        case = next(
            generate_case(SMOKE_SEED, i)
            for i in range(32)
            if generate_case(SMOKE_SEED, i).shards > 1
        )
        assert FuzzCase.from_json(case.to_json()).shards == case.shards

    def test_legacy_case_json_defaults_to_unsharded(self):
        # Corpus lines recorded before the fleet tier carry no "shards"
        # key; they must keep meaning the single-process engine.
        case = generate_case(SMOKE_SEED, 4)
        payload = case.to_json()
        import json

        stripped = json.dumps(
            {k: v for k, v in json.loads(payload).items() if k != "shards"}
        )
        assert FuzzCase.from_json(stripped).shards == 1

    def test_shard_counts_are_drawn(self):
        drawn = {generate_case(SMOKE_SEED, i).shards for i in range(32)}
        assert 1 in drawn  # keeps cheap unsharded cases in the corpus
        assert any(s > 1 for s in drawn)

    def test_batch_limits_are_drawn(self):
        # The corpus must exercise both engine endpoints (1 = per-packet,
        # None = unbounded) plus capped batch sizes.
        drawn = {generate_case(SMOKE_SEED, i).batch for i in range(24)}
        assert 1 in drawn
        assert None in drawn
        assert any(b is not None and b > 1 for b in drawn)

    def test_baselines_rotate(self):
        drawn = {generate_case(SMOKE_SEED, i).baseline
                 for i in range(len(BASELINES))}
        assert drawn == set(BASELINES)

    def test_minimization_edits(self):
        case = generate_case(SMOKE_SEED, 0)
        while case.num_flows < 2:
            case = generate_case(SMOKE_SEED, case.index + 1)
        smaller = case.drop_flow(0)
        assert smaller.num_flows == case.num_flows - 1
        assert smaller.ccs == case.ccs[1:]
        shorter = case.with_horizon(case.horizon / 2)
        assert shorter.horizon == pytest.approx(case.horizon / 2)

    def test_single_case_report_shape(self):
        case = generate_case(SMOKE_SEED, 0)
        report = run_case(case)
        assert report.simulations == 9 + _fleet_sims(case)
        assert report.violations == []
        assert report.divergences == []
        assert not report.failed
