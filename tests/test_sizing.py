"""Tests for the sizing rules (§3.5, Appendix A)."""

import pytest

from repro.core import sizing
from repro.units import MSS, mbps, ms


class TestRenoSizing:
    def test_paper_headline_configuration(self):
        """r = 10 Mbps, RTT = 100 ms: BDP = 83.3 pkts, B = BDP^2/18 x MSS."""
        b = sizing.reno_min_phantom_buffer(mbps(10), ms(100))
        bdp = mbps(10) * ms(100) / MSS
        assert b == pytest.approx(bdp * bdp / 18 * MSS)
        assert 500e3 < b < 650e3  # ~579 KB

    def test_scales_quadratically_with_bdp(self):
        b1 = sizing.reno_min_phantom_buffer(mbps(10), ms(50))
        b2 = sizing.reno_min_phantom_buffer(mbps(10), ms(100))
        assert b2 / b1 == pytest.approx(4.0)

    def test_policer_bucket_equals_phantom_requirement(self):
        assert sizing.reno_min_policer_bucket(mbps(5), ms(40)) == \
            sizing.reno_min_phantom_buffer(mbps(5), ms(40))

    def test_steady_rate_bounds(self):
        lo, hi = sizing.reno_steady_rate_bounds(9.0)
        assert lo == pytest.approx(6.0)
        assert hi == pytest.approx(12.0)


class TestCubicSizing:
    def test_positive_and_finite(self):
        b = sizing.cubic_min_bucket(mbps(10), ms(50))
        assert 0 < b < 1e9

    def test_crossover_with_reno(self):
        """§6.1: Cubic needs a bigger bucket at small rate x RTT, Reno at
        large — the requirement curves cross."""
        small = (mbps(1.5), ms(10))
        large = (mbps(50), ms(100))
        assert sizing.cubic_min_bucket(*small) > \
            sizing.reno_min_phantom_buffer(*small)
        assert sizing.cubic_min_bucket(*large) < \
            sizing.reno_min_phantom_buffer(*large)

    def test_policer_plus_takes_max(self):
        r, rtt = mbps(1.5), ms(10)
        assert sizing.policer_plus_bucket(r, rtt) == pytest.approx(
            max(sizing.cubic_min_bucket(r, rtt),
                sizing.reno_min_policer_bucket(r, rtt)))


class TestBcpqpSizing:
    def test_default_headroom(self):
        b = sizing.bcpqp_default_buffer(mbps(10), ms(100))
        assert b == pytest.approx(
            10 * sizing.reno_min_phantom_buffer(mbps(10), ms(100)))

    def test_bdp_bucket(self):
        assert sizing.bdp_bucket(mbps(10), ms(100)) == pytest.approx(125_000)
