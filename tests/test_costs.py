"""Tests for the operation-level cost model."""

import pytest

from repro.limiters.costs import CostMeter, CostTable, Op


class TestCostMeter:
    def test_charge_and_count(self):
        m = CostMeter()
        m.charge(Op.ALU, 3)
        m.charge(Op.ALU)
        assert m.count(Op.ALU) == 4.0

    def test_cycles_weighted_sum(self):
        m = CostMeter()
        m.charge(Op.ALU, 10)
        m.charge(Op.PKT_FETCH, 2)
        table = CostTable(alu=2.0, pkt_fetch=100.0)
        assert m.cycles(table) == pytest.approx(20 + 200)

    def test_cycles_per_packet(self):
        m = CostMeter()
        m.charge(Op.ALU, 100)
        assert m.cycles_per_packet(50, CostTable(alu=1.0)) == pytest.approx(2.0)
        assert m.cycles_per_packet(0) == 0.0

    def test_snapshot_and_reset(self):
        m = CostMeter()
        m.charge(Op.TIMER, 5)
        assert m.snapshot()["timer"] == 5.0
        m.reset()
        assert m.cycles() == 0.0

    def test_default_table_ordering(self):
        """Structural sanity: memory ops cost more than ALU ops; the packet
        fetch (pointer chase) is the most expensive single operation."""
        t = CostTable()
        assert t.alu < t.map < t.pkt_store
        assert t.pkt_fetch > t.pkt_store
        assert t.price(Op.ALU) == t.alu
