"""Impairment channels: gates, jitter pipe, trace links, and the
impaired-engine equivalence properties.

The module-level properties pin the contract the tentpole rests on:

* gate statistics match their specs (GE stationary loss rate);
* impaired flows still complete with a contiguous receiver sequence
  space (loss recovery survives every impairment mix);
* impaired runs are byte-identical across delivery batch granularities
  and fleet shard counts (same-seed, same-draw-order determinism);
* a disabled :class:`ImpairmentSpec` is indistinguishable from no spec;
* the coalesced FIFOs refuse non-monotone delivery times instead of
  silently reordering, and the jitter pipe refuses to deliver a packet
  that was recycled under it.

Pinned fuzz regressions at the bottom re-run real minimized ``--case``
lines from the impaired differential-fuzzer campaign.
"""

from __future__ import annotations

import dataclasses
import json
from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.impair import (
    CapacityTrace,
    Corrupter,
    Duplicator,
    GilbertElliottGate,
    ImpairmentSpec,
    JitterPipe,
    LossGate,
    TraceLink,
    build_ack_path,
    build_data_path,
)
from repro.net.link import Link
from repro.net.packet import FlowId, Packet
from repro.net.pipe import Pipe
from repro.runner.aggregate import AggregateConfig, simulate_aggregate
from repro.sim.simulator import SimulationError, Simulator
from repro.units import MSS, mbps
from repro.validate.fuzz import FuzzCase, generate_case, run_case
from repro.workload.spec import FlowSpec

pytestmark = pytest.mark.impair

FLOW = FlowId(0, 0)


def make_data(seq=0):
    return Packet.data(FLOW, seq, 0.0)


class Collector:
    """Terminal sink recording delivery order."""

    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


# ---------------------------------------------------------------------------
# Spec validation and round-tripping
# ---------------------------------------------------------------------------


class TestImpairmentSpec:
    def test_default_is_disabled(self):
        spec = ImpairmentSpec()
        assert not spec.enabled
        assert not spec.data_path_enabled
        assert not spec.ack_path_enabled
        assert not spec.trace_enabled

    def test_enabled_flags(self):
        assert ImpairmentSpec(loss=0.1).data_path_enabled
        assert ImpairmentSpec(ge=(0.1, 0.5, 0.0, 0.9)).data_path_enabled
        assert ImpairmentSpec(jitter=0.01).data_path_enabled
        assert ImpairmentSpec(ack_loss=0.1).ack_path_enabled
        assert not ImpairmentSpec(ack_loss=0.1).data_path_enabled
        # Corruption hits both directions (ACKs fail checksums too).
        assert ImpairmentSpec(corrupt=0.1).data_path_enabled
        assert ImpairmentSpec(corrupt=0.1).ack_path_enabled
        assert ImpairmentSpec(trace_rates=((1.0, 1e6),)).trace_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss": 1.5},
            {"loss": -0.1},
            {"jitter": -1.0},
            {"reorder": 0.5},  # no reorder_extra
            {"ge": (1.5, 0.1, 0.0, 0.5)},
            {"trace_rates": ()},
            {"trace_rates": ((0.0, 1e6),)},
            {"trace_rates": ((1.0, -5.0),)},
            {"trace_delay": -1.0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            ImpairmentSpec(**kwargs)

    def test_json_round_trip(self):
        spec = ImpairmentSpec(
            loss=0.01, ge=(0.01, 0.3, 0.0, 0.5), jitter=0.002,
            reorder=0.05, reorder_extra=0.001,
            trace_rates=((0.5, 1e6), (0.5, 2e5)),
        )
        text = json.dumps(dataclasses.asdict(spec))
        again = ImpairmentSpec(**json.loads(text))
        assert again == spec
        assert hash(again) == hash(spec)


# ---------------------------------------------------------------------------
# Gates
# ---------------------------------------------------------------------------


class TestGates:
    def test_loss_gate_rate(self):
        sink = Collector()
        gate = LossGate(0.3, sink, Random(7))
        n = 20000
        for i in range(n):
            gate.receive(make_data(i))
        observed = gate.dropped_packets / n
        assert abs(observed - 0.3) < 0.02
        assert gate.forwarded_packets == len(sink.packets)
        assert gate.dropped_packets + gate.forwarded_packets == n

    def test_dropped_packets_are_recycled_once(self):
        sink = Collector()
        gate = LossGate(1.0, sink, Random(1))
        Packet._data_pool.clear()
        packet = Packet(flow=FLOW, kind=make_data().kind, seq=0,
                        size=MSS, sent_at=0.0)
        gate.receive(packet)
        assert packet._in_pool
        assert Packet._data_pool.count(packet) == 1
        # A second recycle (defensive downstream path) must be a no-op.
        Packet.recycle(packet)
        assert Packet._data_pool.count(packet) == 1
        Packet._data_pool.clear()

    @settings(deadline=None, max_examples=15)
    @given(
        p_gb=st.floats(0.005, 0.05),
        p_bg=st.floats(0.1, 0.5),
        loss_bad=st.floats(0.3, 0.9),
        seed=st.integers(0, 2**16),
    )
    def test_gilbert_elliott_stationary_rate(self, p_gb, p_bg, loss_bad, seed):
        """Empirical loss converges on the chain's stationary rate."""
        sink = Collector()
        gate = GilbertElliottGate(p_gb, p_bg, 0.0, loss_bad, sink,
                                  Random(seed))
        n = 60000
        for i in range(n):
            gate.receive(make_data(i))
        expected = GilbertElliottGate.stationary_loss(
            p_gb, p_bg, 0.0, loss_bad
        )
        observed = gate.dropped_packets / n
        # Bursty loss has high variance; bound the error by a mix of
        # absolute slack and relative slack.
        assert abs(observed - expected) < 0.01 + 0.35 * expected

    def test_gilbert_elliott_degenerate_chain(self):
        assert GilbertElliottGate.stationary_loss(0.0, 0.0, 0.02, 0.9) == 0.02

    def test_duplicator_emits_fresh_clone(self):
        sink = Collector()
        gate = Duplicator(1.0, sink, Random(3))
        packet = make_data(5)
        gate.receive(packet)
        assert len(sink.packets) == 2
        original, clone = sink.packets
        assert original is packet
        assert clone is not packet
        assert clone.uid != packet.uid
        assert (clone.flow, clone.seq, clone.size) == (
            packet.flow, packet.seq, packet.size
        )

    def test_corrupter_marks_and_forwards(self):
        sink = Collector()
        gate = Corrupter(1.0, sink, Random(3))
        packet = make_data(5)
        assert not packet.corrupt
        gate.receive(packet)
        assert sink.packets == [packet]
        assert packet.corrupt
        assert gate.corrupted_packets == 1

    def test_corrupt_flag_reset_on_pooled_reissue(self):
        Packet._data_pool.clear()
        packet = make_data(1)
        packet.corrupt = True
        Packet.recycle(packet)
        reissued = Packet.data(FLOW, 2, 1.0)
        assert reissued is packet
        assert not reissued.corrupt
        Packet._data_pool.clear()

    def test_batch_entry_loops_per_packet(self):
        sink = Collector()
        gate = LossGate(0.5, sink, Random(11))
        batch = [make_data(i) for i in range(100)]
        gate.receive_batch(list(batch))
        # The same seed consumed per-packet gives the same decisions.
        sink2 = Collector()
        gate2 = LossGate(0.5, sink2, Random(11))
        for packet in [make_data(i) for i in range(100)]:
            gate2.receive(packet)
        assert [p.seq for p in sink.packets] == [p.seq for p in sink2.packets]


# ---------------------------------------------------------------------------
# JitterPipe
# ---------------------------------------------------------------------------


class TestJitterPipe:
    def test_delivers_within_jitter_band(self):
        sim = Simulator()
        sink = Collector()
        pipe = JitterPipe(sim, 0.01, sink, jitter=0.005, rng=Random(5))
        times = {}
        original_receive = sink.receive
        sink.receive = lambda p: (times.__setitem__(p.seq, sim.now),
                                  original_receive(p))
        for i in range(50):
            pipe.receive(make_data(i))
        sim.run()
        assert len(sink.packets) == 50
        assert all(0.01 <= t < 0.015 + 1e-12 for t in times.values())

    def test_reordering_occurs(self):
        sim = Simulator()
        sink = Collector()
        pipe = JitterPipe(sim, 0.01, sink, reorder=0.3, reorder_extra=0.02,
                          rng=Random(9))

        def feed(seq):
            pipe.receive(make_data(seq))

        for i in range(100):
            sim.call_at(i * 0.001, feed, i)
        sim.run()
        seqs = [p.seq for p in sink.packets]
        assert len(seqs) == 100
        assert sorted(seqs) == list(range(100))
        assert seqs != sorted(seqs)  # something actually reordered
        assert pipe.reordered_packets > 0

    def test_same_instant_arrivals_preserve_order_without_jitter_draws(self):
        # reorder=0 and jitter=0 is degenerate but legal via direct
        # construction; delivery must then be FIFO (seq tiebreaker).
        sim = Simulator()
        sink = Collector()
        pipe = JitterPipe(sim, 0.01, sink, rng=Random(1))
        for i in range(10):
            pipe.receive(make_data(i))
        sim.run()
        assert [p.seq for p in sink.packets] == list(range(10))

    def test_generation_guard_catches_recycled_in_flight(self):
        sim = Simulator()
        sink = Collector()
        pipe = JitterPipe(sim, 0.01, sink, jitter=0.001, rng=Random(2))
        packet = make_data(0)
        pipe.receive(packet)
        # Simulate the pool-lifecycle bug: something recycles the packet
        # while the pipe still holds it.
        Packet.recycle(packet)
        with pytest.raises(SimulationError, match="recycled"):
            sim.run()
        Packet._data_pool.clear()

    def test_in_flight_counter(self):
        sim = Simulator()
        pipe = JitterPipe(sim, 0.01, Collector(), jitter=0.002, rng=Random(3))
        for i in range(7):
            pipe.receive(make_data(i))
        assert pipe.in_flight == 7
        sim.run()
        assert pipe.in_flight == 0


# ---------------------------------------------------------------------------
# Monotonicity guards (satellite: coalesced-FIFO assumption enforcement)
# ---------------------------------------------------------------------------


class TestMonotonicityGuards:
    def test_pipe_rejects_shrinking_delay(self):
        sim = Simulator()
        pipe = Pipe(sim, 0.01, Collector())
        pipe.receive(make_data(0))
        # Mutating the delay mid-flight breaks arrival==delivery order;
        # the pipe must refuse rather than deliver out of order.
        pipe._delay = 0.001
        with pytest.raises(SimulationError, match="non-monotone"):
            pipe.receive(make_data(1))

    def test_pipe_batch_entry_guarded(self):
        sim = Simulator()
        pipe = Pipe(sim, 0.01, Collector())
        pipe.receive_batch([make_data(0)])
        pipe._delay = 0.001
        with pytest.raises(SimulationError, match="non-monotone"):
            pipe.receive_batch([make_data(1)])

    def test_link_rejects_non_monotone_propagation(self):
        sim = Simulator()
        # 1 packet/s serialization, 5 s propagation: packet 0 exits the
        # wire at t=6, packet 1 finishes serializing at t=2.
        link = Link(sim, rate=float(MSS), delay=5.0, sink=Collector())
        link.receive(make_data(0))
        link.receive(make_data(1))

        def shrink():
            # Mid-flight delay shrink: packet 1 would now exit at t=3.5,
            # before packet 0 — the coalesced FIFO must refuse.
            link._delay = 1.5

        sim.call_at(1.5, shrink)
        with pytest.raises(SimulationError, match="non-monotone"):
            sim.run()

    def test_link_drop_recycles(self):
        Packet._data_pool.clear()
        sim = Simulator()
        link = Link(sim, rate=1e3, delay=0.0, sink=Collector(),
                    buffer_bytes=0.0)
        first = make_data(0)
        link.receive(first)  # goes into service
        dropped = make_data(1)
        link.receive(dropped)  # buffer of 0 bytes: dropped
        assert link.dropped_packets == 1
        assert dropped._in_pool
        assert dropped in Packet._data_pool
        sim.run()
        Packet._data_pool.clear()


# ---------------------------------------------------------------------------
# CapacityTrace / TraceLink
# ---------------------------------------------------------------------------


class TestCapacityTrace:
    def test_mean_rate_and_cycle(self):
        trace = CapacityTrace(((0.5, 2e6), (0.5, 5e5)))
        assert trace.cycle == 1.0
        assert trace.mean_rate == pytest.approx(1.25e6)

    def test_tx_time_within_segment(self):
        trace = CapacityTrace(((1.0, 1e6),))
        assert trace.tx_time(0.0, 1e5) == pytest.approx(0.1)

    def test_tx_time_across_boundary(self):
        trace = CapacityTrace(((0.5, 250000.0), (0.5, 62500.0)))
        # 0.001 s left at 250 kB/s = 250 B; remaining 1250 B at
        # 62.5 kB/s = 0.02 s.
        assert trace.tx_time(0.499, 1500) == pytest.approx(0.021)

    def test_tx_time_wraps_cycle(self):
        trace = CapacityTrace(((0.1, 1000.0),))
        # 1000 B/s, 100 B per cycle of 0.1 s: 250 B takes 2.5 cycles.
        assert trace.tx_time(0.0, 250.0) == pytest.approx(0.25)

    def test_from_file_two_column(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# duration_s rate_mbps\n0.5 2.0\n\n0.5 0.5\n")
        trace = CapacityTrace.from_file(str(path))
        assert trace.segments == ((0.5, mbps(2.0)), (0.5, mbps(0.5)))

    def test_from_file_mahimahi(self, tmp_path):
        path = tmp_path / "cell.pt"
        # 3 MTUs in [0,100) ms, none in [100,200) ms.
        path.write_text("10\n50\n90\n150\n")
        trace = CapacityTrace.from_file(str(path))
        assert len(trace.segments) == 2
        assert trace.segments[0] == (0.1, pytest.approx(3 * MSS / 0.1))
        # The empty-ish second bin floors at the minimum rate.
        assert trace.segments[1][1] >= float(MSS)

    def test_from_file_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError):
            CapacityTrace.from_file(str(path))

    def test_trace_link_throughput_tracks_trace(self):
        sim = Simulator()
        sink = Collector()
        trace = CapacityTrace(((1.0, 10 * MSS),))  # 10 packets/s
        link = TraceLink(sim, trace, 0.0, sink)
        for i in range(25):
            link.receive(make_data(i))
        sim.run(until=1.0)
        assert 8 <= len(sink.packets) <= 11


# ---------------------------------------------------------------------------
# Path builders
# ---------------------------------------------------------------------------


class TestPathBuilders:
    def test_data_path_plain_when_only_loss(self):
        sim = Simulator()
        sink = Collector()
        entry = build_data_path(
            sim, 0.01, sink, ImpairmentSpec(loss=0.5), Random(1)
        )
        assert isinstance(entry, LossGate)

    def test_data_path_jitter_pipe_when_jittery(self):
        sim = Simulator()
        entry = build_data_path(
            sim, 0.01, Collector(), ImpairmentSpec(jitter=0.001), Random(1)
        )
        assert isinstance(entry, JitterPipe)

    def test_ack_path_orders_loss_then_corrupt(self):
        sim = Simulator()
        entry = build_ack_path(
            sim, 0.01, Collector(),
            ImpairmentSpec(ack_loss=0.1, corrupt=0.1), Random(1)
        )
        assert isinstance(entry, LossGate)
        assert isinstance(entry._sink, Corrupter)


# ---------------------------------------------------------------------------
# End-to-end equivalence properties
# ---------------------------------------------------------------------------

_BASE = dict(
    scheme="bcpqp",
    specs=(
        FlowSpec(slot=0, cc="cubic", rtt=0.03),
        FlowSpec(slot=1, cc="reno", rtt=0.05),
    ),
    rate=mbps(8.0),
    max_rtt=0.1,
    horizon=2.0,
    warmup=0.5,
    seed=13,
)


def _outcome_key(outcome):
    return (
        outcome.aggregate_series.values,
        {k: v.values for k, v in outcome.slot_series.items()},
        outcome.drop_rate,
        outcome.arrived_packets,
        outcome.flow_records,
        outcome.magic_fills,
        outcome.magic_reclaims,
    )


class TestEquivalence:
    def test_disabled_spec_byte_identical_to_none(self):
        clean = simulate_aggregate(AggregateConfig(**_BASE))
        disabled = simulate_aggregate(
            AggregateConfig(**_BASE, impair=ImpairmentSpec())
        )
        assert _outcome_key(clean) == _outcome_key(disabled)

    @settings(deadline=None, max_examples=6)
    @given(
        seed=st.integers(1, 2**20),
        loss=st.floats(0.0, 0.04),
        jitter=st.floats(0.0, 0.004),
        ack_loss=st.floats(0.0, 0.03),
        corrupt=st.floats(0.0, 0.02),
    )
    def test_impaired_byte_identical_across_batches(
        self, seed, loss, jitter, ack_loss, corrupt
    ):
        spec = ImpairmentSpec(
            loss=loss, jitter=jitter, ack_loss=ack_loss, corrupt=corrupt,
            reorder=0.05 if jitter > 0 else 0.0,
            reorder_extra=0.002 if jitter > 0 else 0.0,
        )
        base = dict(_BASE, seed=seed, horizon=1.2, warmup=0.3)
        keys = [
            _outcome_key(simulate_aggregate(
                AggregateConfig(**base, impair=spec, batch=batch)
            ))
            for batch in (1, 3, None)
        ]
        assert keys[0] == keys[1] == keys[2]

    def test_impaired_run_validates_clean(self):
        spec = ImpairmentSpec(
            loss=0.02, ack_loss=0.02, jitter=0.003, reorder=0.05,
            reorder_extra=0.002, duplicate=0.01, corrupt=0.01,
            ge=(0.01, 0.3, 0.0, 0.5),
        )
        # validate=True attaches the invariant checker (fail-fast);
        # completing without raising is the assertion — including the
        # finalize-time packet-pool integrity check.
        simulate_aggregate(
            AggregateConfig(**_BASE, impair=spec, validate=True)
        )

    @settings(deadline=None, max_examples=5)
    @given(
        seed=st.integers(1, 2**20),
        loss=st.floats(0.005, 0.05),
        use_ge=st.booleans(),
        jitter=st.floats(0.0, 0.005),
    )
    def test_impaired_flows_complete_contiguously(
        self, seed, loss, use_ge, jitter
    ):
        """Finite flows complete despite impairments, and the receiver's
        cumulative sequence space is contiguous (rcv_nxt == flow length,
        no holes survived recovery)."""
        from repro.cc.endpoint import FlowDemux
        from repro.wiring import wire_flow

        sim = Simulator()
        demux = FlowDemux()
        collector = Collector()
        spec = ImpairmentSpec(
            loss=loss,
            ge=(0.01, 0.3, 0.0, 0.5) if use_ge else None,
            jitter=jitter,
            reorder=0.05 if jitter > 0 else 0.0,
            reorder_extra=0.002 if jitter > 0 else 0.0,
        )
        flow = FlowId(0, 0)

        class Ingress:
            def receive(self, packet):
                demux.receive(packet)

        total = 120
        done = []
        sender = wire_flow(
            sim,
            flow,
            cc="reno",
            rtt=0.04,
            ingress=Ingress(),
            demux=demux,
            packets=total,
            start=0.0,
            on_complete=lambda s, t: done.append(t),
            impair=spec,
            impair_rng=Random(seed),
        )
        sim.run(until=60.0)
        assert done, "flow failed to complete under impairment"
        assert sender.snd_una == total
        receiver = demux._sinks[flow]
        assert receiver.rcv_nxt == total
        assert not receiver._ranges  # no out-of-order holes survived

    def test_impaired_fleet_shard_invariant(self):
        from repro.fleet.shard import simulate_shard
        from repro.fleet.spec import FleetSpec, shard_configs
        from repro.metrics.merge import merge_shard_summaries

        spec = FleetSpec(
            aggregates=5,
            seed=21,
            impair=ImpairmentSpec(loss=0.02, jitter=0.003, reorder=0.05,
                                  reorder_extra=0.002, ack_loss=0.01),
        )
        digests = []
        for shards in (1, 2):
            summaries = [simulate_shard(c) for c in shard_configs(spec, shards)]
            digests.append(merge_shard_summaries(summaries).digest)
        assert digests[0] == digests[1]

    def test_corrupt_acks_dropped_at_sender(self):
        spec = ImpairmentSpec(corrupt=0.05)
        base = dict(_BASE, horizon=1.5, warmup=0.3)
        sim = Simulator()
        from repro.runner.aggregate import build_scenario

        _limiter, scenario = build_scenario(
            AggregateConfig(**base, impair=spec), sim
        )
        scenario.run()
        senders = [
            s for runner in scenario.runners for s in runner.senders
        ]
        receivers = list(scenario.demux._sinks.values())
        assert sum(s.corrupt_acks_dropped for s in senders) > 0
        assert sum(r.corrupt_dropped for r in receivers) > 0


# ---------------------------------------------------------------------------
# Fuzzer plumbing
# ---------------------------------------------------------------------------


class TestFuzzPlumbing:
    def test_clean_corpus_unchanged_by_impair_flag_machinery(self):
        # No --impair: the generated case must match the historical
        # corpus (no extra draws).
        assert generate_case(1, 0) == generate_case(1, 0, impair=False)
        assert generate_case(1, 0).impair is None

    def test_impaired_corpus_shares_scenario_body(self):
        clean = generate_case(1, 3)
        impaired = generate_case(1, 3, impair=True)
        assert impaired.impair is not None
        assert dataclasses.replace(impaired, impair=None) == clean

    def test_impaired_case_json_round_trip(self):
        case = generate_case(1, 2, impair=True)
        again = FuzzCase.from_json(case.to_json())
        assert again == case
        assert isinstance(again.impair, ImpairmentSpec)


# ---------------------------------------------------------------------------
# Pinned fuzz regressions (minimized --case lines from the impaired
# campaign; each ran 200+ cases clean at commit time, these pin the
# corpus edges that exercised the most machinery)
# ---------------------------------------------------------------------------


@pytest.mark.validate
class TestPinnedImpairedCases:
    @pytest.mark.parametrize("index", [0, 7, 13])
    def test_impaired_case_runs_clean(self, index):
        report = run_case(generate_case(1, index, impair=True))
        assert not report.violations, report.violations
        assert not report.divergences, report.divergences
