"""Tests for the ECN extension (phantom-queue AQM marking, §3.3)."""

import random

import pytest

from repro import AggregateScenario, FlowSpec, Simulator
from repro.classify.classifier import SlotClassifier
from repro.core.pqp import PQP
from repro.metrics import aggregate_throughput_series
from repro.net.packet import FlowId, Packet
from repro.net.sink import NullSink
from repro.policy.tree import Policy
from repro.units import mbps, ms


def make_pqp(sim, *, mark=0.5, rate=15_000.0, cap=15_000.0, n=1):
    pqp = PQP(sim, rate=rate, policy=Policy.fair(n),
              classifier=SlotClassifier(n), queue_bytes=cap,
              ecn_mark_fraction=mark)
    sink = NullSink()
    pqp.connect(sink)
    return pqp


def pkt(seq=0, *, ecn=True, slot=0):
    return Packet.data(FlowId(0, slot), seq, 0.0, ecn_capable=ecn)


class TestMarking:
    def test_marks_above_threshold(self):
        sim = Simulator()
        pqp = make_pqp(sim, mark=0.3)  # threshold at 4500 B of 15000 B
        marked = []

        class _Sink:
            def receive(self, p):
                marked.append(p.ce)

        pqp.connect(_Sink())
        for i in range(8):
            pqp.receive(pkt(i))
        # First three packets fill to 4500 B (at threshold, unmarked);
        # later accepted ones are marked.
        assert marked[:3] == [False, False, False]
        assert all(marked[3:])
        assert pqp.ecn_marked_packets == len(marked) - 3

    def test_non_ecn_packets_never_marked(self):
        sim = Simulator()
        pqp = make_pqp(sim, mark=0.1)
        forwarded = []

        class _Sink:
            def receive(self, p):
                forwarded.append(p.ce)

        pqp.connect(_Sink())
        for i in range(5):
            pqp.receive(pkt(i, ecn=False))
        assert not any(forwarded)
        assert pqp.ecn_marked_packets == 0

    def test_marking_disabled_by_default(self):
        sim = Simulator()
        pqp = PQP(sim, rate=1000.0, policy=Policy.fair(1),
                  classifier=SlotClassifier(1), queue_bytes=3000.0)
        pqp.connect(NullSink())
        pqp.receive(pkt(0))
        pqp.receive(pkt(1))
        assert pqp.ecn_marked_packets == 0

    def test_invalid_fraction_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_pqp(sim, mark=0.0)
        with pytest.raises(ValueError):
            make_pqp(sim, mark=1.5)

    def test_full_queue_still_drops(self):
        sim = Simulator()
        pqp = make_pqp(sim, mark=0.5, cap=4500.0)
        for i in range(10):
            pqp.receive(pkt(i))
        assert pqp.stats.dropped_packets == 7


class TestEcnSender:
    def test_echo_triggers_one_reduction_per_rtt(self):
        """An ECE burst within one window causes exactly one cwnd cut."""
        from repro.cc.reno import NewReno
        from repro.cc.endpoint import TcpSender

        sim = Simulator()
        sender = TcpSender(sim, FlowId(0, 0), NewReno(initial_cwnd=20),
                           NullSink(), ecn=True, initial_rtt=0.05)
        sim.run(until=0.01)
        sender.snd_nxt = 20  # pretend a window is in flight
        before = sender.cc.cwnd
        for i in range(5):
            sender.receive(Packet.ack(
                FlowId(0, 0), 0, sim.now, echo_ts=0.0,
                echo_retransmit=True, ecn_echo=True))
        assert sender.ecn_reductions == 1
        assert sender.cc.cwnd == pytest.approx(before / 2, rel=0.01)

    def test_non_ecn_sender_ignores_echo(self):
        from repro.cc.reno import NewReno
        from repro.cc.endpoint import TcpSender

        sim = Simulator()
        sender = TcpSender(sim, FlowId(0, 0), NewReno(initial_cwnd=20),
                           NullSink(), ecn=False, initial_rtt=0.05)
        sim.run(until=0.01)
        sender.snd_nxt = 20
        sender.receive(Packet.ack(
            FlowId(0, 0), 0, sim.now, echo_ts=0.0,
            echo_retransmit=True, ecn_echo=True))
        assert sender.ecn_reductions == 0


class TestEndToEnd:
    def test_ecn_pqp_nearly_eliminates_drops(self):
        """The headline of the extension: AQM marking on phantom queues
        keeps rate and fairness while removing packet loss for ECN flows."""
        def run(mark):
            sim = Simulator()
            lim = PQP(sim, rate=mbps(10), policy=Policy.fair(2),
                      classifier=SlotClassifier(2), queue_bytes=150_000.0,
                      ecn_mark_fraction=mark)
            specs = [FlowSpec(slot=0, cc="reno", rtt=ms(20), ecn=True),
                     FlowSpec(slot=1, cc="cubic", rtt=ms(30), ecn=True)]
            sc = AggregateScenario(sim, limiter=lim, specs=specs,
                                   rng=random.Random(1), horizon=15.0)
            sc.run()
            agg = aggregate_throughput_series(
                sc.trace.records, window=0.25, start=5.0, end=15.0)
            return agg.mean(), lim.stats.drop_rate

        rate_plain, drops_plain = run(None)
        rate_ecn, drops_ecn = run(0.25)
        assert rate_ecn == pytest.approx(rate_plain, rel=0.05)
        assert drops_ecn < drops_plain / 10
        assert drops_ecn < 0.01
