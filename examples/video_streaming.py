"""Cellular-style video rate limiting (the paper's §6.4.1 scenario).

A carrier limits a user to 3 Mbps.  The user watches a video (BBR
transport, like YouTube) while a bulk download runs in the background.
With the status-quo policer the BBR video starves or hogs depending on the
competition; with BC-PQP the 3 Mbps is split fairly between the video and
the rest — and the video still streams at good quality because there is
no queueing delay.

Run:  python examples/video_streaming.py
"""

from repro import Simulator, make_limiter
from repro.cc.endpoint import FlowDemux
from repro.metrics import jain_index, per_slot_throughput_series
from repro.net.packet import FlowId
from repro.net.trace import Trace
from repro.units import mbps, ms, to_mbps
from repro.wiring import wire_flow
from repro.workload.video import VideoConfig, VideoSession

RATE = mbps(3)
RTT = ms(40)
HORIZON = 100.0


def run(scheme: str) -> None:
    sim = Simulator()
    limiter = make_limiter(sim, scheme, rate=RATE, num_queues=2, max_rtt=RTT)
    demux = FlowDemux()
    trace = Trace(sim, demux, data_only=True)
    limiter.connect(trace)

    video = VideoSession(
        sim, ingress=limiter, demux=demux, slot=0,
        config=VideoConfig(total_chunks=18, cc="bbr", rtt=RTT))
    wire_flow(sim, FlowId(0, 1, 0), cc="cubic", rtt=RTT, ingress=limiter,
              demux=demux, packets=None, start=0.0)  # background download
    sim.run(until=HORIZON)

    # Measure shares only while the video session is active.
    video_end = max((r.time for r in trace.records if r.flow.slot == 0),
                    default=HORIZON)
    slots = per_slot_throughput_series(trace.records, window=0.25,
                                       start=5.0, end=max(video_end, 10.0))
    shares = [slots[s].mean() if s in slots else 0.0 for s in (0, 1)]
    stats = video.stats
    print(f"\n{scheme}:")
    print(f"  video    {to_mbps(shares[0]):5.2f} Mbps, avg quality rung "
          f"{stats.average_quality():.1f}, rebuffered "
          f"{stats.rebuffer_seconds:.1f} s")
    print(f"  download {to_mbps(shares[1]):5.2f} Mbps")
    print(f"  fairness {jain_index(shares):.3f}")


def main() -> None:
    for scheme in ("policer", "shaper-fifo", "bcpqp"):
        run(scheme)


if __name__ == "__main__":
    main()
