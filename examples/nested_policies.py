"""Nested rate-sharing policies with BC-PQP (the paper's §6.3.3).

A 10 Mbps plan is split by a two-level policy, all enforced without
buffering:

* an *interactive* class (strict high priority): web traffic and a video
  call sharing 2:1;
* a *bulk* class (low priority): two downloads sharing equally — they only
  get whatever the interactive class leaves unused.

Run:  python examples/nested_policies.py
"""

import random

from repro import (
    AggregateScenario,
    ClassNode,
    FlowSpec,
    Leaf,
    OnOffSpec,
    Policy,
    Simulator,
    make_limiter,
)
from repro.metrics import per_slot_throughput_series
from repro.units import mbps, ms, to_mbps

RATE = mbps(10)
HORIZON = 20.0

#: queue 0: web (weight 2), queue 1: call (weight 1)  — priority 0 (high)
#: queue 2, 3: downloads (equal)                      — priority 1 (low)
POLICY = Policy(ClassNode((
    ClassNode((Leaf(0, weight=2.0), Leaf(1, weight=1.0)), priority=0),
    ClassNode((Leaf(2), Leaf(3)), priority=1),
)))

FLOWS = [
    FlowSpec(slot=0, cc="cubic", rtt=ms(20),
             on_off=OnOffSpec(burst_packets_mean=300, off_time_mean=2.0)),
    FlowSpec(slot=1, cc="reno", rtt=ms(20),
             on_off=OnOffSpec(burst_packets_mean=150, off_time_mean=2.0)),
    FlowSpec(slot=2, cc="cubic", rtt=ms(30)),
    FlowSpec(slot=3, cc="bbr", rtt=ms(30)),
]

LABELS = ["web (hi, w=2)", "call (hi, w=1)", "download A (lo)",
          "download B (lo)"]


def main() -> None:
    sim = Simulator()
    limiter = make_limiter(sim, "bcpqp", rate=RATE, num_queues=4,
                           max_rtt=ms(50), policy=POLICY)
    scenario = AggregateScenario(sim, limiter=limiter, specs=FLOWS,
                                 rng=random.Random(3), horizon=HORIZON)
    scenario.run()

    slots = per_slot_throughput_series(scenario.trace.records, window=0.25,
                                       start=5.0, end=HORIZON)
    print(f"Nested policy over {to_mbps(RATE):.0f} Mbps "
          f"(interactive > bulk, weighted within):")
    total = 0.0
    for i, label in enumerate(LABELS):
        rate = slots[i].mean() if i in slots else 0.0
        total += rate
        print(f"  {label:16s} {to_mbps(rate):5.2f} Mbps")
    print(f"  {'total':16s} {to_mbps(total):5.2f} Mbps"
          f"  (drops {limiter.stats.drop_rate:.1%})")
    print("\nThe bulk class soaks up whatever the interactive class leaves"
          " idle;\nwhenever interactive traffic returns it preempts"
          " immediately — no\npackets were buffered to make that happen.")


if __name__ == "__main__":
    main()
