"""Quickstart: enforce 10 Mbps with per-flow fairness using BC-PQP.

Three backlogged flows with different congestion-control algorithms (the
unfair-by-default mix: Cubic, BBR, Reno) share one subscriber's 10 Mbps
plan.  A plain policer lets the aggressive flow win; BC-PQP gives each
flow its fair third without buffering a single packet.

Run:  python examples/quickstart.py
"""

import random

from repro import AggregateScenario, FlowSpec, Simulator, make_limiter
from repro.metrics import jain_index, per_slot_throughput_series
from repro.units import mbps, ms, to_mbps

RATE = mbps(10)
FLOWS = [
    FlowSpec(slot=0, cc="cubic", rtt=ms(20)),
    FlowSpec(slot=1, cc="bbr", rtt=ms(30)),
    FlowSpec(slot=2, cc="reno", rtt=ms(40)),
]
HORIZON = 15.0


def run(scheme: str) -> None:
    sim = Simulator()
    limiter = make_limiter(sim, scheme, rate=RATE, num_queues=len(FLOWS),
                           max_rtt=ms(50))
    scenario = AggregateScenario(sim, limiter=limiter, specs=FLOWS,
                                 rng=random.Random(1), horizon=HORIZON)
    scenario.run()

    slots = per_slot_throughput_series(
        scenario.trace.records, window=0.25, start=5.0, end=HORIZON)
    shares = {s.slot: slots[s.slot].mean() if s.slot in slots else 0.0
              for s in FLOWS}
    print(f"\n{scheme}: enforcing {to_mbps(RATE):.0f} Mbps")
    for spec in FLOWS:
        print(f"  {spec.cc:6s} -> {to_mbps(shares[spec.slot]):5.2f} Mbps")
    print(f"  total {to_mbps(sum(shares.values())):5.2f} Mbps,"
          f" Jain fairness {jain_index(shares.values()):.3f},"
          f" drop rate {limiter.stats.drop_rate:.1%}")


def main() -> None:
    for scheme in ("policer", "bcpqp"):
        run(scheme)


if __name__ == "__main__":
    main()
