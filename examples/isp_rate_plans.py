"""An ISP middlebox enforcing different subscriber plans with BC-PQP.

Three subscribers with different plans (5 / 20 / 50 Mbps) send mixed
traffic through one middlebox.  Each subscriber gets their own BC-PQP
instance with per-flow fairness inside their plan; nothing is buffered.

Run:  python examples/isp_rate_plans.py
"""

import random

from repro import (
    AggregateScenario,
    FlowSpec,
    OnOffSpec,
    Simulator,
    make_limiter,
)
from repro.metrics import aggregate_throughput_series
from repro.units import mbps, ms, to_mbps

PLANS = {  # subscriber id -> plan rate
    0: mbps(5),
    1: mbps(20),
    2: mbps(50),
}
HORIZON = 15.0


def subscriber_flows(subscriber: int, rng: random.Random) -> list[FlowSpec]:
    """Each subscriber runs a bulk download, a video-ish flow, and chatty
    short transfers — with whatever CC their apps happen to use."""
    return [
        FlowSpec(slot=0, cc="cubic", rtt=ms(rng.uniform(10, 40))),
        FlowSpec(slot=1, cc="bbr", rtt=ms(rng.uniform(10, 40))),
        FlowSpec(
            slot=2,
            cc="reno",
            rtt=ms(rng.uniform(10, 40)),
            on_off=OnOffSpec(burst_packets_mean=80, off_time_mean=0.3),
        ),
    ]


def main() -> None:
    rng = random.Random(7)
    print("Per-subscriber rate enforcement with BC-PQP")
    for subscriber, plan in PLANS.items():
        sim = Simulator()
        limiter = make_limiter(sim, "bcpqp", rate=plan, num_queues=3,
                               max_rtt=ms(50))
        scenario = AggregateScenario(
            sim,
            limiter=limiter,
            specs=subscriber_flows(subscriber, rng),
            rng=random.Random(100 + subscriber),
            aggregate=subscriber,
            horizon=HORIZON,
        )
        scenario.run()
        agg = aggregate_throughput_series(
            scenario.trace.records, window=0.25, start=5.0, end=HORIZON)
        print(f"  subscriber {subscriber}: plan {to_mbps(plan):5.1f} Mbps"
              f" -> measured {to_mbps(agg.mean()):5.2f} Mbps"
              f" (peak {to_mbps(agg.max()):5.2f},"
              f" drops {limiter.stats.drop_rate:.1%})")


if __name__ == "__main__":
    main()
