"""Discrete-event simulation engine.

The engine is deliberately tiny: a binary-heap event queue with a stable
tie-break, a monotonically advancing clock, and cancellable timers.  All
higher layers (links, TCP endpoints, rate limiters) are plain callback-driven
objects that hold a reference to the :class:`~repro.sim.simulator.Simulator`.
"""

from repro.sim.events import EventHandle
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator

__all__ = ["EventHandle", "RngFactory", "Simulator"]
