"""Discrete-event simulation engine.

The engine is deliberately tiny: a binary-heap event queue with a stable
tie-break, a monotonically advancing clock, and cancellable timers.  All
higher layers (links, TCP endpoints, rate limiters) are plain callback-driven
objects that hold a reference to the :class:`~repro.sim.simulator.Simulator`.

Hot-path machinery lives in two layers on top of the heap: soft-reschedule
:class:`~repro.sim.timer.Timer` objects (deadline updates without heap
traffic) and the fire-and-forget ``call_after``/``call_at`` pooled-handle
path (zero allocations per per-packet event).
"""

from repro.sim.events import EventHandle
from repro.sim.rng import RngFactory
from repro.sim.simulator import SimulationError, Simulator
from repro.sim.timer import Timer

__all__ = ["EventHandle", "RngFactory", "SimulationError", "Simulator", "Timer"]
