"""The discrete-event simulator core."""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.events import EventHandle


class SimulationError(RuntimeError):
    """Raised on scheduling misuse (e.g. scheduling into the past)."""


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Events scheduled for the same instant fire in insertion order, which
    makes runs bit-for-bit reproducible.  Time is a float in seconds and
    only moves forward.

    The pending-event heap stores ``(time, seq, handle)`` tuples so heap
    sift comparisons run on C-level float/int pairs instead of calling
    :meth:`EventHandle.__lt__` — the single hottest comparison in a
    saturated run.  ``seq`` is unique, so the handle itself is never
    compared.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0, *, validate: Any = None) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        #: Optional :class:`repro.validate.InvariantChecker`.  Components
        #: (limiters, senders, middleboxes) self-register with it at
        #: construction; when ``None`` (the default) nothing is wrapped
        #: and the event loop is untouched — validation has literally no
        #: disabled-path cost.
        self.validator = validate

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args)
        heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, now is t={self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args)
        heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def cancel(self, handle: EventHandle | None) -> None:
        """Cancel a pending event; cancelling ``None`` or twice is a no-op."""
        if handle is not None:
            handle.cancel()

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the heap is drained."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def step(self) -> bool:
        """Fire the next live event.  Returns ``False`` when none remain."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _seq, event = pop(heap)
            if event.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired in this call.

        Stop semantics (pinned by ``tests/test_sim.py``):

        * Stopped by ``until`` or by draining the heap: the clock is
          advanced to exactly ``until`` (when given) so that follow-up
          measurements read a consistent end time.
        * Stopped by ``max_events``: the clock is **left at the time of the
          last fired event** and is *not* advanced to ``until``.  The run
          is interrupted mid-schedule, so a caller single-stepping with
          ``max_events`` can resume exactly where it left off; advancing
          the clock would forbid rescheduling the very events that are
          still pending.  The ``max_events`` budget is checked before the
          heap, so ``max_events=0`` fires nothing and never touches the
          clock, even with ``until`` set.
        """
        if self._running:
            raise SimulationError("run() re-entered from within an event")
        self._running = True
        # Local-variable hot loop: one pass per event, no peek_time/step
        # double scan of the heap head and no per-event method dispatch.
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    return
                while heap and heap[0][2].cancelled:
                    pop(heap)
                if not heap:
                    break
                next_time = heap[0][0]
                if until is not None and next_time > until:
                    break
                _time, _seq, event = pop(heap)
                self._now = next_time
                self._events_processed += 1
                event.callback(*event.args)
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
