"""The discrete-event simulator core."""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.events import EventHandle


class SimulationError(RuntimeError):
    """Raised on scheduling misuse (e.g. scheduling into the past)."""


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Events scheduled for the same instant fire in insertion order, which
    makes runs bit-for-bit reproducible.  Time is a float in seconds and
    only moves forward.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[EventHandle] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, now is t={self._now!r}"
            )
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def cancel(self, handle: EventHandle | None) -> None:
        """Cancel a pending event; cancelling ``None`` or twice is a no-op."""
        if handle is not None:
            handle.cancel()

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the heap is drained."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self) -> bool:
        """Fire the next live event.  Returns ``False`` when none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired in this call.

        When stopped by ``until``, the clock is advanced to exactly ``until``
        so that follow-up measurements read a consistent end time.
        """
        if self._running:
            raise SimulationError("run() re-entered from within an event")
        self._running = True
        fired = 0
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    return
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
