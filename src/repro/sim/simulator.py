"""The discrete-event simulator core."""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.events import EventHandle, _noop

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised on scheduling misuse (e.g. scheduling into the past)."""


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Events scheduled for the same instant fire in insertion order, which
    makes runs bit-for-bit reproducible.  Time is a float in seconds and
    only moves forward.

    The pending-event heap stores ``(time, seq, handle)`` tuples so heap
    sift comparisons run on C-level float/int pairs instead of calling
    :meth:`EventHandle.__lt__` — the single hottest comparison in a
    saturated run.  ``seq`` is unique, so the handle itself is never
    compared.

    Two scheduling tiers keep the hot path allocation-free:

    * :meth:`schedule` / :meth:`schedule_at` return a fresh cancellable
      :class:`EventHandle` the caller may retain — the general-purpose
      path.
    * :meth:`call_after` / :meth:`call_at` are **fire-and-forget**: they
      return nothing, cannot be cancelled, and draw their handles from a
      free-list pool that recycles each handle the moment its event has
      fired (per-packet link/pipe events use this path).  Reissued
      handles bump :attr:`EventHandle.generation` so a stale reference
      is detectable.

    Engine telemetry (all O(1) to maintain): :attr:`pending` counts only
    *live* events, :attr:`cancelled_backlog` /
    :attr:`cancelled_backlog_hwm` track lazily-deleted tuples still
    sinking through the heap, and :attr:`heap_pushes` /
    :attr:`peak_heap_size` feed the event-engine benchmark section
    (``BENCH_eventloop.json``).

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(
        self,
        start_time: float = 0.0,
        *,
        validate: Any = None,
        batch_limit: int | None = None,
    ) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        if batch_limit is not None and batch_limit < 1:
            raise SimulationError(
                f"batch_limit must be None or >= 1, got {batch_limit!r}"
            )
        #: Batched-delivery policy for coalesced FIFO components
        #: (link/pipe): ``None`` = unbounded batches (the default engine),
        #: ``1`` = the legacy one-packet-per-callback path, ``K`` = cap
        #: each batch at K packets.  ``batch=1`` is byte-identical by
        #: construction (it *is* the old code path); every other setting
        #: is byte-identical by the reserved-seq argument in
        #: ``net/fastpath.py`` and is pinned by
        #: ``tests/test_engine_equivalence.py``.
        self.batch_limit = batch_limit
        # Kernel-facing cap: 0 means unbounded (a batch of n packets
        # stops growing when ``n == cap``; n starts at 1 so 0 never hits).
        self._batch_cap = 0 if batch_limit is None else batch_limit
        #: While ``run()`` executes without a ``max_events`` budget, the
        #: clock may be advanced *inline* by a batched drain (up to this
        #: bound) whenever the drain's own next packet is provably the
        #: globally next event — saving the heap round-trip the legacy
        #: engine paid.  ``None`` disables inline advancement (the state
        #: outside ``run()`` and under ``max_events`` stepping).
        self._advance_bound: float | None = None
        self._inline_advances = 0
        self._batched_deliveries = 0
        # Live/cancelled accounting (see the class docstring).
        self._live = 0
        self._cancelled_backlog = 0
        self._cancelled_hwm = 0
        self._heap_pushes = 0
        self._peak_heap = 0
        # Free list for fire-and-forget handles (call_after/call_at and
        # soft-timer wakes).  Exactly one heap entry references a pooled
        # handle at any time, so recycling at pop is sound.
        self._handle_pool: list[EventHandle] = []
        #: Committed live-reconfiguration count (policy-churn telemetry,
        #: maintained by ``RateLimiter.apply_update``): how many non-noop
        #: updates every limiter on this simulator has committed.  Feeds
        #: the churn benchmark's plan-changes-applied/sec floor.
        self.reconfigurations = 0
        #: Optional :class:`repro.validate.InvariantChecker`.  Components
        #: (limiters, senders, middleboxes) self-register with it at
        #: construction; when ``None`` (the default) nothing is wrapped
        #: and the event loop is untouched — validation has literally no
        #: disabled-path cost.
        self.validator = validate
        if validate is not None:
            attach = getattr(validate, "attach_simulator", None)
            if attach is not None:
                attach(self)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of *live* events awaiting their turn (cancelled tuples
        still sinking through the heap are excluded; see
        :attr:`cancelled_backlog`)."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Raw heap length, live plus cancelled-but-undiscarded tuples."""
        return len(self._heap)

    @property
    def cancelled_backlog(self) -> int:
        """Cancelled events still occupying heap slots (lazy deletion)."""
        return self._cancelled_backlog

    @property
    def cancelled_backlog_hwm(self) -> int:
        """High-water mark of :attr:`cancelled_backlog` over the run —
        how badly cancel-churn ever bloated the heap."""
        return self._cancelled_hwm

    @property
    def heap_pushes(self) -> int:
        """Total heap pushes so far (the event engine's dominant cost)."""
        return self._heap_pushes

    @property
    def peak_heap_size(self) -> int:
        """Largest heap length ever reached."""
        return self._peak_heap

    @property
    def handle_pool_size(self) -> int:
        """Free-list depth of recycled fire-and-forget handles."""
        return len(self._handle_pool)

    @property
    def inline_advances(self) -> int:
        """Clock advances performed inline by batched drains — each one
        replaced a heap push + pop + handle recycle of the legacy
        engine."""
        return self._inline_advances

    @property
    def batched_deliveries(self) -> int:
        """Packets delivered through multi-packet batches (batch size
        >= 2); singleton batches are not counted."""
        return self._batched_deliveries

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`EventHandle.cancel`."""
        self._live -= 1
        backlog = self._cancelled_backlog + 1
        self._cancelled_backlog = backlog
        if backlog > self._cancelled_hwm:
            self._cancelled_hwm = backlog

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"invalid delay {delay!r}: must be finite and non-negative"
            )
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args, self)
        heap = self._heap
        heapq.heappush(heap, (time, seq, handle))
        self._heap_pushes += 1
        self._live += 1
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if not self._now <= time < _INF:
            raise SimulationError(
                f"cannot schedule at t={time!r}, now is t={self._now!r} "
                "(time must be finite and not in the past)"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args, self)
        heap = self._heap
        heapq.heappush(heap, (time, seq, handle))
        self._heap_pushes += 1
        self._live += 1
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)
        return handle

    def _alloc_pooled(
        self, callback: Callable[..., None], args: tuple[Any, ...]
    ) -> EventHandle:
        pool = self._handle_pool
        if pool:
            handle = pool.pop()
            handle.generation += 1
            handle.callback = callback
            handle.args = args
            return handle
        handle = EventHandle(0.0, 0, callback, args, self)
        handle.pooled = True
        return handle

    def call_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no handle is returned, the
        event cannot be cancelled, and its (pooled) handle is recycled
        the moment it fires.  The per-packet scheduling path."""
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"invalid delay {delay!r}: must be finite and non-negative"
            )
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = self._alloc_pooled(callback, args)
        handle.time = time
        handle.seq = seq
        heap = self._heap
        heapq.heappush(heap, (time, seq, handle))
        self._heap_pushes += 1
        self._live += 1
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)

    def call_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Fire-and-forget :meth:`schedule_at` (see :meth:`call_after`)."""
        if not self._now <= time < _INF:
            raise SimulationError(
                f"cannot schedule at t={time!r}, now is t={self._now!r} "
                "(time must be finite and not in the past)"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = self._alloc_pooled(callback, args)
        handle.time = time
        handle.seq = seq
        heap = self._heap
        heapq.heappush(heap, (time, seq, handle))
        self._heap_pushes += 1
        self._live += 1
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)

    def reserve_seq(self) -> int:
        """Claim the next insertion-sequence number without scheduling.

        Coalesced FIFO components (link/pipe) reserve a seq per packet at
        entry — the exact point the pre-coalescing engine consumed one by
        scheduling a per-packet event — and later arm their single
        delivery event with the head packet's reserved seq via
        :meth:`call_at_reserved`.  Global (time, seq) firing order is
        therefore identical to scheduling one event per packet, while the
        heap holds at most one entry per component.
        """
        seq = self._seq
        self._seq = seq + 1
        return seq

    def call_at_reserved(
        self, time: float, seq: int, callback: Callable[..., None], *args: Any
    ) -> None:
        """Fire-and-forget schedule at ``time`` with a previously
        :meth:`reserve_seq`-claimed sequence number.  The caller must use
        each reserved seq at most once (uniqueness keeps heap ordering
        total)."""
        handle = self._alloc_pooled(callback, args)
        handle.time = time
        handle.seq = seq
        heap = self._heap
        heapq.heappush(heap, (time, seq, handle))
        self._heap_pushes += 1
        self._live += 1
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)

    def cancel(self, handle: EventHandle | None) -> None:
        """Cancel a pending event; cancelling ``None`` or twice is a no-op."""
        if handle is not None:
            handle.cancel()

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the heap is drained."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled_backlog -= 1
        if not heap:
            return None
        return heap[0][0]

    def _fire(self, event: EventHandle) -> None:
        """Invoke ``event`` and recycle its handle if pooled."""
        event.callback(*event.args)
        if event.pooled:
            event.callback = _noop
            event.args = ()
            self._handle_pool.append(event)
        else:
            # Mark consumed: a late cancel() on a fired handle must not
            # perturb the live/cancelled counters (and dropping the back
            # reference breaks the sim <-> handle cycle).
            event.owner = None

    def step(self) -> bool:
        """Fire the next live event.  Returns ``False`` when none remain."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _seq, event = pop(heap)
            if event.cancelled:
                self._cancelled_backlog -= 1
                continue
            self._now = time
            self._events_processed += 1
            self._live -= 1
            self._fire(event)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired in this call.

        Stop semantics (pinned by ``tests/test_sim.py``):

        * Stopped by ``until`` or by draining the heap: the clock is
          advanced to exactly ``until`` (when given) so that follow-up
          measurements read a consistent end time.
        * Stopped by ``max_events``: the clock is **left at the time of the
          last fired event** and is *not* advanced to ``until``.  The run
          is interrupted mid-schedule, so a caller single-stepping with
          ``max_events`` can resume exactly where it left off; advancing
          the clock would forbid rescheduling the very events that are
          still pending.  The ``max_events`` budget is checked before the
          heap, so ``max_events=0`` fires nothing and never touches the
          clock, even with ``until`` set.
        """
        if self._running:
            raise SimulationError("run() re-entered from within an event")
        self._running = True
        # Batched drains may advance the clock inline, but only while an
        # un-budgeted run() is driving the loop: under ``max_events`` the
        # caller observes (and resumes from) every individual firing, so
        # inline advancement would change where the budget lands.
        if max_events is None and self.batch_limit != 1:
            self._advance_bound = _INF if until is None else until
        # Local-variable hot loop: one pass per event, no peek_time/step
        # double scan of the heap head and no per-event method dispatch.
        heap = self._heap
        pool = self._handle_pool
        pop = heapq.heappop
        fired = 0
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    return
                while heap and heap[0][2].cancelled:
                    pop(heap)
                    self._cancelled_backlog -= 1
                if not heap:
                    break
                next_time = heap[0][0]
                if until is not None and next_time > until:
                    break
                _time, _seq, event = pop(heap)
                self._now = next_time
                self._events_processed += 1
                self._live -= 1
                event.callback(*event.args)
                if event.pooled:
                    event.callback = _noop
                    event.args = ()
                    pool.append(event)
                else:
                    event.owner = None
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self._advance_bound = None
