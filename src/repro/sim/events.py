"""Event handles for the simulator's pending-event heap."""

from __future__ import annotations

from typing import Any, Callable


class EventHandle:
    """A scheduled callback, orderable by (time, insertion sequence).

    Cancellation is lazy: :meth:`cancel` marks the handle and the simulator
    discards it when it reaches the top of the heap.  This keeps ``cancel``
    O(1), which matters because retransmission timers are rescheduled on
    every ACK.

    Handles issued by the fire-and-forget ``Simulator.call_after`` /
    ``call_at`` paths are **pooled**: after the event fires, the handle
    goes back on the simulator's free list and is reissued for a later
    event.  ``generation`` increments each time a pooled handle is
    reissued, so any stale reference (a handle held across its own
    firing) is detectable by comparing generations — resurrecting a
    consumed handle is a bug the pool's property tests pin down.
    """

    __slots__ = (
        "time",
        "seq",
        "callback",
        "args",
        "cancelled",
        "generation",
        "pooled",
        "owner",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        owner: Any = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Reissue count for pooled handles (0 for a fresh allocation).
        self.generation = 0
        #: True when the handle belongs to the simulator's free-list pool
        #: (fire-and-forget events); pooled handles cannot be cancelled.
        self.pooled = False
        #: The owning simulator, notified on cancel so its live-event
        #: counter stays exact.
        self.owner = owner

    def cancel(self) -> None:
        """Mark the event as cancelled; it will never fire."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references early so cancelled timers don't pin objects alive
        # while they sink through the heap.
        self.callback = _noop
        self.args = ()
        owner = self.owner
        if owner is not None:
            owner._note_cancelled()

    @property
    def active(self) -> bool:
        """True if the event has not been cancelled (it may have fired)."""
        return not self.cancelled

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Placeholder callback installed on cancelled events."""
