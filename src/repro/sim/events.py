"""Event handles for the simulator's pending-event heap."""

from __future__ import annotations

from typing import Any, Callable


class EventHandle:
    """A scheduled callback, orderable by (time, insertion sequence).

    Cancellation is lazy: :meth:`cancel` marks the handle and the simulator
    discards it when it reaches the top of the heap.  This keeps ``cancel``
    O(1), which matters because retransmission timers are rescheduled on
    every ACK.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will never fire."""
        self.cancelled = True
        # Drop references early so cancelled timers don't pin objects alive
        # while they sink through the heap.
        self.callback = _noop
        self.args = ()

    @property
    def active(self) -> bool:
        """True if the event has not been cancelled (it may have fired)."""
        return not self.cancelled

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Placeholder callback installed on cancelled events."""
