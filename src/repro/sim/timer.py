"""Soft-reschedule timers: deadline updates without heap traffic.

Retransmission machinery reschedules its timers on *every* ACK — under
the old engine each reschedule was a cancel (leaving a dead tuple to
sink through the heap) plus a fresh O(log H) push.  A :class:`Timer`
instead keeps the deadline in plain attributes: rescheduling **later**
just overwrites a float and an int, and the already-armed wake re-arms
itself lazily when it fires early.  Heap traffic drops from one push per
ACK to one push per fire epoch (plus one per earlier-deadline move), and
the cancelled-tuple bloat disappears entirely.

Byte-identity with the cancel+push engine is exact, not statistical:
every reschedule *reserves* a global insertion seq — the very seq the
old engine would have consumed by scheduling — and the callback always
executes at heap position ``(deadline, deadline_seq)``.  A wake that
surfaces early or superseded either re-arms at that exact position or is
discarded, so even same-instant ties (common: RTO/TLP deadlines clamp to
constants like ``0.9 * MIN_RTO``) fire in the old engine's order.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.simulator import SimulationError, Simulator

_INF = float("inf")


class Timer:
    """A cancellable, reschedulable one-shot timer.

    State machine:

    * ``schedule_at(t)`` / ``schedule_after(d)`` reserve a seq and set
      ``(deadline, deadline_seq)``.  A heap wake is pushed only when none
      is outstanding or the new deadline precedes the outstanding wake;
      otherwise the wake is left in place and re-armed lazily when it
      fires — the per-ACK fast path, zero heap ops.
    * ``cancel()`` clears the deadline.  The outstanding wake (if any)
      stays in the heap and is discarded when it surfaces — O(1), no
      heap traffic, no cancelled-tuple accounting.
    * A surfacing wake acts only if it is the *armed* one (seq match);
      it then fires the callback iff it sits exactly at
      ``(deadline, deadline_seq)``, else re-arms there.  The timer
      deactivates itself before invoking the callback, so the callback
      may immediately reschedule (re-arming from an RTO handler).
    """

    __slots__ = (
        "_sim",
        "_callback",
        "_deadline",
        "_deadline_seq",
        "_armed_time",
        "_armed_seq",
    )

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._deadline: float | None = None
        self._deadline_seq = -1
        self._armed_time: float | None = None
        self._armed_seq = -1

    @property
    def active(self) -> bool:
        """True while the timer has a pending deadline."""
        return self._deadline is not None

    @property
    def deadline(self) -> float | None:
        """Absolute fire time, or ``None`` when inactive."""
        return self._deadline

    def schedule_after(self, delay: float) -> None:
        """(Re)schedule the timer ``delay`` seconds from now."""
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"invalid timer delay {delay!r}: must be finite and non-negative"
            )
        self._set_deadline(self._sim._now + delay)

    def schedule_at(self, time: float) -> None:
        """(Re)schedule the timer at absolute simulation ``time``."""
        if not self._sim._now <= time < _INF:
            raise SimulationError(
                f"cannot schedule timer at t={time!r}, now is t={self._sim._now!r} "
                "(time must be finite and not in the past)"
            )
        self._set_deadline(time)

    def _set_deadline(self, time: float) -> None:
        sim = self._sim
        # Reserve the seq the old cancel+push engine would have consumed
        # here — this pins tie-instant ordering bit-for-bit.
        seq = sim._seq
        sim._seq = seq + 1
        self._deadline = time
        self._deadline_seq = seq
        armed = self._armed_time
        if armed is None or time < armed:
            # No wake in flight, or the outstanding one fires too late to
            # notice an earlier deadline — push at the reserved position.
            self._armed_time = time
            self._armed_seq = seq
            sim.call_at_reserved(time, seq, self._fire, seq)
        # else: the outstanding wake fires at or before (time, seq) and
        # will re-arm lazily — the per-ACK fast path.

    def cancel(self) -> None:
        """Deactivate the timer; any in-flight wake is discarded on fire."""
        self._deadline = None

    def _fire(self, wake_seq: int) -> None:
        """Heap-wake entry point (called by the simulator)."""
        if wake_seq != self._armed_seq:
            return  # superseded by an earlier-deadline push
        self._armed_time = None
        self._armed_seq = -1
        deadline = self._deadline
        if deadline is None:
            return  # cancelled while the wake was in flight
        deadline_seq = self._deadline_seq
        if deadline_seq != wake_seq:
            # Soft-rescheduled since this wake was pushed: re-arm at the
            # exact (time, seq) that reschedule reserved, so the callback
            # fires precisely where the old engine would have fired it.
            self._armed_time = deadline
            self._armed_seq = deadline_seq
            self._sim.call_at_reserved(
                deadline, deadline_seq, self._fire, deadline_seq
            )
            return
        self._deadline = None
        self._callback()
