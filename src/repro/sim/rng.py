"""Seeded random-number streams.

Every source of randomness in a run derives from one root seed through a
named stream, so changing one component's draw pattern never perturbs the
others and runs are reproducible across processes (no ``hash()`` of strings,
which is salted per-process).
"""

from __future__ import annotations

import hashlib
import random


class RngFactory:
    """Derives independent ``random.Random`` streams from a root seed.

    >>> rngs = RngFactory(seed=7)
    >>> a = rngs.stream("flows", 3)
    >>> b = rngs.stream("flows", 3)
    >>> a.random() == b.random()
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory derives streams from."""
        return self._seed

    def stream(self, *names: object) -> random.Random:
        """Return a fresh RNG for the stream identified by ``names``."""
        label = ":".join(str(n) for n in names)
        digest = hashlib.sha256(f"{self._seed}|{label}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def derive(self, *names: object) -> "RngFactory":
        """Return a child factory whose streams are namespaced by ``names``."""
        label = ":".join(str(n) for n in names)
        digest = hashlib.sha256(f"{self._seed}|sub|{label}".encode()).digest()
        return RngFactory(int.from_bytes(digest[:8], "big"))
