"""Packet traces: lightweight observation points for experiments and tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.net.packet import FlowId, Packet
from repro.net.sink import PacketSink
from repro.sim.simulator import Simulator


@dataclass(frozen=True, slots=True)
class PacketRecord:
    """One observed packet: arrival time, flow, size and data/ack flag."""

    time: float
    flow: FlowId
    size: int
    is_data: bool
    seq: int


class Trace:
    """Records packets flowing through a point and forwards them downstream.

    The record list is the raw material for windowed throughput series,
    fairness indices and burst measurements (see :mod:`repro.metrics`).
    Pass ``data_only=True`` to ignore ACKs (the usual case for throughput
    measured at the receiver).
    """

    def __init__(
        self,
        sim: Simulator,
        sink: PacketSink | None = None,
        *,
        data_only: bool = True,
        name: str = "trace",
    ) -> None:
        self._sim = sim
        self._sink = sink
        self._data_only = data_only
        self.name = name
        self.records: list[PacketRecord] = []

    def receive(self, packet: Packet) -> None:
        if packet.is_data or not self._data_only:
            self.records.append(
                PacketRecord(
                    time=self._sim.now,
                    flow=packet.flow,
                    size=packet.size,
                    is_data=packet.is_data,
                    seq=packet.seq,
                )
            )
        if self._sink is not None:
            self._sink.receive(packet)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self.records)

    @property
    def total_bytes(self) -> int:
        """Sum of recorded packet sizes."""
        return sum(r.size for r in self.records)

    def flows(self) -> set[FlowId]:
        """Distinct flows observed."""
        return {r.flow for r in self.records}
