"""Packet traces: lightweight observation points for experiments and tests.

The trace stores its observations as parallel columns (one plain list per
field) instead of one :class:`PacketRecord` object per packet.  A multi-
minute aggregate run records hundreds of thousands of packets; columns cut
both the per-packet allocation on the simulator's hot path and the memory
footprint, and let the metrics layer (:mod:`repro.metrics.throughput`) bin
bytes by indexing columns directly without materializing records.
:attr:`Trace.records` remains available as a compatibility view that
builds :class:`PacketRecord` objects on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, overload

from repro.net.packet import FlowId, Packet, PacketKind
from repro.net.sink import PacketSink, batch_capable
from repro.sim.simulator import Simulator


@dataclass(frozen=True, slots=True)
class PacketRecord:
    """One observed packet: arrival time, flow, size and data/ack flag."""

    time: float
    flow: FlowId
    size: int
    is_data: bool
    seq: int


class TraceRecords:
    """Sequence view over a :class:`Trace`'s columns.

    Indexing and iteration materialize :class:`PacketRecord` objects on
    demand, so code written against the record-list API keeps working; the
    underlying columns stay exposed (``times``/``flow_ids``/``sizes``) for
    the metrics fast path.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "Trace") -> None:
        self._trace = trace

    @property
    def times(self) -> list[float]:
        """Arrival-time column (same object as ``trace.times``)."""
        return self._trace.times

    @property
    def flow_ids(self) -> list[FlowId]:
        """Flow-identity column."""
        return self._trace.flow_ids

    @property
    def sizes(self) -> list[int]:
        """Wire-size column."""
        return self._trace.sizes

    def __len__(self) -> int:
        return len(self._trace.times)

    @overload
    def __getitem__(self, index: int) -> PacketRecord: ...

    @overload
    def __getitem__(self, index: slice) -> list[PacketRecord]: ...

    def __getitem__(self, index):
        t = self._trace
        if isinstance(index, slice):
            rng = range(*index.indices(len(t.times)))
            return [self._make(t, i) for i in rng]
        return self._make(t, index)

    @staticmethod
    def _make(t: "Trace", i: int) -> PacketRecord:
        return PacketRecord(
            time=t.times[i],
            flow=t.flow_ids[i],
            size=t.sizes[i],
            is_data=t.data_flags[i],
            seq=t.seqs[i],
        )

    def __iter__(self) -> Iterator[PacketRecord]:
        t = self._trace
        for time, flow, size, is_data, seq in zip(
            t.times, t.flow_ids, t.sizes, t.data_flags, t.seqs
        ):
            yield PacketRecord(
                time=time, flow=flow, size=size, is_data=is_data, seq=seq
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecords({len(self)} records of {self._trace.name!r})"


class Trace:
    """Records packets flowing through a point and forwards them downstream.

    The recorded columns are the raw material for windowed throughput
    series, fairness indices and burst measurements (see
    :mod:`repro.metrics`).  Pass ``data_only=True`` to ignore ACKs (the
    usual case for throughput measured at the receiver).
    """

    def __init__(
        self,
        sim: Simulator,
        sink: PacketSink | None = None,
        *,
        data_only: bool = True,
        name: str = "trace",
    ) -> None:
        self._sim = sim
        self._sink = sink
        self._data_only = data_only
        self.name = name
        self.times: list[float] = []
        self.flow_ids: list[FlowId] = []
        self.sizes: list[int] = []
        self.data_flags: list[bool] = []
        self.seqs: list[int] = []
        self._total_bytes = 0
        # Pre-bound appends keep receive() to plain calls on the hot path.
        self._append_time = self.times.append
        self._append_flow = self.flow_ids.append
        self._append_size = self.sizes.append
        self._append_data = self.data_flags.append
        self._append_seq = self.seqs.append
        self._batch_sink = None if sink is None else batch_capable(sink)

    def receive(self, packet: Packet) -> None:
        # Corrupted packets consume capacity upstream but fail their
        # checksum at the endpoint, so they never count toward goodput.
        if (packet.is_data or not self._data_only) and not packet.corrupt:
            size = packet.size
            self._append_time(self._sim.now)
            self._append_flow(packet.flow)
            self._append_size(size)
            self._append_data(packet.is_data)
            self._append_seq(packet.seq)
            self._total_bytes += size
        if self._sink is not None:
            self._sink.receive(packet)

    def receive_batch(self, packets: list[Packet]) -> None:
        """Record a same-instant batch with one timestamp read and hoisted
        column appends, then forward the whole batch downstream."""
        now = self._sim._now
        data_only = self._data_only
        append_time = self._append_time
        append_flow = self._append_flow
        append_size = self._append_size
        append_data = self._append_data
        append_seq = self._append_seq
        total = 0
        for packet in packets:
            is_data = packet.kind is PacketKind.DATA
            if (is_data or not data_only) and not packet.corrupt:
                size = packet.size
                append_time(now)
                append_flow(packet.flow)
                append_size(size)
                append_data(is_data)
                append_seq(packet.seq)
                total += size
        self._total_bytes += total
        if self._batch_sink is not None:
            self._batch_sink.receive_batch(packets)

    @property
    def records(self) -> TraceRecords:
        """Compatibility record view (lazy :class:`PacketRecord` objects)."""
        return TraceRecords(self)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self.records)

    @property
    def total_bytes(self) -> int:
        """Sum of recorded packet sizes (maintained incrementally)."""
        return self._total_bytes

    def flows(self) -> set[FlowId]:
        """Distinct flows observed."""
        return set(self.flow_ids)
