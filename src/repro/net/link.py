"""A serializing link with propagation delay and a drop-tail buffer."""

from __future__ import annotations

from collections import deque

from repro.net.fastpath import drain_coalesced
from repro.net.packet import Packet
from repro.net.sink import PacketSink, batch_capable
from repro.sim.simulator import SimulationError, Simulator


class Link:
    """A point-to-point link.

    Packets are serialized one at a time at ``rate`` bytes/second, then
    delivered to ``sink`` after ``delay`` seconds of propagation.  While the
    transmitter is busy, arrivals wait in a drop-tail buffer of
    ``buffer_bytes`` (``None`` = unbounded, the default, used for fast
    "infrastructure" hops that should never be the bottleneck).

    This is the element used to model secondary bottlenecks (e.g. the 8.5
    Mbps RAN hop in Figure 3).
    """

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        delay: float,
        sink: PacketSink,
        *,
        buffer_bytes: float | None = None,
        name: str = "link",
    ) -> None:
        if rate <= 0:
            raise ValueError(f"link rate must be positive, got {rate!r}")
        if delay < 0:
            raise ValueError(f"link delay must be non-negative, got {delay!r}")
        self._sim = sim
        self._rate = rate
        self._delay = delay
        self._sink = sink
        self._buffer_limit = buffer_bytes
        self.name = name

        self._queue: deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False
        # Coalesced propagation FIFO (same scheme as Pipe: constant delay
        # + in-order exit means N in-flight packets need only 1 heap
        # entry, with per-packet reserved seqs pinning the old engine's
        # exact firing order).
        self._prop: deque[tuple[float, int, Packet]] = deque()
        self._prop_armed = False
        self._batch_sink = batch_capable(sink)
        self._scratch: list[Packet] = []
        self._deliver_entry = (
            self._deliver if sim.batch_limit == 1 else self.deliver_batch
        )

        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0

    @property
    def rate(self) -> float:
        """Serialization rate in bytes/second."""
        return self._rate

    @property
    def delay(self) -> float:
        """One-way propagation delay in seconds."""
        return self._delay

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently waiting (not counting the packet in service)."""
        return self._queued_bytes

    def receive_batch(self, packets: list[Packet]) -> None:
        """Accept a same-instant batch.

        Serialization start (``call_after``) consumes a seq per packet,
        so the enqueue side must run strictly per-packet to preserve the
        unbatched engine's seq assignment — the batching win for a link
        is on the *delivery* side (:meth:`deliver_batch`).
        """
        receive = self.receive
        for packet in packets:
            receive(packet)

    def receive(self, packet: Packet) -> None:
        """Accept a packet: transmit now, queue, or drop."""
        if not self._busy:
            self._transmit(packet)
            return
        if (
            self._buffer_limit is not None
            and self._queued_bytes + packet.size > self._buffer_limit
        ):
            self.dropped_packets += 1
            self.dropped_bytes += packet.size
            # Drop-tail is a terminal consumer: the sender keeps only
            # scalar bookkeeping, never the packet object.
            Packet.recycle(packet)
            return
        self._queue.append(packet)
        self._queued_bytes += packet.size

    def _transmit(self, packet: Packet) -> None:
        self._busy = True
        tx_time = packet.size / self._rate
        # Serialization completions are strictly sequential and never
        # cancelled, so they ride the pooled fire-and-forget path.
        self._sim.call_after(tx_time, self._on_tx_done, packet)

    def _on_tx_done(self, packet: Packet) -> None:
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        # Propagation: the packet pops out of the far end after `delay`.
        if self._delay > 0:
            sim = self._sim
            time = sim.now + self._delay
            prop = self._prop
            if prop and time < prop[-1][0]:
                raise SimulationError(
                    f"link {self.name!r}: non-monotone delivery time "
                    f"{time!r} after {prop[-1][0]!r} — the coalesced "
                    "FIFO assumes serialization order == delivery order"
                )
            seq = sim.reserve_seq()
            prop.append((time, seq, packet))
            if not self._prop_armed:
                self._prop_armed = True
                sim.call_at_reserved(time, seq, self._deliver_entry)
        else:
            self._sink.receive(packet)
        if self._queue:
            nxt = self._queue.popleft()
            self._queued_bytes -= nxt.size
            self._transmit(nxt)
        else:
            self._busy = False

    def _deliver(self) -> None:
        prop = self._prop
        sim = self._sim
        now = sim.now
        receive = self._sink.receive
        heap = sim._heap
        while True:
            receive(prop.popleft()[2])
            if not prop:
                self._prop_armed = False
                return
            time, seq, _packet = prop[0]
            if time <= now and (
                not heap
                or heap[0][0] > time
                or (heap[0][0] == time and heap[0][1] > seq)
            ):
                continue
            sim.call_at_reserved(time, seq, self._deliver)
            return

    def deliver_batch(self) -> None:
        """Batched drain of the propagation FIFO (see
        :func:`repro.net.fastpath.drain_coalesced`)."""
        if drain_coalesced(
            self._sim, self._prop, self._batch_sink, self.deliver_batch,
            self._scratch,
        ):
            self._prop_armed = False
