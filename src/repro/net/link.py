"""A serializing link with propagation delay and a drop-tail buffer."""

from __future__ import annotations

from collections import deque

from repro.net.packet import Packet
from repro.net.sink import PacketSink
from repro.sim.simulator import Simulator


class Link:
    """A point-to-point link.

    Packets are serialized one at a time at ``rate`` bytes/second, then
    delivered to ``sink`` after ``delay`` seconds of propagation.  While the
    transmitter is busy, arrivals wait in a drop-tail buffer of
    ``buffer_bytes`` (``None`` = unbounded, the default, used for fast
    "infrastructure" hops that should never be the bottleneck).

    This is the element used to model secondary bottlenecks (e.g. the 8.5
    Mbps RAN hop in Figure 3).
    """

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        delay: float,
        sink: PacketSink,
        *,
        buffer_bytes: float | None = None,
        name: str = "link",
    ) -> None:
        if rate <= 0:
            raise ValueError(f"link rate must be positive, got {rate!r}")
        if delay < 0:
            raise ValueError(f"link delay must be non-negative, got {delay!r}")
        self._sim = sim
        self._rate = rate
        self._delay = delay
        self._sink = sink
        self._buffer_limit = buffer_bytes
        self.name = name

        self._queue: deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False

        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0

    @property
    def rate(self) -> float:
        """Serialization rate in bytes/second."""
        return self._rate

    @property
    def delay(self) -> float:
        """One-way propagation delay in seconds."""
        return self._delay

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently waiting (not counting the packet in service)."""
        return self._queued_bytes

    def receive(self, packet: Packet) -> None:
        """Accept a packet: transmit now, queue, or drop."""
        if not self._busy:
            self._transmit(packet)
            return
        if (
            self._buffer_limit is not None
            and self._queued_bytes + packet.size > self._buffer_limit
        ):
            self.dropped_packets += 1
            self.dropped_bytes += packet.size
            return
        self._queue.append(packet)
        self._queued_bytes += packet.size

    def _transmit(self, packet: Packet) -> None:
        self._busy = True
        tx_time = packet.size / self._rate
        self._sim.schedule(tx_time, self._on_tx_done, packet)

    def _on_tx_done(self, packet: Packet) -> None:
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        # Propagation: the packet pops out of the far end after `delay`.
        if self._delay > 0:
            self._sim.schedule(self._delay, self._sink.receive, packet)
        else:
            self._sink.receive(packet)
        if self._queue:
            nxt = self._queue.popleft()
            self._queued_bytes -= nxt.size
            self._transmit(nxt)
        else:
            self._busy = False
