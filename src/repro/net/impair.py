"""Impairment channels: lossy, bursty, jittery and trace-driven links.

Every element in the reproduction's clean topology is a serializing
FIFO, so loss recovery (SACK/RACK/TLP/RTO), the batched fast path and
the packet pools had never been exercised under hostile conditions.
This module provides composable, ``Pipe``-compatible impairment
wrappers:

* :class:`LossGate` — i.i.d. random loss.
* :class:`GilbertElliottGate` — two-state bursty loss (good/bad Markov
  chain with per-state loss probabilities).
* :class:`Duplicator` — forwards a *clone* alongside the original with
  some probability (never the same object twice: downstream terminal
  consumers recycle what they absorb, so a shared object would be
  returned to the free list while still in flight).
* :class:`Corrupter` — marks packets ``corrupt``; a corrupted DATA
  packet is dropped by the receiver (no ACK), a corrupted ACK by the
  sender.
* :class:`JitterPipe` — a delay element whose per-packet delay is drawn
  at arrival (uniform jitter plus an exponential extra-delay tail for
  reordering).  Variable delay breaks the coalesced ``Pipe``'s
  arrival-order == delivery-order assumption, so delivery here is
  backed by an internal heap with correct per-arrival sequence
  reservation (see the class docstring).
* :class:`TraceLink` — a Mahimahi-style variable-rate bottleneck whose
  service rate follows a looping :class:`CapacityTrace`.

Determinism: every random decision draws from a caller-supplied
``random.Random`` seeded from the simulator's root seed (per flow, in
the scenario layer), and draws happen per packet in arrival order —
which the engine guarantees is identical across batch granularities and
shard counts — so impaired runs are byte-identical across every engine.
With all impairments disabled no wrapper is constructed and no draw is
made, so clean runs stay byte-identical to the unimpaired code.

Dropped packets are recycled at the gate (the gate is the terminal
consumer of a dropped packet); the ``_in_pool`` latch makes a double
recycle a no-op and the :class:`JitterPipe` generation guard turns a
recycle-while-in-flight into a :class:`~repro.sim.simulator.SimulationError`
instead of silent pool corruption.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from random import Random

from repro.net.link import Link
from repro.net.packet import Packet, PacketKind
from repro.net.pipe import Pipe
from repro.net.sink import PacketSink
from repro.sim.simulator import SimulationError, Simulator
from repro.units import MSS, mbps

__all__ = [
    "CapacityTrace",
    "Corrupter",
    "Duplicator",
    "GilbertElliottGate",
    "ImpairmentSpec",
    "JitterPipe",
    "LossGate",
    "TraceLink",
    "build_ack_path",
    "build_data_path",
]

#: Floor applied to trace-file rates so an outage interval serializes in
#: finite (if very long) time instead of dividing by zero.
_MIN_TRACE_RATE = float(MSS)


@dataclass(frozen=True)
class ImpairmentSpec:
    """Declarative impairment configuration, JSON-friendly primitives.

    Frozen and hashable so it can ride on
    :class:`~repro.runner.aggregate.AggregateConfig` (cache token,
    pickling) and round-trip through the fuzzer's ``--case`` JSON.
    All fields default to "disabled"; :attr:`enabled` is False for the
    default instance, in which case the wiring layer constructs no
    wrapper objects at all.
    """

    #: i.i.d. loss probability on the data path.
    loss: float = 0.0
    #: Gilbert-Elliott bursty loss: ``(p_gb, p_bg, loss_good, loss_bad)``
    #: — transition probabilities good->bad / bad->good and the per-state
    #: loss probabilities.  ``None`` disables the gate.
    ge: tuple[float, float, float, float] | None = None
    #: i.i.d. loss probability on the ACK return path.
    ack_loss: float = 0.0
    #: Uniform extra delay in ``[0, jitter)`` seconds per data packet.
    jitter: float = 0.0
    #: Probability a data packet draws an extra-delay tail (reordering).
    reorder: float = 0.0
    #: Mean of the exponential extra-delay tail, seconds (required > 0
    #: when ``reorder`` > 0).
    reorder_extra: float = 0.0
    #: Probability a data packet is duplicated (a clone follows it).
    duplicate: float = 0.0
    #: Probability a data packet is corrupted (dropped at the receiver).
    corrupt: float = 0.0
    #: Variable-rate bottleneck: ``(duration_s, rate_bytes_per_s)``
    #: segments, looping (see :class:`CapacityTrace`).  ``None`` disables
    #: the :class:`TraceLink`.
    trace_rates: tuple[tuple[float, float], ...] | None = None
    #: Drop-tail buffer of the trace link (``None`` = unbounded).
    trace_buffer: float | None = None
    #: Propagation delay of the trace link, seconds.
    trace_delay: float = 0.0

    def __post_init__(self) -> None:
        # JSON round-trips tuples as lists; normalize back so the spec
        # stays hashable and `--case` lines reproduce exactly.
        if self.ge is not None and not isinstance(self.ge, tuple):
            object.__setattr__(self, "ge", tuple(self.ge))
        if self.trace_rates is not None:
            object.__setattr__(
                self,
                "trace_rates",
                tuple(tuple(seg) for seg in self.trace_rates),
            )
        for name in ("loss", "ack_loss", "reorder", "duplicate", "corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value!r}")
        if self.jitter < 0.0 or self.reorder_extra < 0.0:
            raise ValueError("jitter and reorder_extra must be non-negative")
        if self.reorder > 0.0 and self.reorder_extra <= 0.0:
            raise ValueError("reorder needs a positive reorder_extra")
        if self.ge is not None:
            p_gb, p_bg, loss_g, loss_b = self.ge
            for name, value in (
                ("p_gb", p_gb), ("p_bg", p_bg),
                ("loss_good", loss_g), ("loss_bad", loss_b),
            ):
                if not 0.0 <= value <= 1.0:
                    raise ValueError(
                        f"ge {name} must be a probability, got {value!r}"
                    )
        if self.trace_rates is not None:
            if not self.trace_rates:
                raise ValueError("trace_rates must have at least one segment")
            for duration, rate in self.trace_rates:
                if duration <= 0.0 or rate <= 0.0:
                    raise ValueError(
                        "trace segments need positive duration and rate, "
                        f"got ({duration!r}, {rate!r})"
                    )
        if self.trace_delay < 0.0:
            raise ValueError("trace_delay must be non-negative")

    @property
    def data_path_enabled(self) -> bool:
        """Any per-flow data-direction impairment active."""
        return (
            self.loss > 0.0
            or self.ge is not None
            or self.jitter > 0.0
            or self.reorder > 0.0
            or self.duplicate > 0.0
            or self.corrupt > 0.0
        )

    @property
    def ack_path_enabled(self) -> bool:
        """Any ACK-direction impairment active (corruption applies to
        both directions: a corrupted ACK is dropped by the sender)."""
        return self.ack_loss > 0.0 or self.corrupt > 0.0

    @property
    def flow_enabled(self) -> bool:
        """Any per-flow impairment active (either direction)."""
        return self.data_path_enabled or self.ack_path_enabled

    @property
    def trace_enabled(self) -> bool:
        """Variable-rate trace-driven bottleneck active."""
        return self.trace_rates is not None

    @property
    def enabled(self) -> bool:
        """Any impairment at all active."""
        return self.flow_enabled or self.trace_enabled


def _clone(packet: Packet) -> Packet:
    """A fresh packet carrying the same wire-visible content.

    Never forwards the original object twice: the receiver/sender are
    terminal consumers that recycle what they absorb, so a shared object
    would be returned to the free list while its twin is still in
    flight.  Clones draw through the pooled constructors (fresh uid,
    bumped generation) like any other packet.
    """
    if packet.kind is PacketKind.DATA:
        twin = Packet.data(
            packet.flow,
            packet.seq,
            packet.sent_at,
            size=packet.size,
            retransmit=packet.retransmit,
            ecn_capable=packet.ecn_capable,
        )
        twin.ce = packet.ce
    else:
        twin = Packet.ack(
            packet.flow,
            packet.ack_next,
            packet.sent_at,
            echo_ts=packet.echo_ts,
            echo_retransmit=packet.echo_retransmit,
            sack=packet.sack,
            ecn_echo=packet.ecn_echo,
        )
        twin.ce = packet.ce
    twin.corrupt = packet.corrupt
    return twin


class _Gate:
    """Shared shape of the per-packet impairment gates.

    Gates forward strictly per packet (``receive_batch`` loops) so the
    per-packet RNG draw order — and therefore every downstream seq
    reservation — is identical across batch granularities.
    """

    __slots__ = ("_sink", "_rng", "forwarded_packets", "dropped_packets",
                 "dropped_bytes")

    def __init__(self, sink: PacketSink, rng: Random) -> None:
        self._sink = sink
        self._rng = rng
        self.forwarded_packets = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0

    def receive(self, packet: Packet) -> None:  # pragma: no cover
        raise NotImplementedError

    def receive_batch(self, packets: list[Packet]) -> None:
        receive = self.receive
        for packet in packets:
            receive(packet)

    def _drop(self, packet: Packet) -> None:
        """Absorb a dropped packet: count it and return it to its pool
        (the gate is the terminal consumer of what it drops)."""
        self.dropped_packets += 1
        self.dropped_bytes += packet.size
        Packet.recycle(packet)


class LossGate(_Gate):
    """Drops each packet independently with probability ``prob``."""

    __slots__ = ("_prob",)

    def __init__(self, prob: float, sink: PacketSink, rng: Random) -> None:
        super().__init__(sink, rng)
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"loss probability out of range: {prob!r}")
        self._prob = prob

    def receive(self, packet: Packet) -> None:
        if self._rng.random() < self._prob:
            self._drop(packet)
            return
        self.forwarded_packets += 1
        self._sink.receive(packet)


class GilbertElliottGate(_Gate):
    """Two-state bursty loss (Gilbert-Elliott).

    The chain starts in the good state; each packet first advances the
    state (one draw), then tests the current state's loss probability
    (one draw) — always exactly two draws per packet, so the stream
    position is a pure function of the arrival count.

    Stationary loss rate: ``pi_B = p_gb / (p_gb + p_bg)`` and
    ``loss = (1 - pi_B) * loss_good + pi_B * loss_bad`` (pinned by a
    property test in ``tests/test_impair.py``).
    """

    __slots__ = ("_p_gb", "_p_bg", "_loss_good", "_loss_bad", "bad")

    def __init__(
        self,
        p_gb: float,
        p_bg: float,
        loss_good: float,
        loss_bad: float,
        sink: PacketSink,
        rng: Random,
    ) -> None:
        super().__init__(sink, rng)
        for name, value in (
            ("p_gb", p_gb), ("p_bg", p_bg),
            ("loss_good", loss_good), ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value!r}")
        self._p_gb = p_gb
        self._p_bg = p_bg
        self._loss_good = loss_good
        self._loss_bad = loss_bad
        self.bad = False

    @staticmethod
    def stationary_loss(
        p_gb: float, p_bg: float, loss_good: float, loss_bad: float
    ) -> float:
        """Long-run loss rate of the chain (good-state start forgotten)."""
        if p_gb + p_bg == 0.0:
            return loss_good  # chain never leaves the good state
        pi_bad = p_gb / (p_gb + p_bg)
        return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad

    def receive(self, packet: Packet) -> None:
        rng = self._rng
        transition = rng.random()
        if self.bad:
            if transition < self._p_bg:
                self.bad = False
        elif transition < self._p_gb:
            self.bad = True
        prob = self._loss_bad if self.bad else self._loss_good
        if rng.random() < prob:
            self._drop(packet)
            return
        self.forwarded_packets += 1
        self._sink.receive(packet)


class Duplicator(_Gate):
    """Forwards every packet; with probability ``prob`` a clone follows.

    The clone is a *fresh* packet (see :func:`_clone`) so terminal
    consumers can recycle both copies independently.
    """

    __slots__ = ("_prob", "duplicated_packets")

    def __init__(self, prob: float, sink: PacketSink, rng: Random) -> None:
        super().__init__(sink, rng)
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"duplicate probability out of range: {prob!r}")
        self._prob = prob
        self.duplicated_packets = 0

    def receive(self, packet: Packet) -> None:
        dup = self._rng.random() < self._prob
        self.forwarded_packets += 1
        self._sink.receive(packet)
        if dup:
            self.duplicated_packets += 1
            self._sink.receive(_clone(packet))


class Corrupter(_Gate):
    """Marks packets ``corrupt`` with probability ``prob``.

    Corruption is detected (checksum) at the endpoint: a corrupted DATA
    packet is dropped by the receiver without an ACK, a corrupted ACK is
    dropped by the sender — both still recycle the packet, and the
    receiver trace skips corrupted packets so goodput excludes them.
    """

    __slots__ = ("_prob", "corrupted_packets")

    def __init__(self, prob: float, sink: PacketSink, rng: Random) -> None:
        super().__init__(sink, rng)
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"corrupt probability out of range: {prob!r}")
        self._prob = prob
        self.corrupted_packets = 0

    def receive(self, packet: Packet) -> None:
        if self._rng.random() < self._prob:
            self.corrupted_packets += 1
            packet.corrupt = True
        self.forwarded_packets += 1
        self._sink.receive(packet)


class JitterPipe:
    """A delay element with per-packet random delay, heap-backed.

    The coalesced :class:`~repro.net.pipe.Pipe` assumes constant delay
    (arrival order == delivery order) and keeps one FIFO plus at most one
    armed simulator event.  With jittered delays, packet ``B`` arriving
    after ``A`` may leave first, so the pending set lives in an internal
    heap keyed by ``(deliver_time, reserved_seq)``.

    Sequence reservation works exactly like the coalesced pipe's: every
    arrival claims the global insertion seq that a one-event-per-packet
    engine would have consumed by scheduling its delivery, and each
    delivery executes at heap position ``(time, seq)`` — so the global
    firing order is bit-for-bit what per-packet scheduling would produce,
    in every engine.

    Arming follows the :class:`~repro.sim.timer.Timer` pattern: at most
    one wake is *adopted* at a time (``_armed_seq``); a wake that
    surfaces after being superseded by an earlier arrival discards
    itself by seq mismatch.  One extra wrinkle a timer doesn't have: a
    superseded wake's ``(time, seq)`` can become the head again after
    earlier packets drain, and pushing a second event at the same
    ``(time, seq)`` would create an ordering tie the heap cannot break —
    so in-flight wake seqs are tracked in ``_outstanding`` and re-arming
    at one of them simply re-adopts the wake already in the heap.

    Deliveries are strictly per packet (the reference granularity for a
    reordering element); downstream components accept singles in every
    engine.  Each heap entry snapshots the packet's pool ``generation``
    at arrival and delivery re-checks it, so a packet recycled while in
    flight (a pool-lifecycle bug upstream) raises
    :class:`~repro.sim.simulator.SimulationError` instead of delivering
    a resurrected object.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        sink: PacketSink,
        *,
        jitter: float = 0.0,
        reorder: float = 0.0,
        reorder_extra: float = 0.0,
        rng: Random,
        name: str = "jitter-pipe",
    ) -> None:
        if delay < 0.0:
            raise ValueError(f"base delay must be non-negative, got {delay!r}")
        if jitter < 0.0:
            raise ValueError(f"jitter must be non-negative, got {jitter!r}")
        if not 0.0 <= reorder <= 1.0:
            raise ValueError(f"reorder probability out of range: {reorder!r}")
        if reorder > 0.0 and reorder_extra <= 0.0:
            raise ValueError("reorder needs a positive reorder_extra")
        self._sim = sim
        self._base = delay
        self._jitter = jitter
        self._reorder = reorder
        self._reorder_extra = reorder_extra
        self._rng = rng
        self._sink = sink
        self.name = name
        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        self.reordered_packets = 0
        #: Pending deliveries: (deliver_time, reserved_seq, generation,
        #: packet).  (time, seq) is globally unique, so the heap never
        #: compares the trailing fields.
        self._heap: list[tuple[float, int, int, Packet]] = []
        self._armed_time = 0.0
        self._armed_seq = -1
        #: Seqs with a wake still in the simulator heap (adopted or
        #: superseded) — re-arming at one of these re-adopts it instead
        #: of pushing a duplicate (time, seq) key.
        self._outstanding: set[int] = set()

    @property
    def delay(self) -> float:
        """Base one-way delay in seconds (before jitter draws)."""
        return self._base

    @property
    def in_flight(self) -> int:
        """Packets currently traversing the pipe."""
        return len(self._heap)

    def receive(self, packet: Packet) -> None:
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        rng = self._rng
        delay = self._base
        if self._jitter > 0.0:
            delay += rng.random() * self._jitter
        if self._reorder > 0.0 and rng.random() < self._reorder:
            self.reordered_packets += 1
            delay += rng.expovariate(1.0 / self._reorder_extra)
        sim = self._sim
        time = sim._now + delay
        seq = sim.reserve_seq()
        heapq.heappush(self._heap, (time, seq, packet.generation, packet))
        # A fresh arrival's seq exceeds every earlier reservation, so it
        # only preempts the adopted wake when strictly earlier in time.
        if self._armed_seq < 0 or time < self._armed_time:
            self._arm(time, seq)

    def receive_batch(self, packets: list[Packet]) -> None:
        """Per-packet entry for batched upstreams: each packet's delay
        draw and seq reservation happen in arrival order, exactly as the
        per-packet engine interleaves them."""
        receive = self.receive
        for packet in packets:
            receive(packet)

    def _arm(self, time: float, seq: int) -> None:
        self._armed_time = time
        self._armed_seq = seq
        if seq not in self._outstanding:
            self._outstanding.add(seq)
            self._sim.call_at_reserved(time, seq, self._fire, seq)

    def _fire(self, wake_seq: int) -> None:
        self._outstanding.discard(wake_seq)
        if wake_seq != self._armed_seq:
            return  # superseded by an earlier arrival's wake
        self._armed_seq = -1
        heap = self._heap
        sim = self._sim
        sim_heap = sim._heap
        receive = self._sink.receive
        while True:
            _time, _seq, generation, packet = heapq.heappop(heap)
            if packet.generation != generation or packet._in_pool:
                raise SimulationError(
                    f"{self.name}: packet uid={packet.uid} was recycled "
                    "while in flight (generation "
                    f"{generation} -> {packet.generation}, "
                    f"in_pool={packet._in_pool})"
                )
            receive(packet)
            if not heap:
                return
            head = heap[0]
            time = head[0]
            seq = head[1]
            # Same inline-continuation guard as the coalesced pipe: the
            # next pending delivery may run without a heap round-trip iff
            # it is exactly the event the heap would fire next.
            if time <= sim._now and (
                not sim_heap
                or sim_heap[0][0] > time
                or (sim_heap[0][0] == time and sim_heap[0][1] > seq)
            ):
                continue
            self._arm(time, seq)
            return


class CapacityTrace:
    """A looping piecewise-constant capacity schedule.

    ``segments`` are ``(duration_s, rate_bytes_per_s)`` pairs; the
    schedule repeats with period ``cycle``.  Used by :class:`TraceLink`
    to model Mahimahi-style cellular capacity traces.
    """

    __slots__ = ("segments", "cycle", "mean_rate")

    def __init__(self, segments) -> None:
        segs = tuple((float(d), float(r)) for d, r in segments)
        if not segs:
            raise ValueError("capacity trace needs at least one segment")
        for duration, rate in segs:
            if duration <= 0.0 or rate <= 0.0:
                raise ValueError(
                    "trace segments need positive duration and rate, "
                    f"got ({duration!r}, {rate!r})"
                )
        self.segments = segs
        self.cycle = sum(d for d, _ in segs)
        self.mean_rate = sum(d * r for d, r in segs) / self.cycle

    @classmethod
    def from_file(cls, path: str) -> "CapacityTrace":
        """Parse a capacity trace file.

        Two formats are recognised (``#`` comments and blank lines are
        skipped):

        * **Two-column**: ``duration_seconds rate_mbps`` per line, each
          line one segment.
        * **Mahimahi single-column**: one integer millisecond timestamp
          per line, each marking the delivery opportunity of one
          1500-byte MTU (the ``mm-link`` packed-trace format).  The
          timestamps are binned into 100 ms intervals and each bin
          becomes a segment at its implied rate, floored at one MTU/s so
          outage bins stay serializable.
        """
        two_col: list[tuple[float, float]] = []
        stamps: list[float] = []
        columns = 0
        with open(path) as handle:
            for line in handle:
                text = line.strip()
                if not text or text.startswith("#"):
                    continue
                fields = text.split()
                if columns == 0:
                    columns = min(len(fields), 2)
                if columns >= 2:
                    two_col.append((float(fields[0]), mbps(float(fields[1]))))
                else:
                    stamps.append(float(fields[0]))
        if columns >= 2:
            return cls(two_col)
        if not stamps:
            raise ValueError(f"capacity trace {path!r} is empty")
        return cls(cls._bins_from_stamps(stamps))

    @staticmethod
    def _bins_from_stamps(
        stamps: list[float], *, bin_ms: float = 100.0
    ) -> list[tuple[float, float]]:
        """Mahimahi ms timestamps -> (duration, rate) segments."""
        span = max(stamps[-1], bin_ms)
        nbins = max(1, int(span / bin_ms + (1 if span % bin_ms else 0)))
        counts = [0] * nbins
        for stamp in stamps:
            index = min(int(stamp / bin_ms), nbins - 1)
            counts[index] += 1
        width = bin_ms / 1000.0
        return [
            (width, max(count * MSS / width, _MIN_TRACE_RATE))
            for count in counts
        ]

    def tx_time(self, start: float, size: float) -> float:
        """Seconds to serialize ``size`` bytes beginning at absolute
        time ``start``, integrating the rate across segment (and cycle)
        boundaries."""
        segments = self.segments
        position = start % self.cycle
        index = 0
        acc = 0.0
        for index, (duration, _rate) in enumerate(segments):
            if position < acc + duration:
                break
            acc += duration
        offset = position - acc
        remaining = float(size)
        total = 0.0
        while True:
            duration, rate = segments[index]
            window = duration - offset
            capacity = rate * window
            if capacity >= remaining:
                return total + remaining / rate
            remaining -= capacity
            total += window
            offset = 0.0
            index += 1
            if index == len(segments):
                index = 0


class TraceLink(Link):
    """A serializing link whose rate follows a :class:`CapacityTrace`.

    Identical to :class:`~repro.net.link.Link` (drop-tail buffer,
    coalesced propagation FIFO) except that each packet's serialization
    time is integrated over the trace starting at its transmit instant.
    Serialization stays strictly sequential, so propagation exit times
    remain monotone and the coalesced FIFO drains stay valid.
    """

    def __init__(
        self,
        sim: Simulator,
        trace: CapacityTrace,
        delay: float,
        sink: PacketSink,
        *,
        buffer_bytes: float | None = None,
        name: str = "trace-link",
    ) -> None:
        super().__init__(
            sim,
            trace.mean_rate,
            delay,
            sink,
            buffer_bytes=buffer_bytes,
            name=name,
        )
        self._trace = trace

    @property
    def trace(self) -> CapacityTrace:
        """The driving capacity schedule."""
        return self._trace

    def _transmit(self, packet: Packet) -> None:
        self._busy = True
        tx_time = self._trace.tx_time(self._sim.now, packet.size)
        self._sim.call_after(tx_time, self._on_tx_done, packet)


def build_data_path(
    sim: Simulator,
    delay: float,
    sink: PacketSink,
    spec: ImpairmentSpec,
    rng: Random,
    *,
    name: str = "impair",
) -> PacketSink:
    """The sender-side data chain for one flow.

    Composition (entry first): Gilbert-Elliott loss -> i.i.d. loss ->
    duplication -> corruption -> delay element (a :class:`JitterPipe`
    when jitter/reordering is on, else the plain coalesced
    :class:`~repro.net.pipe.Pipe`) -> ``sink``.  Gates the spec leaves
    disabled are not constructed at all.
    """
    entry: PacketSink
    if spec.jitter > 0.0 or spec.reorder > 0.0:
        entry = JitterPipe(
            sim,
            delay,
            sink,
            jitter=spec.jitter,
            reorder=spec.reorder,
            reorder_extra=spec.reorder_extra,
            rng=rng,
            name=f"{name}-jitter",
        )
    else:
        entry = Pipe(sim, delay, sink, name=f"{name}-pipe")
    if spec.corrupt > 0.0:
        entry = Corrupter(spec.corrupt, entry, rng)
    if spec.duplicate > 0.0:
        entry = Duplicator(spec.duplicate, entry, rng)
    if spec.loss > 0.0:
        entry = LossGate(spec.loss, entry, rng)
    if spec.ge is not None:
        entry = GilbertElliottGate(*spec.ge, entry, rng)
    return entry


def build_ack_path(
    sim: Simulator,
    delay: float,
    sink: PacketSink,
    spec: ImpairmentSpec,
    rng: Random,
    *,
    name: str = "impair-ack",
) -> PacketSink:
    """The receiver-side ACK return chain for one flow: i.i.d. ACK loss
    and corruption in front of the plain reverse delay pipe."""
    entry: PacketSink = Pipe(sim, delay, sink, name=f"{name}-pipe")
    if spec.corrupt > 0.0:
        entry = Corrupter(spec.corrupt, entry, rng)
    if spec.ack_loss > 0.0:
        entry = LossGate(spec.ack_loss, entry, rng)
    return entry
