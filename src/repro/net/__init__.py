"""Network substrate: packets, links, pipes, traces and topology wiring."""

from repro.net.packet import FlowId, Packet, PacketKind
from repro.net.link import Link
from repro.net.pipe import Pipe
from repro.net.sink import CallbackSink, NullSink, PacketSink, TeeSink
from repro.net.trace import PacketRecord, Trace

__all__ = [
    "CallbackSink",
    "FlowId",
    "Link",
    "NullSink",
    "Packet",
    "PacketKind",
    "PacketRecord",
    "PacketSink",
    "Pipe",
    "Trace",
]
