"""The rate-enforcer middlebox: routes traffic aggregates to limiters."""

from __future__ import annotations

from repro.limiters.base import RateLimiter
from repro.net.packet import Packet
from repro.sim.simulator import Simulator


class Middlebox:
    """Hosts one rate limiter per traffic aggregate.

    Mirrors the paper's DPDK middlebox: each arriving packet is matched to
    its aggregate (e.g. subscriber) and handed to that aggregate's limiter.
    Packets of unknown aggregates are forwarded unmodified (the testbed
    only polices configured subscribers).
    """

    def __init__(self, sim: Simulator, *, name: str = "middlebox") -> None:
        self._sim = sim
        self.name = name
        self._limiters: dict[int, RateLimiter] = {}
        self._default = None
        self.unmatched_packets = 0
        validator = getattr(sim, "validator", None)
        if validator is not None:
            validator.attach_middlebox(self)

    def add_aggregate(self, aggregate: int, limiter: RateLimiter) -> None:
        """Register ``limiter`` for ``aggregate``; replacing is an error."""
        if aggregate in self._limiters:
            raise ValueError(f"aggregate {aggregate} already registered")
        self._limiters[aggregate] = limiter

    def limiter_for(self, aggregate: int) -> RateLimiter:
        """The limiter handling ``aggregate`` (KeyError if unknown)."""
        return self._limiters[aggregate]

    @property
    def aggregates(self) -> list[int]:
        """Registered aggregate ids, sorted."""
        return sorted(self._limiters)

    def receive(self, packet: Packet) -> None:
        limiter = self._limiters.get(packet.flow.aggregate)
        if limiter is None:
            self.unmatched_packets += 1
            return
        limiter.receive(packet)

    def receive_batch(self, packets: list[Packet]) -> None:
        """Dispatch a same-instant batch, grouping *consecutive* packets
        of the same aggregate into one limiter call.

        Only consecutive runs may be merged: merging across an unrelated
        packet would reorder that packet's traversal relative to the run,
        which the unbatched engine never does.
        """
        limiters = self._limiters
        run: list[Packet] = []
        run_limiter = None
        run_aggregate = None
        for packet in packets:
            aggregate = packet.flow.aggregate
            if aggregate != run_aggregate or run_limiter is None:
                if len(run) == 1:
                    run_limiter.receive(run[0])
                elif run:
                    run_limiter.receive_batch(run)
                run = []
                run_aggregate = aggregate
                run_limiter = limiters.get(aggregate)
                if run_limiter is None:
                    self.unmatched_packets += 1
                    run_aggregate = None
                    continue
            run.append(packet)
        if len(run) == 1:
            run_limiter.receive(run[0])
        elif run:
            run_limiter.receive_batch(run)

    def total_cycles(self) -> float:
        """Modeled CPU cycles summed over all hosted limiters."""
        return sum(lim.cost.cycles() for lim in self._limiters.values())
