"""An infinite-bandwidth, fixed-delay pipe.

Used for per-flow propagation delays (the reproduction's stand-in for
``netem`` latency injection) and for the ACK return path, which in the
paper's testbed does not traverse the rate-limiting middlebox.

Delivery is **coalesced**: because the delay is constant, arrivals leave
in arrival order, so the pipe keeps one internal FIFO and at most one
outstanding simulator event, re-armed for the new head after each drain.
N in-flight packets cost 1 heap entry instead of N.

Byte-identity with the per-packet-event engine is preserved by sequence
reservation: every arrival claims a global insertion seq (exactly where
the old engine consumed one by scheduling), the armed event carries the
head packet's reserved seq, and the drain loop hands delivery back to
the heap whenever another event's (time, seq) would have interleaved —
so the global firing order is bit-for-bit the old engine's.
"""

from __future__ import annotations

from collections import deque

from repro.net.packet import Packet
from repro.net.sink import PacketSink
from repro.sim.simulator import Simulator


class Pipe:
    """Delivers every packet to ``sink`` exactly ``delay`` seconds later."""

    def __init__(
        self, sim: Simulator, delay: float, sink: PacketSink, *, name: str = "pipe"
    ) -> None:
        if delay < 0:
            raise ValueError(f"pipe delay must be non-negative, got {delay!r}")
        self._sim = sim
        self._delay = delay
        self._sink = sink
        self.name = name
        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        #: In-flight packets as (deliver_time, reserved_seq, packet);
        #: arrival order == delivery order (constant delay).
        self._pending: deque[tuple[float, int, Packet]] = deque()
        self._armed = False

    @property
    def delay(self) -> float:
        """One-way delay in seconds."""
        return self._delay

    @property
    def in_flight(self) -> int:
        """Packets currently traversing the pipe."""
        return len(self._pending)

    def receive(self, packet: Packet) -> None:
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        if self._delay > 0:
            sim = self._sim
            time = sim.now + self._delay
            seq = sim.reserve_seq()
            self._pending.append((time, seq, packet))
            if not self._armed:
                self._armed = True
                sim.call_at_reserved(time, seq, self._deliver)
        else:
            self._sink.receive(packet)

    def _deliver(self) -> None:
        """Deliver the head, then drain in-order packets inline for as
        long as no other heap event would have fired between them."""
        pending = self._pending
        sim = self._sim
        now = sim.now
        receive = self._sink.receive
        heap = sim._heap
        while True:
            receive(pending.popleft()[2])
            if not pending:
                self._armed = False
                return
            time, seq, _packet = pending[0]
            if time <= now and (
                not heap
                or heap[0][0] > time
                or (heap[0][0] == time and heap[0][1] > seq)
            ):
                # The next pending packet is exactly the event the heap
                # would fire next — deliver it without the heap round-trip.
                continue
            sim.call_at_reserved(time, seq, self._deliver)
            return
