"""An infinite-bandwidth, fixed-delay pipe.

Used for per-flow propagation delays (the reproduction's stand-in for
``netem`` latency injection) and for the ACK return path, which in the
paper's testbed does not traverse the rate-limiting middlebox.

Delivery is **coalesced**: because the delay is constant, arrivals leave
in arrival order, so the pipe keeps one internal FIFO and at most one
outstanding simulator event, re-armed for the new head after each drain.
N in-flight packets cost 1 heap entry instead of N.

Byte-identity with the per-packet-event engine is preserved by sequence
reservation: every arrival claims a global insertion seq (exactly where
the old engine consumed one by scheduling), the armed event carries the
head packet's reserved seq, and the drain loop hands delivery back to
the heap whenever another event's (time, seq) would have interleaved —
so the global firing order is bit-for-bit the old engine's.
"""

from __future__ import annotations

from collections import deque

from repro.net.fastpath import drain_coalesced
from repro.net.packet import Packet
from repro.net.sink import PacketSink, batch_capable
from repro.sim.simulator import EventHandle, SimulationError, Simulator

import heapq


class Pipe:
    """Delivers every packet to ``sink`` exactly ``delay`` seconds later."""

    def __init__(
        self, sim: Simulator, delay: float, sink: PacketSink, *, name: str = "pipe"
    ) -> None:
        if delay < 0:
            raise ValueError(f"pipe delay must be non-negative, got {delay!r}")
        self._sim = sim
        self._delay = delay
        self._sink = sink
        self.name = name
        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        #: In-flight packets as (deliver_time, reserved_seq, packet);
        #: arrival order == delivery order (constant delay).
        self._pending: deque[tuple[float, int, Packet]] = deque()
        self._armed = False
        # Batched engine plumbing: the delivery event latched at
        # construction (batch=1 keeps the legacy per-packet drain as the
        # executable reference engine), a sink guaranteed to accept
        # batches, and the reusable batch scratch list.
        self._batch_sink = batch_capable(sink)
        self._scratch: list[Packet] = []
        self._deliver_entry = (
            self._deliver if sim.batch_limit == 1 else self.deliver_batch
        )

    @property
    def delay(self) -> float:
        """One-way delay in seconds."""
        return self._delay

    @property
    def in_flight(self) -> int:
        """Packets currently traversing the pipe."""
        return len(self._pending)

    def receive(self, packet: Packet) -> None:
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        if self._delay > 0:
            sim = self._sim
            time = sim.now + self._delay
            pending = self._pending
            if pending and time < pending[-1][0]:
                raise SimulationError(
                    f"pipe {self.name!r}: non-monotone delivery time "
                    f"{time!r} after {pending[-1][0]!r} — the coalesced "
                    "FIFO assumes arrival order == delivery order"
                )
            seq = sim.reserve_seq()
            pending.append((time, seq, packet))
            if not self._armed:
                self._armed = True
                sim.call_at_reserved(time, seq, self._deliver_entry)
        else:
            self._sink.receive(packet)

    def receive_fast(self, packet: Packet) -> None:
        """:meth:`receive` with the clock read and seq reservation
        inlined — identical bookkeeping, fewer attribute/property hops.
        Batched-engine fused senders latch this entry; the legacy engine
        never routes here."""
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        if self._delay > 0:
            sim = self._sim
            time = sim._now + self._delay
            pending = self._pending
            if pending and time < pending[-1][0]:
                raise SimulationError(
                    f"pipe {self.name!r}: non-monotone delivery time "
                    f"{time!r} after {pending[-1][0]!r} — the coalesced "
                    "FIFO assumes arrival order == delivery order"
                )
            seq = sim._seq
            sim._seq = seq + 1
            pending.append((time, seq, packet))
            if not self._armed:
                self._armed = True
                # call_at_reserved inlined (identical bookkeeping).
                pool = sim._handle_pool
                if pool:
                    handle = pool.pop()
                    handle.generation += 1
                    handle.callback = self._deliver_entry
                    handle.args = ()
                else:
                    handle = EventHandle(0.0, 0, self._deliver_entry, (), sim)
                    handle.pooled = True
                handle.time = time
                handle.seq = seq
                heap = sim._heap
                heapq.heappush(heap, (time, seq, handle))
                sim._heap_pushes += 1
                sim._live += 1
                if len(heap) > sim._peak_heap:
                    sim._peak_heap = len(heap)
        else:
            self._sink.receive(packet)

    def receive_batch(self, packets: list[Packet]) -> None:
        """Accept a same-instant batch in one call.

        Seq reservation is *consecutive*: in the unbatched engine the
        packets of a batch arrive back-to-back with no other seq
        consumer between them (the stages upstream of a pipe reserve no
        seqs while forwarding), so claiming ``n`` consecutive numbers
        here assigns each packet the exact seq it would have drawn
        one-at-a-time.
        """
        n = len(packets)
        if n == 0:
            return
        self.forwarded_packets += n
        size = 0
        if self._delay > 0:
            sim = self._sim
            time = sim._now + self._delay
            pending = self._pending
            if pending and time < pending[-1][0]:
                raise SimulationError(
                    f"pipe {self.name!r}: non-monotone delivery time "
                    f"{time!r} after {pending[-1][0]!r} — the coalesced "
                    "FIFO assumes arrival order == delivery order"
                )
            seq = sim._seq
            sim._seq = seq + n
            append = pending.append
            for packet in packets:
                size += packet.size
                append((time, seq, packet))
                seq += 1
            self.forwarded_bytes += size
            if not self._armed:
                self._armed = True
                # call_at_reserved inlined (identical bookkeeping).
                head_seq = seq - n
                pool = sim._handle_pool
                if pool:
                    handle = pool.pop()
                    handle.generation += 1
                    handle.callback = self._deliver_entry
                    handle.args = ()
                else:
                    handle = EventHandle(0.0, 0, self._deliver_entry, (), sim)
                    handle.pooled = True
                handle.time = time
                handle.seq = head_seq
                heap = sim._heap
                heapq.heappush(heap, (time, head_seq, handle))
                sim._heap_pushes += 1
                sim._live += 1
                if len(heap) > sim._peak_heap:
                    sim._peak_heap = len(heap)
        else:
            for packet in packets:
                size += packet.size
            self.forwarded_bytes += size
            self._batch_sink.receive_batch(packets)

    def deliver_batch(self) -> None:
        """Batched drain: hand guarded same-instant prefixes of the FIFO
        to the sink in single ``receive_batch`` calls (see
        :func:`repro.net.fastpath.drain_coalesced`)."""
        if drain_coalesced(
            self._sim, self._pending, self._batch_sink, self.deliver_batch,
            self._scratch,
        ):
            self._armed = False

    def _deliver(self) -> None:
        """Deliver the head, then drain in-order packets inline for as
        long as no other heap event would have fired between them."""
        pending = self._pending
        sim = self._sim
        now = sim.now
        receive = self._sink.receive
        heap = sim._heap
        while True:
            receive(pending.popleft()[2])
            if not pending:
                self._armed = False
                return
            time, seq, _packet = pending[0]
            if time <= now and (
                not heap
                or heap[0][0] > time
                or (heap[0][0] == time and heap[0][1] > seq)
            ):
                # The next pending packet is exactly the event the heap
                # would fire next — deliver it without the heap round-trip.
                continue
            sim.call_at_reserved(time, seq, self._deliver)
            return
