"""An infinite-bandwidth, fixed-delay pipe.

Used for per-flow propagation delays (the reproduction's stand-in for
``netem`` latency injection) and for the ACK return path, which in the
paper's testbed does not traverse the rate-limiting middlebox.
"""

from __future__ import annotations

from repro.net.packet import Packet
from repro.net.sink import PacketSink
from repro.sim.simulator import Simulator


class Pipe:
    """Delivers every packet to ``sink`` exactly ``delay`` seconds later."""

    def __init__(
        self, sim: Simulator, delay: float, sink: PacketSink, *, name: str = "pipe"
    ) -> None:
        if delay < 0:
            raise ValueError(f"pipe delay must be non-negative, got {delay!r}")
        self._sim = sim
        self._delay = delay
        self._sink = sink
        self.name = name
        self.forwarded_packets = 0
        self.forwarded_bytes = 0

    @property
    def delay(self) -> float:
        """One-way delay in seconds."""
        return self._delay

    def receive(self, packet: Packet) -> None:
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        if self._delay > 0:
            self._sim.schedule(self._delay, self._sink.receive, packet)
        else:
            self._sink.receive(packet)
