"""The packet-sink protocol every forwarding element implements."""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.net.packet import Packet


@runtime_checkable
class PacketSink(Protocol):
    """Anything that can accept a packet right now."""

    def receive(self, packet: Packet) -> None:
        """Accept ``packet`` at the current simulation time."""
        ...  # pragma: no cover - protocol definition


class NullSink:
    """Swallows packets; useful as a default downstream in unit tests."""

    def __init__(self) -> None:
        self.count = 0
        self.bytes = 0

    def receive(self, packet: Packet) -> None:
        self.count += 1
        self.bytes += packet.size


class CallbackSink:
    """Adapts a plain callable into a :class:`PacketSink`."""

    def __init__(self, callback: Callable[[Packet], None]) -> None:
        self._callback = callback

    def receive(self, packet: Packet) -> None:
        self._callback(packet)


class TeeSink:
    """Duplicates packets to several sinks (e.g. a trace plus the next hop)."""

    def __init__(self, *sinks: PacketSink) -> None:
        self._sinks = sinks

    def receive(self, packet: Packet) -> None:
        for sink in self._sinks:
            sink.receive(packet)
