"""The packet-sink protocol every forwarding element implements."""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.net.packet import Packet


@runtime_checkable
class PacketSink(Protocol):
    """Anything that can accept a packet right now."""

    def receive(self, packet: Packet) -> None:
        """Accept ``packet`` at the current simulation time."""
        ...  # pragma: no cover - protocol definition


class BatchSink(Protocol):
    """A sink that additionally accepts same-instant batches.

    ``receive_batch(packets)`` must be equivalent to calling ``receive``
    on each packet in order.  The sequence handed in may be a reused
    scratch buffer owned by the caller — implementations must not retain
    it past the call (copy the packets out if they need to).
    """

    def receive(self, packet: Packet) -> None:
        ...  # pragma: no cover - protocol definition

    def receive_batch(self, packets: list[Packet]) -> None:
        ...  # pragma: no cover - protocol definition


class _PerPacketAdapter:
    """Wraps a plain :class:`PacketSink` so batched drains can feed it."""

    __slots__ = ("_sink",)

    def __init__(self, sink: PacketSink) -> None:
        self._sink = sink

    def receive(self, packet: Packet) -> None:
        self._sink.receive(packet)

    def receive_batch(self, packets: list[Packet]) -> None:
        receive = self._sink.receive
        for packet in packets:
            receive(packet)


def batch_capable(sink: PacketSink) -> "BatchSink":
    """Return ``sink`` itself when it accepts batches, else a per-packet
    adapter.  The returned object is looked up dynamically at dispatch
    time, so instance-level ``receive_batch`` wrappers installed later
    (the invariant checker's) still shadow the class method."""
    if hasattr(sink, "receive_batch"):
        return sink  # type: ignore[return-value]
    return _PerPacketAdapter(sink)


class NullSink:
    """Swallows packets; useful as a default downstream in unit tests."""

    def __init__(self) -> None:
        self.count = 0
        self.bytes = 0

    def receive(self, packet: Packet) -> None:
        self.count += 1
        self.bytes += packet.size

    def receive_batch(self, packets: list[Packet]) -> None:
        self.count += len(packets)
        total = 0
        for packet in packets:
            total += packet.size
        self.bytes += total
        # Terminal sink: consumed pure ACKs go back to the free list
        # batch-at-a-time (pooling is value-invisible — uids are always
        # fresh — so this cannot perturb outcomes).
        Packet.recycle_acks(packets)


class CallbackSink:
    """Adapts a plain callable into a :class:`PacketSink`."""

    def __init__(self, callback: Callable[[Packet], None]) -> None:
        self._callback = callback

    def receive(self, packet: Packet) -> None:
        self._callback(packet)

    def receive_batch(self, packets: list[Packet]) -> None:
        callback = self._callback
        for packet in packets:
            callback(packet)


class TeeSink:
    """Duplicates packets to several sinks (e.g. a trace plus the next hop)."""

    def __init__(self, *sinks: PacketSink) -> None:
        self._sinks = sinks

    def receive(self, packet: Packet) -> None:
        for sink in self._sinks:
            sink.receive(packet)

    def receive_batch(self, packets: list[Packet]) -> None:
        # Per-packet across all sinks, in the legacy interleaving: a
        # sink that reserves seqs (a downstream pipe) must consume them
        # in exactly the unbatched order.
        sinks = self._sinks
        for packet in packets:
            for sink in sinks:
                sink.receive(packet)
