"""The batched drain kernel shared by :class:`~repro.net.pipe.Pipe` and
:class:`~repro.net.link.Link`.

``drain_coalesced`` is the single hot inner loop of the batched packet
path.  Each invocation pops the head of a coalesced FIFO, collects the
longest *same-instant* prefix whose reserved ``(time, seq)`` keys all
precede every other heap event, and hands the whole prefix to the
receiver in one ``receive_batch`` call.  Between prefixes it either
continues inline (same instant, still globally next), advances the
simulation clock inline (strictly later instant, still globally next,
and an un-budgeted ``run()`` is driving — see
``Simulator._advance_bound``), or re-arms a heap event for the new head
exactly like the legacy per-packet engine.

Byte-identity argument
----------------------
The legacy drain checks, *after* delivering each packet, whether the
next pending ``(t, s)`` still precedes the heap head.  Collecting the
guarded prefix *before* delivering is equivalent because every event
pushed during delivery of a batch member carries ``time >= now`` and a
seq **greater** than every seq reserved before it — so a push can never
slip in front of a same-instant pending member, and the prefix guard's
outcome is invariant under the deliveries it elides.  Cancellations
never remove heap tuples (lazy deletion), so the guard's comparison
target is stable too.  Inline clock advancement fires the exact event
the run loop would have popped next, at the same ``(time, seq)``, with
the same clock value — only the heap round-trip (push, sift, pop,
handle recycle) is skipped, none of which is observable to components.

Compilability constraints
-------------------------
The kernel is deliberately written in a restricted, mypyc/Cython-
compilable style: one flat function, plain locals, no closures, no
comprehensions in the loop, explicit ``while``/``break`` control flow,
and a caller-preallocated scratch list reused across batches.  An
optionally compiled extension (``repro.net._fastpath_c``) is picked up
when present; the pure-python definition below is the reference and the
fallback — no build step is ever required.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.net.packet import Packet
from repro.sim.simulator import EventHandle, Simulator


def drain_coalesced(
    sim: Simulator,
    pending: Any,
    sink: Any,
    rearm: Callable[[], None],
    scratch: list[Packet],
) -> bool:
    """Drain ``pending`` (a deque of ``(time, seq, packet)``) into
    ``sink`` in guarded same-instant batches.

    Returns ``True`` when the deque is empty (the caller must clear its
    armed flag) and ``False`` when a heap event was re-armed for the
    remaining head via ``rearm``.
    """
    heap = sim._heap
    cap = sim._batch_cap
    heappop = heapq.heappop
    heappush = heapq.heappush
    while True:
        head = pending.popleft()
        t0 = head[0]
        scratch.clear()
        scratch.append(head[2])
        n = 1
        while pending:
            if n == cap:
                break
            nxt = pending[0]
            t1 = nxt[0]
            if t1 != t0:
                break
            if heap:
                top = heap[0]
                ht = top[0]
                if ht < t1 or (ht == t1 and top[1] < nxt[1]):
                    break
            pending.popleft()
            scratch.append(nxt[2])
            n += 1
        if n > 1:
            sim._batched_deliveries += n
        sink.receive_batch(scratch)
        if not pending:
            return True
        nxt = pending[0]
        t1 = nxt[0]
        s1 = nxt[1]
        now = sim._now
        if t1 <= now:
            # Same instant: the legacy guard (conservative — a cancelled
            # heap top falls back to the re-arm path, as it always did).
            if not heap:
                continue
            top = heap[0]
            ht = top[0]
            if ht > t1 or (ht == t1 and top[1] > s1):
                continue
        else:
            bound = sim._advance_bound
            if bound is not None and t1 <= bound:
                # Strictly later instant: discard cancelled tops exactly
                # like the run loop would, then check whether our head is
                # the globally next live event.  If so, fire it inline.
                while heap and heap[0][2].cancelled:
                    heappop(heap)
                    sim._cancelled_backlog -= 1
                if not heap:
                    sim._now = t1
                    sim._inline_advances += 1
                    continue
                top = heap[0]
                ht = top[0]
                if ht > t1 or (ht == t1 and top[1] > s1):
                    sim._now = t1
                    sim._inline_advances += 1
                    continue
        # call_at_reserved(t1, s1, rearm), inlined: pooled-handle draw,
        # push, and counter updates — identical bookkeeping, no call.
        pool = sim._handle_pool
        if pool:
            handle = pool.pop()
            handle.generation += 1
            handle.callback = rearm
            handle.args = ()
        else:
            handle = EventHandle(0.0, 0, rearm, (), sim)
            handle.pooled = True
        handle.time = t1
        handle.seq = s1
        heappush(heap, (t1, s1, handle))
        sim._heap_pushes += 1
        sim._live += 1
        if len(heap) > sim._peak_heap:
            sim._peak_heap = len(heap)
        return False


try:  # pragma: no cover - exercised only where the extension is built
    from repro.net._fastpath_c import drain_coalesced  # type: ignore  # noqa: F811,E501
except ImportError:
    pass
