"""Packet and flow-identity types.

Data packets carry one MSS of payload; sequence numbers count packets (not
bytes), which matches the paper's MSS-granularity analysis and keeps TCP
bookkeeping simple.  ACKs are separate 40-byte packets carrying a cumulative
``ack_next`` (the next packet number the receiver expects).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import ClassVar

from repro.units import ACK_SIZE, MSS


class PacketKind(Enum):
    """Whether a packet carries data or a pure acknowledgement."""

    DATA = "data"
    ACK = "ack"


@dataclass(frozen=True, slots=True)
class FlowId:
    """Identity of one transport flow.

    ``aggregate`` names the rate-limited traffic aggregate (e.g. one ISP
    subscriber); ``slot`` is a stable index within the aggregate used for
    queue classification (an on-off flow that restarts keeps its slot);
    ``incarnation`` distinguishes successive flows in the same slot.
    """

    aggregate: int
    slot: int
    incarnation: int = 0
    #: Cached hash — flow ids key every per-packet dict lookup
    #: (classifier, demux, middlebox), so the tuple-hash is paid once at
    #: construction instead of per lookup.  Same formula as the
    #: dataclass-generated hash (compare fields only), so dict iteration
    #: orders are unchanged.
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.aggregate, self.slot, self.incarnation))
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"agg{self.aggregate}.s{self.slot}.i{self.incarnation}"


_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One simulated packet.

    Attributes
    ----------
    flow:
        Owning flow identity.
    kind:
        DATA or ACK.
    seq:
        For DATA: packet number within the flow.  For ACK: unused (0).
    size:
        Wire size in bytes (MSS for data, 40 for ACKs).
    sent_at:
        Time the packet was (last) transmitted by the sender; echoed back in
        ACKs for RTT sampling.
    ack_next:
        For ACK packets: cumulative next-expected packet number.
    echo_ts:
        For ACK packets: ``sent_at`` of the data packet that triggered this
        ACK (Karn-friendly RTT sampling uses it only for non-retransmits).
    retransmit:
        True if this transmission is a retransmission.
    ecn_capable:
        Data packets: sender negotiated ECN (ECT codepoint).
    ce:
        Data packets: Congestion Experienced mark set by an AQM.
    ecn_echo:
        ACK packets: the receiver saw CE on the triggering segment.
    sack:
        For ACK packets: up to three SACK ranges ``(start, end)`` (end
        exclusive, in packet numbers) above ``ack_next``, lowest first —
        the receiver's out-of-order blocks, as Linux TCP reports them.
    corrupt:
        Set by an impairment channel (:mod:`repro.net.impair`) to model
        a failed checksum: a corrupted DATA packet is dropped by the
        receiver (no ACK), a corrupted ACK by the sender.  Reset on
        every pooled reissue like the other mid-flight mutations.
    uid:
        Globally unique packet id, handy for tracing.  A pooled ACK gets
        a *fresh* uid on every reissue, so uid semantics are unchanged by
        pooling.
    generation:
        Reissue count for pooled ACK packets (0 for a fresh allocation).
        Holding a packet across its recycle point is a bug; comparing
        generations detects the resurrection (exercised under
        ``--validate`` and by the pool property tests).  Excluded from
        ``repr``/``eq`` so pooling is invisible to traces and digests.
    """

    flow: FlowId
    kind: PacketKind
    seq: int
    size: int
    sent_at: float
    ack_next: int = 0
    echo_ts: float = 0.0
    echo_retransmit: bool = False
    retransmit: bool = False
    ecn_capable: bool = False
    ce: bool = False
    ecn_echo: bool = False
    sack: tuple[tuple[int, int], ...] = ()
    corrupt: bool = field(default=False, repr=False, compare=False)
    uid: int = field(default_factory=lambda: next(_packet_ids))
    generation: int = field(default=0, repr=False, compare=False)
    _in_pool: bool = field(default=False, repr=False, compare=False)

    #: Free list for ACK packets — the one allocation per data packet the
    #: receiver cannot avoid.  ACKs terminate synchronously at the sender
    #: (nothing queues or retains them), so :meth:`recycle_ack` at the
    #: point of consumption is sound.  Bounded so a pathological burst
    #: cannot pin memory.
    _ack_pool: ClassVar[list["Packet"]] = []
    _ACK_POOL_MAX: ClassVar[int] = 2048

    #: Free list for DATA packets.  The receiver is the terminal consumer
    #: of a data packet (downstream components keep only scalar columns),
    #: so it recycles the ones it absorbs batch-at-a-time.  Drop points
    #: (impairment gates, the link's drop-tail buffer, the receiver's
    #: corrupt-packet discard) are terminal consumers too and recycle
    #: what they drop via :meth:`recycle`, so the pool can fill in any
    #: engine; pooling stays value-invisible (fresh uid per reissue).
    _data_pool: ClassVar[list["Packet"]] = []
    _DATA_POOL_MAX: ClassVar[int] = 4096

    @classmethod
    def data(
        cls,
        flow: FlowId,
        seq: int,
        sent_at: float,
        *,
        size: int = MSS,
        retransmit: bool = False,
        ecn_capable: bool = False,
    ) -> "Packet":
        """Construct a data packet.

        Draws from the DATA free list when possible; a reissued packet is
        fully re-initialised (fresh uid included) and bumps its
        ``generation``.
        """
        pool = cls._data_pool
        if pool:
            # The pool holds only DATA packets, and no component ever
            # writes the ACK-only fields (ack_next/echo_*/ecn_echo/sack)
            # of a data packet — those still hold their construction
            # defaults, so only the data-path fields are re-initialised.
            # ``ce`` is the one mid-flight mutation (AQM marking).
            pkt = pool.pop()
            pkt._in_pool = False
            pkt.generation += 1
            pkt.flow = flow
            pkt.seq = seq
            pkt.size = size
            pkt.sent_at = sent_at
            pkt.retransmit = retransmit
            pkt.ecn_capable = ecn_capable
            pkt.ce = False
            pkt.corrupt = False
            pkt.uid = next(_packet_ids)
            return pkt
        return cls(
            flow=flow,
            kind=PacketKind.DATA,
            seq=seq,
            size=size,
            sent_at=sent_at,
            retransmit=retransmit,
            ecn_capable=ecn_capable,
        )

    @classmethod
    def ack(
        cls,
        flow: FlowId,
        ack_next: int,
        sent_at: float,
        *,
        echo_ts: float,
        echo_retransmit: bool,
        sack: tuple[tuple[int, int], ...] = (),
        ecn_echo: bool = False,
    ) -> "Packet":
        """Construct a pure ACK for ``flow`` (sent receiver → sender).

        Draws from the ACK free list when possible; a reissued packet is
        fully re-initialised (fresh uid included) and bumps its
        ``generation``.
        """
        pool = cls._ack_pool
        if pool:
            # The pool holds only ACK packets, and nothing ever writes a
            # pure ACK's data-path fields (seq/size/retransmit/
            # ecn_capable), so those still hold the ACK construction
            # values and are skipped; ``ce`` is reset defensively (AQMs
            # mark only ECN-capable data, but the field is mutable
            # mid-flight by contract).
            pkt = pool.pop()
            pkt._in_pool = False
            pkt.generation += 1
            pkt.flow = flow
            pkt.ce = False
            pkt.corrupt = False
            pkt.sent_at = sent_at
            pkt.ack_next = ack_next
            pkt.echo_ts = echo_ts
            pkt.echo_retransmit = echo_retransmit
            pkt.ecn_echo = ecn_echo
            pkt.sack = sack
            pkt.uid = next(_packet_ids)
            return pkt
        return cls(
            flow=flow,
            kind=PacketKind.ACK,
            seq=0,
            size=ACK_SIZE,
            sent_at=sent_at,
            ack_next=ack_next,
            echo_ts=echo_ts,
            echo_retransmit=echo_retransmit,
            sack=sack,
            ecn_echo=ecn_echo,
        )

    @classmethod
    def recycle(cls, packet: "Packet") -> None:
        """Return one consumed packet (either kind) to its free list.

        The single-packet form used by drop points — impairment gates,
        drop-tail buffers, corrupt-packet discards — where the dropper is
        the packet's terminal consumer.  The ``_in_pool`` latch makes a
        second recycle a no-op, so a packet can only ever enter its pool
        once per reissue.
        """
        if packet._in_pool:
            return
        if packet.kind is PacketKind.ACK:
            pool = cls._ack_pool
            limit = cls._ACK_POOL_MAX
        else:
            pool = cls._data_pool
            limit = cls._DATA_POOL_MAX
        if len(pool) < limit:
            packet._in_pool = True
            pool.append(packet)

    @classmethod
    def recycle_ack(cls, packet: "Packet") -> None:
        """Return a consumed ACK to the free list.

        Only pure ACKs are pooled; recycling the same packet twice is a
        no-op (the ``_in_pool`` latch), so sinks may recycle defensively.
        """
        if packet.kind is not PacketKind.ACK or packet._in_pool:
            return
        pool = cls._ack_pool
        if len(pool) < cls._ACK_POOL_MAX:
            packet._in_pool = True
            pool.append(packet)

    @classmethod
    def recycle_acks(cls, packets: list["Packet"]) -> None:
        """Batch form of :meth:`recycle_ack`: return every consumed ACK
        of a delivered batch to the free list in one pass.  Non-ACKs and
        already-pooled packets are skipped by the same latch."""
        pool = cls._ack_pool
        limit = cls._ACK_POOL_MAX
        for packet in packets:
            if packet.kind is PacketKind.ACK and not packet._in_pool:
                if len(pool) < limit:
                    packet._in_pool = True
                    pool.append(packet)

    @classmethod
    def recycle_data(cls, packets: list["Packet"]) -> None:
        """Return consumed DATA packets to the free list in one pass.

        Callers must be the terminal consumer (nothing downstream retains
        a reference); the ``_in_pool`` latch makes double-recycling a
        no-op, mirroring :meth:`recycle_acks`.
        """
        pool = cls._data_pool
        limit = cls._DATA_POOL_MAX
        for packet in packets:
            if packet.kind is PacketKind.DATA and not packet._in_pool:
                if len(pool) < limit:
                    packet._in_pool = True
                    pool.append(packet)

    @property
    def is_data(self) -> bool:
        """True for data packets."""
        return self.kind is PacketKind.DATA

    @property
    def is_ack(self) -> bool:
        """True for pure ACKs."""
        return self.kind is PacketKind.ACK
