"""Packet and flow-identity types.

Data packets carry one MSS of payload; sequence numbers count packets (not
bytes), which matches the paper's MSS-granularity analysis and keeps TCP
bookkeeping simple.  ACKs are separate 40-byte packets carrying a cumulative
``ack_next`` (the next packet number the receiver expects).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.units import ACK_SIZE, MSS


class PacketKind(Enum):
    """Whether a packet carries data or a pure acknowledgement."""

    DATA = "data"
    ACK = "ack"


@dataclass(frozen=True, slots=True)
class FlowId:
    """Identity of one transport flow.

    ``aggregate`` names the rate-limited traffic aggregate (e.g. one ISP
    subscriber); ``slot`` is a stable index within the aggregate used for
    queue classification (an on-off flow that restarts keeps its slot);
    ``incarnation`` distinguishes successive flows in the same slot.
    """

    aggregate: int
    slot: int
    incarnation: int = 0

    def __str__(self) -> str:
        return f"agg{self.aggregate}.s{self.slot}.i{self.incarnation}"


_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One simulated packet.

    Attributes
    ----------
    flow:
        Owning flow identity.
    kind:
        DATA or ACK.
    seq:
        For DATA: packet number within the flow.  For ACK: unused (0).
    size:
        Wire size in bytes (MSS for data, 40 for ACKs).
    sent_at:
        Time the packet was (last) transmitted by the sender; echoed back in
        ACKs for RTT sampling.
    ack_next:
        For ACK packets: cumulative next-expected packet number.
    echo_ts:
        For ACK packets: ``sent_at`` of the data packet that triggered this
        ACK (Karn-friendly RTT sampling uses it only for non-retransmits).
    retransmit:
        True if this transmission is a retransmission.
    ecn_capable:
        Data packets: sender negotiated ECN (ECT codepoint).
    ce:
        Data packets: Congestion Experienced mark set by an AQM.
    ecn_echo:
        ACK packets: the receiver saw CE on the triggering segment.
    sack:
        For ACK packets: up to three SACK ranges ``(start, end)`` (end
        exclusive, in packet numbers) above ``ack_next``, lowest first —
        the receiver's out-of-order blocks, as Linux TCP reports them.
    uid:
        Globally unique packet id, handy for tracing.
    """

    flow: FlowId
    kind: PacketKind
    seq: int
    size: int
    sent_at: float
    ack_next: int = 0
    echo_ts: float = 0.0
    echo_retransmit: bool = False
    retransmit: bool = False
    ecn_capable: bool = False
    ce: bool = False
    ecn_echo: bool = False
    sack: tuple[tuple[int, int], ...] = ()
    uid: int = field(default_factory=lambda: next(_packet_ids))

    @classmethod
    def data(
        cls,
        flow: FlowId,
        seq: int,
        sent_at: float,
        *,
        size: int = MSS,
        retransmit: bool = False,
        ecn_capable: bool = False,
    ) -> "Packet":
        """Construct a data packet."""
        return cls(
            flow=flow,
            kind=PacketKind.DATA,
            seq=seq,
            size=size,
            sent_at=sent_at,
            retransmit=retransmit,
            ecn_capable=ecn_capable,
        )

    @classmethod
    def ack(
        cls,
        flow: FlowId,
        ack_next: int,
        sent_at: float,
        *,
        echo_ts: float,
        echo_retransmit: bool,
        sack: tuple[tuple[int, int], ...] = (),
        ecn_echo: bool = False,
    ) -> "Packet":
        """Construct a pure ACK for ``flow`` (sent receiver → sender)."""
        return cls(
            flow=flow,
            kind=PacketKind.ACK,
            seq=0,
            size=ACK_SIZE,
            sent_at=sent_at,
            ack_next=ack_next,
            echo_ts=echo_ts,
            echo_retransmit=echo_retransmit,
            sack=sack,
            ecn_echo=ecn_echo,
        )

    @property
    def is_data(self) -> bool:
        """True for data packets."""
        return self.kind is PacketKind.DATA

    @property
    def is_ack(self) -> bool:
        """True for pure ACKs."""
        return self.kind is PacketKind.ACK
