"""Chunk-based adaptive-bitrate video client (§6.4.1's workload model).

Stands in for the paper's real YouTube/Netflix sessions inside Mahimahi:
a client fetches fixed-duration chunks over TCP, choosing the next chunk's
bitrate with a buffer-based rate-adaptation rule (BBA-style), and plays
chunks back in real time.  The service's transport matters: YouTube ≈ BBR,
Netflix ≈ New Reno (§3.5); pass ``cc`` accordingly.

QoE outputs: average quality level / bitrate, rebuffering time, and number
of quality switches — the ingredients of Figure 7a and Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.endpoint import FlowDemux, TcpSender
from repro.net.packet import FlowId
from repro.wiring import wire_flow
from repro.sim.simulator import Simulator
from repro.units import MSS, mbps

#: A YouTube-like bitrate ladder, Mbit/s (240p .. 1080p).
DEFAULT_LADDER_MBPS = (0.3, 0.75, 1.2, 1.85, 2.85, 4.3)


@dataclass
class VideoConfig:
    """ABR client knobs."""

    ladder_mbps: tuple[float, ...] = DEFAULT_LADDER_MBPS
    chunk_seconds: float = 4.0
    #: Buffer level below which the client panics to the lowest quality.
    reservoir_seconds: float = 5.0
    #: Buffer level at which the client requests the highest quality.
    cushion_seconds: float = 20.0
    #: Stop fetching ahead once this much content is buffered.
    max_buffer_seconds: float = 30.0
    #: Total session length in chunks (None = keep fetching forever).
    total_chunks: int | None = None
    cc: str = "bbr"
    rtt: float = 0.04


@dataclass
class VideoStats:
    """Per-session QoE accounting."""

    chunks_fetched: int = 0
    quality_history: list[int] = field(default_factory=list)
    rebuffer_seconds: float = 0.0
    rebuffer_events: int = 0
    quality_switches: int = 0
    fetch_times: list[float] = field(default_factory=list)

    def average_quality(self) -> float:
        """Mean ladder index over fetched chunks (0 = lowest)."""
        if not self.quality_history:
            return 0.0
        return sum(self.quality_history) / len(self.quality_history)

    def average_bitrate(self, ladder_mbps: tuple[float, ...]) -> float:
        """Mean selected bitrate in Mbit/s."""
        if not self.quality_history:
            return 0.0
        return sum(ladder_mbps[q] for q in self.quality_history) / len(
            self.quality_history
        )


class VideoSession:
    """One ABR video stream inside an aggregate.

    Chunks are fetched back-to-back as finite TCP flows in a single slot
    (successive incarnations), so the limiter sees one long-lived video
    "flow" in one queue.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        ingress: object,
        demux: FlowDemux,
        config: VideoConfig | None = None,
        aggregate: int = 0,
        slot: int = 0,
        start: float = 0.0,
    ) -> None:
        self._sim = sim
        self._ingress = ingress
        self._demux = demux
        self.config = config or VideoConfig()
        self._aggregate = aggregate
        self._slot = slot
        self.stats = VideoStats()

        self._buffer = 0.0  # seconds of content buffered
        self._playing = False
        self._last_buffer_update = start
        self._incarnation = 0
        self._fetch_started_at = 0.0
        self._current_quality = 0
        self._done = False
        sim.schedule_at(max(start, sim.now), self._fetch_next)

    @property
    def buffer_seconds(self) -> float:
        """Current playback buffer level (drained to 'now')."""
        self._drain_buffer()
        return self._buffer

    @property
    def done(self) -> bool:
        """True when a finite session has fetched all its chunks."""
        return self._done

    # ------------------------------------------------------------------
    # Playback model
    # ------------------------------------------------------------------

    def _drain_buffer(self) -> None:
        now = self._sim.now
        elapsed = now - self._last_buffer_update
        self._last_buffer_update = now
        if not self._playing or elapsed <= 0:
            return
        if self._buffer >= elapsed:
            self._buffer -= elapsed
        else:
            stall = elapsed - self._buffer
            if self._buffer > 0 or stall > 0:
                self.stats.rebuffer_seconds += stall
            self._buffer = 0.0

    # ------------------------------------------------------------------
    # ABR decision (buffer-based, BBA-style)
    # ------------------------------------------------------------------

    def _choose_quality(self) -> int:
        cfg = self.config
        level_count = len(cfg.ladder_mbps)
        buf = self.buffer_seconds
        if buf <= cfg.reservoir_seconds:
            return 0
        if buf >= cfg.cushion_seconds:
            return level_count - 1
        frac = (buf - cfg.reservoir_seconds) / (
            cfg.cushion_seconds - cfg.reservoir_seconds
        )
        return min(int(frac * level_count), level_count - 1)

    # ------------------------------------------------------------------
    # Fetch loop
    # ------------------------------------------------------------------

    def _fetch_next(self) -> None:
        cfg = self.config
        if self._done:
            return
        if (
            cfg.total_chunks is not None
            and self.stats.chunks_fetched >= cfg.total_chunks
        ):
            self._done = True
            return
        if self.buffer_seconds >= cfg.max_buffer_seconds:
            # Buffer full: wait until a chunk's worth has played out.
            self._sim.schedule(cfg.chunk_seconds / 2.0, self._fetch_next)
            return

        quality = self._choose_quality()
        if self.stats.quality_history and quality != self._current_quality:
            self.stats.quality_switches += 1
        self._current_quality = quality

        chunk_bytes = mbps(cfg.ladder_mbps[quality]) * cfg.chunk_seconds
        packets = max(int(chunk_bytes / MSS), 1)
        flow = FlowId(self._aggregate, self._slot, self._incarnation)
        self._incarnation += 1
        self._fetch_started_at = self._sim.now
        self.stats.quality_history.append(quality)
        wire_flow(
            self._sim,
            flow,
            cc=cfg.cc,
            rtt=cfg.rtt,
            ingress=self._ingress,
            demux=self._demux,
            packets=packets,
            start=self._sim.now,
            on_complete=self._on_chunk_done,
        )

    def _on_chunk_done(self, sender: TcpSender, now: float) -> None:
        del sender
        was_stalled = self._playing and self.buffer_seconds <= 0
        self._drain_buffer()
        self._buffer += self.config.chunk_seconds
        self.stats.chunks_fetched += 1
        self.stats.fetch_times.append(now - self._fetch_started_at)
        if was_stalled:
            self.stats.rebuffer_events += 1
        if not self._playing:
            self._playing = True  # startup complete: playback begins
        self._fetch_next()
