"""Flow specifications consumed by the scenario builder."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OnOffSpec:
    """An on-off flow: bursts of ``burst_packets_mean`` packets (exponential)
    separated by idle periods of ``off_time_mean`` seconds (exponential).

    Each burst is a fresh TCP flow (new incarnation in the same slot), like
    repeated short transfers from one application.
    """

    burst_packets_mean: float
    off_time_mean: float
    min_burst_packets: int = 5

    def __post_init__(self) -> None:
        if self.burst_packets_mean <= 0:
            raise ValueError("burst_packets_mean must be positive")
        if self.off_time_mean < 0:
            raise ValueError("off_time_mean must be non-negative")
        if self.min_burst_packets < 1:
            raise ValueError("min_burst_packets must be >= 1")


@dataclass(frozen=True)
class FlowSpec:
    """One flow slot inside an aggregate.

    Attributes
    ----------
    slot:
        Stable index within the aggregate; the classifier maps it to a
        queue, and on-off incarnations reuse it.
    cc:
        Congestion-control name (reno / cubic / bbr / vegas).
    rtt:
        Base round-trip propagation delay in seconds (the ``netem``-style
        injected latency).
    packets:
        Flow length in MSS packets; ``None`` = backlogged until the end.
    start:
        Absolute start time.
    on_off:
        If set, the slot runs repeated short flows per :class:`OnOffSpec`
        (``packets`` is ignored).
    weight:
        Share weight used by weighted policies.
    ecn:
        Negotiate ECN on this flow's connections.
    """

    slot: int
    cc: str = "reno"
    rtt: float = 0.05
    packets: int | None = None
    start: float = 0.0
    on_off: OnOffSpec | None = None
    weight: float = 1.0
    ecn: bool = False

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValueError("slot must be >= 0")
        if self.rtt <= 0:
            raise ValueError("rtt must be positive")
        if self.packets is not None and self.packets < 1:
            raise ValueError("packets must be >= 1 when given")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
