"""Synthetic web-browsing workload (§6.4.2's page loads).

A page load fetches a set of objects over short parallel TCP flows; the
page-load time (PLT) is when the last object completes.  Object counts and
sizes follow heavy-tailed distributions fitted loosely to published web
measurements (median page ~1.5 MB over ~50 objects; we scale down to keep
scaled runs quick — the *relative* PLTs across schemes are what Figure 7b
compares).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random

from repro.cc.endpoint import FlowDemux, TcpSender
from repro.net.packet import FlowId
from repro.wiring import wire_flow
from repro.sim.simulator import Simulator
from repro.units import MSS


@dataclass
class WebConfig:
    """Page-load model knobs."""

    pages: int = 50
    #: Mean object count per page (geometric-ish).
    objects_per_page_mean: float = 12.0
    #: Log-normal object size parameters (bytes).
    object_size_median: float = 30_000.0
    object_size_sigma: float = 1.0
    #: Maximum concurrent connections (browser-like).
    parallel_connections: int = 6
    #: Think time between pages, seconds (exponential mean).
    think_time_mean: float = 0.5
    cc: str = "cubic"
    rtt: float = 0.04


@dataclass
class PageRecord:
    """One completed page load."""

    index: int
    start: float
    end: float
    objects: int
    total_bytes: int

    @property
    def plt(self) -> float:
        """Page-load time in seconds."""
        return self.end - self.start


@dataclass
class WebStats:
    """Session-level results."""

    pages: list[PageRecord] = field(default_factory=list)

    def plts(self) -> list[float]:
        """Completed page-load times."""
        return [p.plt for p in self.pages]


class WebSession:
    """Sequential page loads over short parallel flows in one slot."""

    def __init__(
        self,
        sim: Simulator,
        *,
        ingress: object,
        demux: FlowDemux,
        rng: Random,
        config: WebConfig | None = None,
        aggregate: int = 0,
        slot: int = 0,
        start: float = 0.0,
    ) -> None:
        self._sim = sim
        self._ingress = ingress
        self._demux = demux
        self._rng = rng
        self.config = config or WebConfig()
        self._aggregate = aggregate
        self._slot = slot
        self.stats = WebStats()

        self._incarnation = 0
        self._page_index = 0
        self._pending_objects: list[int] = []  # packet counts
        self._inflight = 0
        self._page_start = 0.0
        self._page_bytes = 0
        self._page_objects = 0
        sim.schedule_at(max(start, sim.now), self._start_page)

    @property
    def done(self) -> bool:
        """True when all configured pages have loaded."""
        return len(self.stats.pages) >= self.config.pages

    def _start_page(self) -> None:
        if self.done:
            return
        cfg = self.config
        count = max(1, int(self._rng.expovariate(1.0 / cfg.objects_per_page_mean)))
        mu = math.log(cfg.object_size_median)
        sizes = [
            max(int(self._rng.lognormvariate(mu, cfg.object_size_sigma)), 400)
            for _ in range(count)
        ]
        self._pending_objects = [max(1, -(-s // MSS)) for s in sizes]
        self._page_start = self._sim.now
        self._page_bytes = sum(sizes)
        self._page_objects = count
        self._inflight = 0
        self._pump()

    def _pump(self) -> None:
        cfg = self.config
        while self._pending_objects and self._inflight < cfg.parallel_connections:
            packets = self._pending_objects.pop()
            flow = FlowId(self._aggregate, self._slot, self._incarnation)
            self._incarnation += 1
            self._inflight += 1
            wire_flow(
                self._sim,
                flow,
                cc=cfg.cc,
                rtt=cfg.rtt,
                ingress=self._ingress,
                demux=self._demux,
                packets=packets,
                start=self._sim.now,
                on_complete=self._on_object_done,
            )

    def _on_object_done(self, sender: TcpSender, now: float) -> None:
        del sender
        self._inflight -= 1
        if self._pending_objects:
            self._pump()
            return
        if self._inflight > 0:
            return
        # Page complete.
        self.stats.pages.append(
            PageRecord(
                index=self._page_index,
                start=self._page_start,
                end=now,
                objects=self._page_objects,
                total_bytes=self._page_bytes,
            )
        )
        self._page_index += 1
        if not self.done:
            think = self._rng.expovariate(1.0 / self.config.think_time_mean) \
                if self.config.think_time_mean > 0 else 0.0
            self._sim.schedule(think, self._start_page)
