"""The §6.1 rate-enforcement workload generator.

The paper enforces rates on 100 flow aggregates.  Aggregates are split:

* half *homogeneous* (every flow shares one CC algorithm and one RTT),
  half *heterogeneous* (mixed CCs, mixed RTTs drawn from 2–50 ms);
* within each half, a third of the aggregates carry only backlogged
  flows, a third only short on-and-off flows, and a third both.

Flow sizes for on-off slots range from tens of KB to a few MB (the paper:
"10s of KBs to 100s of MBs"; the upper end is scaled by ``size_scale`` so
scaled-down runs finish — at full scale pass ``size_scale=100``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.units import MSS, ms
from repro.workload.spec import FlowSpec, OnOffSpec

#: CC algorithms in the §6.1 mix.
CC_CHOICES = ("reno", "cubic", "bbr", "vegas")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: its enforced rate and flow slots."""

    aggregate_id: int
    rate: float
    flows: tuple[FlowSpec, ...]
    max_rtt: float
    kind: str = "mixed"  # backlogged | onoff | mixed
    homogeneous: bool = False

    @property
    def num_slots(self) -> int:
        """Number of flow slots (= queues the limiter needs)."""
        return len(self.flows)


@dataclass
class Section61Config:
    """Knobs for the §6.1 workload, defaulting to a scaled-down run."""

    num_aggregates: int = 12
    rates: tuple[float, ...] = ()  # filled in __post_init__
    flows_per_aggregate: int = 4
    min_rtt: float = ms(2)
    max_rtt: float = ms(50)
    size_scale: float = 1.0
    horizon: float = 10.0
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.rates:
            from repro.units import mbps

            self.rates = (mbps(1.5), mbps(7.5), mbps(25.0))
        if self.num_aggregates < 1:
            raise ValueError("need at least one aggregate")
        if self.flows_per_aggregate < 1:
            raise ValueError("need at least one flow per aggregate")


def make_section61_aggregates(config: Section61Config) -> list[AggregateSpec]:
    """Generate the aggregate mix deterministically from ``config.seed``."""
    rng = Random(config.seed)
    aggregates: list[AggregateSpec] = []
    kinds = ("backlogged", "onoff", "mixed")
    for agg_id in range(config.num_aggregates):
        rate = config.rates[agg_id % len(config.rates)]
        homogeneous = agg_id % 2 == 0
        kind = kinds[(agg_id // 2) % len(kinds)]
        flows = _make_flows(
            rng,
            config,
            homogeneous=homogeneous,
            kind=kind,
        )
        aggregates.append(
            AggregateSpec(
                aggregate_id=agg_id,
                rate=rate,
                flows=tuple(flows),
                max_rtt=config.max_rtt,
                kind=kind,
                homogeneous=homogeneous,
            )
        )
    return aggregates


def _make_flows(
    rng: Random,
    config: Section61Config,
    *,
    homogeneous: bool,
    kind: str,
) -> list[FlowSpec]:
    n = config.flows_per_aggregate
    shared_cc = rng.choice(CC_CHOICES)
    shared_rtt = rng.uniform(config.min_rtt, config.max_rtt)
    flows: list[FlowSpec] = []
    for slot in range(n):
        cc = shared_cc if homogeneous else rng.choice(CC_CHOICES)
        rtt = shared_rtt if homogeneous else rng.uniform(
            config.min_rtt, config.max_rtt
        )
        if kind == "backlogged":
            on_off = None
        elif kind == "onoff":
            on_off = _make_onoff(rng, config)
        else:
            on_off = _make_onoff(rng, config) if slot % 2 == 1 else None
        flows.append(
            FlowSpec(
                slot=slot,
                cc=cc,
                rtt=rtt,
                packets=None if on_off is None else None,
                start=rng.uniform(0.0, min(1.0, config.horizon / 10.0)),
                on_off=on_off,
            )
        )
    return flows


def _make_onoff(rng: Random, config: Section61Config) -> OnOffSpec:
    # Bursts from tens of KB up to a few MB (scaled): log-uniform draw.
    lo_kb, hi_kb = 30.0, 3000.0 * config.size_scale
    import math

    kb = math.exp(rng.uniform(math.log(lo_kb), math.log(hi_kb)))
    packets = max(int(kb * 1e3 / MSS), 5)
    off = rng.uniform(0.1, 1.0)
    return OnOffSpec(burst_packets_mean=packets, off_time_mean=off)
