"""Workload descriptions and generators."""

from repro.workload.aggregates import (
    AggregateSpec,
    Section61Config,
    make_section61_aggregates,
)
from repro.workload.spec import FlowSpec, OnOffSpec
from repro.workload.video import (
    DEFAULT_LADDER_MBPS,
    VideoConfig,
    VideoSession,
    VideoStats,
)
from repro.workload.web import PageRecord, WebConfig, WebSession, WebStats

__all__ = [
    "AggregateSpec",
    "DEFAULT_LADDER_MBPS",
    "FlowSpec",
    "OnOffSpec",
    "PageRecord",
    "Section61Config",
    "VideoConfig",
    "VideoSession",
    "VideoStats",
    "WebConfig",
    "WebSession",
    "WebStats",
    "make_section61_aggregates",
]
