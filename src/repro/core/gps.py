"""Virtual-time GPS service process for phantom queues.

The reference fluid drain (``service="fluid-ref"``) advances the phantom
counters piecewise: recompute every queue's share, scan every queue for
the piece boundary, subtract every queue's drain — O(N) Python work per
arrival even when the occupied set never changes.  This module is the
O(log N) replacement (``service="fluid"``): the classic WFQ/GPS
*virtual time* construction, applied per policy-tree node.

Core idea
---------
Within one *linear piece* (a maximal interval with a fixed occupied set)
every scheduling quantity is constant.  For each internal tree node and
each priority class ``p`` of its children we keep a **virtual time**
``V`` that advances at ``(rate assigned to the node) / (active weight in
class p)`` while class ``p`` is the node's winning (lowest active
priority) class, and freezes otherwise.  A child of weight ``w`` then
drains exactly ``w x (V(t1) - V(t0))`` bytes over any interval — no
matter how often *sibling* activations rescale the shares, because those
rescales change only ``dV/dt``, never the per-unit-V share ``w``.

Each queue therefore stores just ``(bytes_at_touch, V_at_touch)`` and its
current length is computed lazily; its future empty time is the fixed
virtual instant ``V_at_touch + bytes/w``, which goes into a per-class
min-heap.  Advancing the drain pops due events (queue empties) in O(log N)
each and otherwise does O(1) work per arrival; nothing ever scans all N
queues.

Structure changes (a queue filling from empty, emptying, or being
reclaimed to empty) settle the affected root-to-leaf path and re-derive
the per-class ``dV/dt`` slopes — O(tree internal nodes + log N), and the
number of such changes is bounded by the number of enqueues, so the whole
drain is amortized O(log N) per packet.

The engine deliberately models *only* the service process.  Magic-byte
watermarks, capacities and cost accounting stay in
:class:`repro.core.phantom.PhantomQueueSet`, which consults the engine
for lengths and activity.
"""

from __future__ import annotations

import heapq

from repro.policy.tree import Leaf, Node, Policy

#: Counters below this many bytes are treated as empty (float hygiene);
#: mirrors :data:`repro.core.phantom._EPSILON`.
_EPSILON = 1e-6


class _Group:
    """One (internal node, priority class) GPS server: the children of a
    node that share service at one priority level."""

    __slots__ = (
        "node", "priority", "v", "slope", "weight", "active_count",
        "heap", "active_internal",
    )

    def __init__(self, node: "_Node", priority: int) -> None:
        self.node = node
        self.priority = priority
        #: Virtual time: cumulative service per unit weight delivered to
        #: this class.  Monotone, advances only while the class is served.
        self.v = 0.0
        #: Current dV/dt (real-time); 0 while frozen.
        self.slope = 0.0
        #: Total weight of currently active members.
        self.weight = 0.0
        self.active_count = 0
        #: Min-heap of (v_finish, seq, epoch, leaf) predicted leaf-empty
        #: events; ``seq`` breaks ties (leaves are not orderable) and the
        #: push-time ``epoch`` lazily invalidates stale entries.
        self.heap: list[tuple[float, int, int, "_Node"]] = []
        #: Active internal (non-leaf) members, for slope propagation.
        self.active_internal: list["_Node"] = []


class _Node:
    """Compiled policy-tree node with virtual-time drain state."""

    __slots__ = (
        "parent", "weight", "priority", "queue", "children", "groups",
        "winning", "active", "active_count", "group",
        "bytes_touch", "v_touch", "epoch",
    )

    def __init__(self, spec: Node, parent: "_Node | None") -> None:
        self.parent = parent
        self.weight = spec.weight
        self.priority = spec.priority
        self.active = False
        #: The parent-side group this node drains against (set by parent).
        self.group: _Group | None = None
        if isinstance(spec, Leaf):
            self.queue: int | None = spec.queue
            self.children: list[_Node] = []
            self.groups: dict[int, _Group] = {}
            self.active_count = 0
            self.winning: _Group | None = None
            # Lazy drain state (leaves only).
            self.bytes_touch = 0.0
            self.v_touch = 0.0
            self.epoch = 0
        else:
            self.queue = None
            self.children = [_Node(c, self) for c in spec.children]
            self.groups = {}
            for child in self.children:
                group = self.groups.get(child.priority)
                if group is None:
                    group = self.groups[child.priority] = _Group(
                        self, child.priority
                    )
                child.group = group
            self.active_count = 0
            self.winning = None
            self.bytes_touch = 0.0
            self.v_touch = 0.0
            self.epoch = 0


class VirtualTimeGps:
    """Virtual-time GPS drain over ``policy`` at cumulative ``rate``.

    The caller drives it with :meth:`advance` (bring the service process
    up to ``now``), :meth:`add` / :meth:`remove` (enqueue/reclaim bytes at
    the current clock) and reads :meth:`length` / :meth:`total` /
    :attr:`drained_bytes` / :attr:`active_mask`.

    ``events`` counts processed queue-empty piece boundaries and
    ``pieces(now)`` reports how many linear pieces an advance spanned —
    the quantity the cost model's ``drain_recomputes`` is pinned to.
    """

    def __init__(self, policy: Policy, rate: float, *, start_time: float) -> None:
        self._policy = policy
        self._rate = rate
        self._root = _Node(policy.root, None)
        n = policy.num_queues
        self._leaves: list[_Node] = [None] * n  # type: ignore[list-item]
        self._index_leaves(self._root)
        #: Static list of internal nodes (event-source groups live here).
        self._internal: list[_Node] = []
        self._collect_internal(self._root)
        self._clock = start_time
        #: Bitmask of occupied queues (bit i set when queue i is active).
        self.active_mask = 0
        #: Total bytes across all queues at the current clock.
        self._total = 0.0
        #: Cumulative bytes drained by the service process.
        self.drained_bytes = 0.0
        #: Monotone tiebreaker for heap entries.
        self._seq = 0

    def _index_leaves(self, node: _Node) -> None:
        if node.queue is not None:
            self._leaves[node.queue] = node
        for child in node.children:
            self._index_leaves(child)

    def _collect_internal(self, node: _Node) -> None:
        if node.children:
            self._internal.append(node)
            for child in node.children:
                self._collect_internal(child)

    # ------------------------------------------------------------------
    # Reads (exact at the current clock)
    # ------------------------------------------------------------------

    @property
    def clock(self) -> float:
        return self._clock

    def length(self, queue: int) -> float:
        """Current bytes in ``queue``; settles its lazy drain state."""
        leaf = self._leaves[queue]
        if not leaf.active:
            # Inactive leaves hold at most epsilon-sized crumbs (below the
            # occupancy threshold); they do not drain.
            return leaf.bytes_touch
        group = leaf.group
        assert group is not None
        drained = leaf.weight * (group.v - leaf.v_touch)
        if drained > 0.0:
            remaining = leaf.bytes_touch - drained
            if remaining < 0.0:
                remaining = 0.0
            leaf.bytes_touch = remaining
            leaf.v_touch = group.v
        return leaf.bytes_touch

    def peek_length(self, queue: int) -> float:
        """Current bytes in ``queue`` *without* settling its lazy state.

        Pure read for observers (the invariant checker): computes the
        drain since last touch but writes nothing back, so probing a run
        leaves its float trajectory bit-identical to an unprobed one.
        """
        leaf = self._leaves[queue]
        if not leaf.active:
            return leaf.bytes_touch
        group = leaf.group
        assert group is not None
        remaining = leaf.bytes_touch - leaf.weight * (group.v - leaf.v_touch)
        return remaining if remaining > 0.0 else 0.0

    def group_virtual_times(self) -> list[float]:
        """Every (node, priority-class) virtual time, in a stable order.

        Each entry is monotone non-decreasing over the life of the run —
        the GPS construction's core invariant, exposed for the checker.
        """
        return [
            node.groups[priority].v
            for node in self._internal
            for priority in sorted(node.groups)
        ]

    def total(self) -> float:
        """Total bytes across all queues, O(1)."""
        return self._total

    # ------------------------------------------------------------------
    # Service process
    # ------------------------------------------------------------------

    def advance(self, now: float) -> int:
        """Drain up to ``now``; returns the number of linear pieces spanned
        (queue-empty boundaries crossed, plus the final partial piece while
        anything was occupied) — the reference loop's recompute count."""
        if now == self._clock:
            # Zero-width advance (repeat arrivals at one instant): no
            # virtual time elapses, and a valid queue-empty event at
            # exactly the current clock cannot exist — an active leaf's
            # finish time is strictly in the future (positive bytes /
            # positive slope), and entries already due were consumed by
            # the advance that reached this clock.  Skipping the scan
            # defers only the lazy stale-entry pops, which the next
            # real advance performs identically.
            return 0
        pieces = 0
        while True:
            event = self._next_event(now)
            if event is None:
                break
            t_event, leaf = event
            self._sync(t_event)
            self._settle_empty(leaf)
            self._deactivate(leaf)
            self._recompute_slopes()
            pieces += 1
        if self._clock < now:
            if self.active_mask:
                pieces += 1
            self._sync(now)
        return pieces

    def _next_event(self, horizon: float) -> tuple[float, _Node] | None:
        """Earliest valid queue-empty event at or before ``horizon``."""
        best: tuple[float, _Node] | None = None
        for node in self._internal:
            group = node.winning
            if group is None or group.slope <= 0.0:
                continue
            heap = group.heap
            while heap:
                v_finish, _seq, epoch, leaf = heap[0]
                if not leaf.active or leaf.epoch != epoch:
                    heapq.heappop(heap)
                    continue
                t_finish = self._clock + (v_finish - group.v) / group.slope
                if t_finish <= horizon and (best is None or t_finish < best[0]):
                    best = (t_finish, leaf)
                break
        return best

    def _sync(self, t: float) -> None:
        """Advance every served group's virtual time (and the running
        total/drained counters) to real time ``t``."""
        dt = t - self._clock
        if dt > 0.0:
            if self.active_mask:
                for node in self._internal:
                    group = node.winning
                    if group is not None and group.slope > 0.0:
                        group.v += group.slope * dt
                drained = self._rate * dt
                if drained > self._total:
                    drained = self._total
                self._total -= drained
                self.drained_bytes += drained
            self._clock = t
        elif dt == 0.0:
            self._clock = t

    def _settle_empty(self, leaf: _Node) -> None:
        """Pin an emptying leaf at exactly zero (no float crumbs)."""
        group = leaf.group
        assert group is not None
        leaf.bytes_touch = 0.0
        leaf.v_touch = group.v

    # ------------------------------------------------------------------
    # Structure changes
    # ------------------------------------------------------------------

    def set_rate(self, rate: float) -> None:
        """Change the cumulative service rate at the current clock.

        The caller must have :meth:`advance`\\ d to the mutation instant
        first.  Only ``dV/dt`` slopes change: every queue's pending
        empty event is a fixed *virtual* instant, so the heap entries
        stay valid and vtime monotonicity is preserved across the
        change — the cheap path live churn takes for rate-only updates.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self._rate = rate
        self._recompute_slopes()

    def add(self, queue: int, size: float) -> None:
        """Enqueue ``size`` bytes into ``queue`` at the current clock."""
        leaf = self._leaves[queue]
        current = self.length(queue)
        leaf.bytes_touch = current + size
        self._total += size
        if leaf.active:
            self._repost(leaf)
        elif leaf.bytes_touch > _EPSILON:
            self._activate(leaf)
            self._recompute_slopes()

    def remove(self, queue: int, size: float) -> None:
        """Take ``size`` bytes out of ``queue`` (magic reclaim) at the
        current clock; deactivates the queue if it empties."""
        leaf = self._leaves[queue]
        current = self.length(queue)
        remaining = current - size
        if remaining < _EPSILON:
            remaining = 0.0
        self._total -= current - remaining
        if self._total < 0.0:
            self._total = 0.0
        leaf.bytes_touch = remaining
        if remaining == 0.0 and leaf.active:
            self._deactivate(leaf)
            self._recompute_slopes()
        elif leaf.active:
            self._repost(leaf)

    def _repost(self, leaf: _Node) -> None:
        """Refresh a live leaf's predicted empty event after its length
        changed (its old heap entry is lazily discarded by the epoch)."""
        group = leaf.group
        assert group is not None
        leaf.v_touch = group.v
        leaf.epoch += 1
        self._seq += 1
        v_finish = group.v + leaf.bytes_touch / leaf.weight
        heapq.heappush(group.heap, (v_finish, self._seq, leaf.epoch, leaf))

    def _activate(self, leaf: _Node) -> None:
        self.active_mask |= 1 << leaf.queue  # type: ignore[operator]
        leaf.active = True
        self._repost(leaf)
        node: _Node = leaf
        while True:
            group = node.group
            parent = node.parent
            if parent is None:
                break
            group.weight += node.weight
            group.active_count += 1
            if node.children:
                group.active_internal.append(node)
            parent.active_count += 1
            if parent.winning is None or group.priority < parent.winning.priority:
                parent.winning = group
            if parent.active:
                break
            parent.active = True
            node = parent

    def _deactivate(self, leaf: _Node) -> None:
        self.active_mask &= ~(1 << leaf.queue)  # type: ignore[operator]
        leaf.active = False
        leaf.epoch += 1
        if self.active_mask == 0:
            # Everything is empty: kill accumulated float crumbs so the
            # next busy period starts from an exact zero.
            self._total = 0.0
        node: _Node = leaf
        while True:
            group = node.group
            parent = node.parent
            if parent is None:
                break
            group.weight -= node.weight
            group.active_count -= 1
            if node.children:
                group.active_internal.remove(node)
            if group.active_count == 0:
                group.weight = 0.0
            parent.active_count -= 1
            if group.active_count == 0 and parent.winning is group:
                parent.winning = self._best_group(parent)
            if parent.active_count > 0:
                break
            parent.active = False
            node = parent

    @staticmethod
    def _best_group(node: _Node) -> _Group | None:
        best: _Group | None = None
        for group in node.groups.values():
            if group.active_count > 0 and (
                best is None or group.priority < best.priority
            ):
                best = group
        return best

    def _recompute_slopes(self) -> None:
        """Re-derive every class's dV/dt after a structure change.

        O(internal nodes): walks only the served spine(s) of the tree;
        leaf counts never enter.
        """
        for node in self._internal:
            for group in node.groups.values():
                group.slope = 0.0
        if self.active_mask == 0:
            return
        stack: list[tuple[_Node, float]] = [(self._root, self._rate)]
        while stack:
            node, rate = stack.pop()
            group = node.winning
            if group is None or group.weight <= 0.0:
                continue
            group.slope = rate / group.weight
            for child in group.active_internal:
                stack.append((child, child.weight * group.slope))
