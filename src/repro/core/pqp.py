"""PQP: the phantom-queue policer (§3).

An arriving packet is classified to a phantom queue; if the queue has
capacity for the packet's size (after applying pending phantom dequeues)
the real packet is forwarded immediately and a phantom copy enqueued,
otherwise it is dropped.  No packets are buffered; no dequeue timers run.
"""

from __future__ import annotations

from typing import Callable

from repro.churn import PolicyUpdate, UpdateRejected, reclassify
from repro.classify.classifier import FlowClassifier
from repro.core.phantom import PhantomQueueSet
from repro.limiters.base import RateLimiter
from repro.limiters.costs import Op
from repro.net.packet import Packet
from repro.policy.tree import Policy
from repro.sim.simulator import Simulator


class PQP(RateLimiter):
    """Policer with multiple phantom queues.

    Parameters
    ----------
    rate:
        Cumulative enforced rate, bytes/second.
    policy:
        Rate-sharing policy across phantom queues.
    classifier:
        Flow-to-queue mapping; must cover ``policy.num_queues``.
    queue_bytes:
        Phantom buffer size per queue — either a scalar applied to every
        queue or a per-queue list.  §3.5: must be at least the Reno
        requirement ``BDP^2/18 x MSS`` for correct steady-state rates.
    service:
        Phantom service discipline: ``"fluid"`` (GPS idealization via the
        virtual-time engine, the default), ``"fluid-ref"`` (the reference
        piecewise loop, byte-equivalent up to float rounding) or
        ``"quantum"`` (batched DRR dequeues, the paper's literal
        mechanism) — see :class:`~repro.core.phantom.PhantomQueueSet`.
    ecn_mark_fraction:
        Optional AQM extension (§3.3 permits arrival-time AQM on phantom
        queues): ECN-capable packets accepted while the queue occupancy
        exceeds this fraction of capacity are CE-marked instead of waiting
        for tail drops — early congestion signals without packet loss.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        rate: float,
        policy: Policy,
        classifier: FlowClassifier,
        queue_bytes: float | list[float],
        service: str = "fluid",
        ecn_mark_fraction: float | None = None,
        name: str = "pqp",
    ) -> None:
        super().__init__(sim, name=name)
        if classifier.num_queues != policy.num_queues:
            raise ValueError(
                f"classifier has {classifier.num_queues} queues but policy "
                f"covers {policy.num_queues}"
            )
        if isinstance(queue_bytes, (int, float)):
            capacities = [float(queue_bytes)] * policy.num_queues
        else:
            capacities = [float(b) for b in queue_bytes]
        if ecn_mark_fraction is not None and not 0 < ecn_mark_fraction <= 1:
            raise ValueError(
                f"ecn_mark_fraction must be in (0, 1], got {ecn_mark_fraction!r}"
            )
        self._classifier = classifier
        self._ecn_mark_fraction = ecn_mark_fraction
        self.ecn_marked_packets = 0
        self.queues = PhantomQueueSet(
            policy, rate, capacities, start_time=sim.now, service=service
        )

    @property
    def rate(self) -> float:
        """Enforced aggregate rate in bytes/second."""
        return self.queues.rate

    @property
    def num_queues(self) -> int:
        """Number of phantom queues."""
        return self.queues.num_queues

    def _stage_update(self, update: PolicyUpdate) -> Callable[[], None] | None:
        """Validate a live reconfiguration; return its commit thunk.

        Pure: every check runs against plain parameters (building a
        candidate :class:`Policy` has no side effects on the limiter),
        so a rejection leaves all state — including the lazy phantom
        drain — byte-identical.
        """
        if update.is_noop:
            return None

        def reject(reason: str) -> None:
            raise UpdateRejected(self.name, reason)

        rate = update.rate
        if rate is not None and not rate > 0:
            reject(f"rate must be positive, got {rate!r}")
        policy = update.policy
        if policy is not None and not isinstance(policy, Policy):
            reject(f"policy must be a Policy, got {type(policy).__name__}")
        if policy is not None and (
            update.weights is not None or update.priorities is not None
        ):
            reject("policy and weights/priorities are mutually exclusive")
        if policy is None and (
            update.weights is not None or update.priorities is not None
        ):
            weights = update.weights
            priorities = update.priorities
            if (
                weights is not None
                and priorities is not None
                and len(weights) != len(priorities)
            ):
                reject(
                    f"weights cover {len(weights)} queues but priorities "
                    f"cover {len(priorities)}"
                )
            try:
                if priorities is not None:
                    policy = Policy.prioritized(
                        priorities, list(weights) if weights else None
                    )
                else:
                    assert weights is not None
                    policy = Policy.weighted(weights)
            except ValueError as exc:
                reject(str(exc))

        n_cur = self.num_queues
        n_new = policy.num_queues if policy is not None else n_cur
        caps: list[float] | None = None
        capacities = update.capacities
        if capacities is not None:
            if isinstance(capacities, (int, float)):
                caps = [float(capacities)] * n_new
            else:
                caps = [float(c) for c in capacities]
                if len(caps) != n_new:
                    reject(f"need {n_new} capacities, got {len(caps)}")
            if any(c <= 0 for c in caps):
                reject("capacities must be positive")
        elif n_new != n_cur:
            reject(
                f"queue count changed ({n_cur} -> {n_new}) without capacities"
            )
        new_classifier = None
        if n_new != n_cur:
            new_classifier = reclassify(self._classifier, n_new)
            if new_classifier is None:
                reject(
                    f"classifier {type(self._classifier).__name__} cannot "
                    f"be rebuilt for {n_new} queues"
                )

        def commit() -> None:
            now = self._sim.now
            self.queues.reconfigure(
                now, policy=policy, rate=rate, capacities=caps
            )
            if new_classifier is not None:
                self._classifier = new_classifier
            self._after_reconfigure(now)

        return commit

    def _after_reconfigure(self, now: float) -> None:
        """Hook: per-scheme state migration after the phantom commit
        (BC-PQP closes its accounting windows here)."""
        del now

    def _on_packet(self, packet: Packet) -> None:
        now = self._sim.now
        qi = self._classifier.queue_of(packet.flow)
        self.cost.charge(Op.MAP, 1)  # classification
        before = self.queues.drain_recomputes
        self.queues.advance(now)
        # Counter updates: lazy drain recomputes (amortized) + occupancy
        # check + enqueue increment.  All cache-resident counters.
        # ``drain_recomputes`` counts the *paper's* per-packet drain work
        # (linear pieces / phantom dequeues), which every service
        # discipline reports identically — the modeled cost is pinned to
        # the mechanism, not to how much Python bookkeeping the optimized
        # engines skip (see repro.limiters.costs).
        self.cost.charge(Op.ALU, 3 + 2 * (self.queues.drain_recomputes - before))
        self._arrived(qi, packet, now)
        if self.queues.try_enqueue(qi, packet.size):
            self._accepted(qi, packet, now)
            if (
                self._ecn_mark_fraction is not None
                and packet.ecn_capable
                and self.queues.length(qi)
                > self._ecn_mark_fraction * self.queues.capacity(qi)
            ):
                packet.ce = True
                self.ecn_marked_packets += 1
            self._forward(packet)
        else:
            self._drop(packet, queue=qi)

    def receive_batch(self, packets: list[Packet]) -> None:
        """Fused batch entry point: decide every packet in one tight
        loop, then forward the accepted ones downstream in one call.

        Safe because the decision path (classify, advance, hooks,
        try_enqueue, ECN mark) reserves no simulator seqs — so running
        all decisions before any forwarding assigns downstream seqs
        exactly as the unbatched engine would (see DESIGN.md).  Cost
        charges are integer-valued and commutative, so they accumulate
        locally and post once per batch.
        """
        n = len(packets)
        stats = self.stats
        stats.arrived_packets += n
        queues = self.queues
        queue_of = self._classifier.queue_of
        advance = queues.advance
        try_enqueue = queues.try_enqueue
        now = self._sim._now
        fraction = self._ecn_mark_fraction
        cls = type(self)
        arrived_hook = None if cls._arrived is PQP._arrived else self._arrived
        accepted_hook = None if cls._accepted is PQP._accepted else self._accepted
        accepted = self._accept_scratch
        accepted.clear()
        append = accepted.append
        arrived_bytes = 0
        alu = 0
        drops = 0
        drop_bytes = 0
        for packet in packets:
            size = packet.size
            arrived_bytes += size
            qi = queue_of(packet.flow)
            before = queues.drain_recomputes
            advance(now)
            alu += 3 + 2 * (queues.drain_recomputes - before)
            if arrived_hook is not None:
                arrived_hook(qi, packet, now)
            if try_enqueue(qi, size):
                if accepted_hook is not None:
                    accepted_hook(qi, packet, now)
                if (
                    fraction is not None
                    and packet.ecn_capable
                    and queues.length(qi) > fraction * queues.capacity(qi)
                ):
                    packet.ce = True
                    self.ecn_marked_packets += 1
                append(packet)
            else:
                drops += 1
                drop_bytes += size
                per_queue = stats.per_queue_drops
                per_queue[qi] = per_queue.get(qi, 0) + 1
        stats.arrived_bytes += arrived_bytes
        cost = self.cost
        cost.charge(Op.MAP, n)
        cost.charge(Op.ALU, alu)
        if drops:
            stats.dropped_packets += drops
            stats.dropped_bytes += drop_bytes
        if accepted:
            self._forward_batch(accepted)

    def _arrived(self, queue: int, packet: Packet, now: float) -> None:
        """Hook: every arrival, accepted or not (BC-PQP's idle detection)."""
        del queue, packet, now

    def _accepted(self, queue: int, packet: Packet, now: float) -> None:
        """Hook for subclasses (BC-PQP's window accounting)."""
        del queue, packet, now
