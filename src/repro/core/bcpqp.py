"""BC-PQP: burst-controlled phantom-queue policing (§4).

Each phantom queue tracks the bytes it *accepted* during the current
tumbling window of length ``T``.  On every acceptance the queue's expected
dequeue ``X_i = r*_i x T`` is computed from the policy tree over the
currently active queues; if accepted bytes exceed ``theta_plus x X_i`` the
queue is vacuously filled to capacity with *magic* bytes, forcing early
drops and pushing the flow into its steady state without the slow-start
burst.  At window boundaries, a queue that accepted less than
``theta_minus x X_i`` has its magic bytes reclaimed so a finishing flow's
share is immediately reusable.

Because ``r*_i`` tracks the set of active queues, the scheme auto-tunes:
no per-flow bucket sizing is ever needed (§4's design insights).
"""

from __future__ import annotations

from repro.classify.classifier import FlowClassifier
from repro.core.pqp import PQP
from repro.limiters.costs import Op
from repro.net.packet import Packet
from repro.policy.tree import Policy
from repro.sim.simulator import Simulator
from repro.sim.timer import Timer
from repro.units import MSS, ms

_TWO_MSS = 2.0 * MSS


class BCPQP(PQP):
    """Burst-controlled PQP.

    Parameters (beyond :class:`~repro.core.pqp.PQP`)
    ------------------------------------------------
    theta_plus:
        Upper threshold multiplier (paper default 1.5 — Reno's 4r/3 upper
        steady-state bound with margin).
    theta_minus:
        Lower threshold multiplier (paper default 0.5 — Reno's 2r/3 bound
        with margin).
    period:
        Window length ``T`` (paper default 100 ms ≈ p99 RTT).
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        rate: float,
        policy: Policy,
        classifier: FlowClassifier,
        queue_bytes: float | list[float],
        theta_plus: float = 1.5,
        theta_minus: float = 0.5,
        period: float = ms(100),
        service: str = "fluid",
        ecn_mark_fraction: float | None = None,
        name: str = "bcpqp",
    ) -> None:
        super().__init__(
            sim,
            rate=rate,
            policy=policy,
            classifier=classifier,
            queue_bytes=queue_bytes,
            service=service,
            ecn_mark_fraction=ecn_mark_fraction,
            name=name,
        )
        if not 0 <= theta_minus < theta_plus:
            raise ValueError(
                f"need 0 <= theta_minus < theta_plus, got "
                f"{theta_minus!r}, {theta_plus!r}"
            )
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.theta_plus = theta_plus
        self.theta_minus = theta_minus
        self.period = period

        n = self.num_queues
        self._accepted_window = [0.0] * n
        self._arrived_window = [0.0] * n
        self._window_start = [sim.now] * n
        self.magic_fills = 0
        self.magic_reclaims = 0
        # A repeating sweep both rolls the windows and applies the lower
        # threshold even when a queue stops receiving packets entirely —
        # that immediacy is why BC-PQP reallocates a finished flow's share
        # faster than a plain PQP with huge queues (§4 "Why do we need to
        # drain the magic packets?").  The callback binds the instance
        # attribute so a validate-wrapped _on_window_sweep is honoured.
        self._sweep_timer = Timer(sim, lambda: self._on_window_sweep())
        self._sweep_timer.schedule_after(self.period)

    def stop(self) -> None:
        """Cancel the periodic window sweep (for teardown in tests)."""
        self._sweep_timer.cancel()

    def _after_reconfigure(self, now: float) -> None:
        """Close the accounting windows at the mutation instant.

        A committed reconfiguration invalidates every window's budget
        basis (``X_i = r*_i x T`` changes with the rate, the tree and
        the queue count), so the partial windows are discarded and all
        queues restart a fresh window at ``now`` — sized for the new
        queue count.  The periodic sweep keeps running untouched.
        """
        n = self.num_queues
        self._accepted_window = [0.0] * n
        self._arrived_window = [0.0] * n
        self._window_start = [now] * n

    def expected_window_bytes(self, queue: int) -> float:
        """``X_i = r*_i x T`` under the current active set."""
        return self.queues.fluid_rate_of(queue) * self.period

    def accepted_window_bytes(self, queue: int) -> float:
        """Bytes accepted by ``queue`` in the current window."""
        return self._accepted_window[queue]

    def arrived_window_bytes(self, queue: int) -> float:
        """Bytes that arrived for ``queue`` in the current window."""
        return self._arrived_window[queue]

    def window_age(self, queue: int, now: float) -> float:
        """Age of ``queue``'s current tumbling window at time ``now``.

        Windows roll on the queue's own clock (arrivals and the periodic
        sweep), so immediately after either event every touched queue's
        age is below ``period`` — the accounting invariant the checker
        asserts.
        """
        return now - self._window_start[queue]

    def _arrived(self, queue: int, packet: Packet, now: float) -> None:
        self._maybe_roll_window(queue, now)
        self._arrived_window[queue] += packet.size

    def _maybe_roll_window(self, queue: int, now: float) -> None:
        """Tumble the queue's window once it is a full period old, applying
        the lower-threshold (reclaim) check to the elapsed window.  Windows
        roll on the queue's own clock — fills restart them mid-sweep, and a
        stale window would compare a full period's worth of traffic against
        a single-period budget, triggering spurious fills at steady state.
        """
        elapsed = now - self._window_start[queue]
        if elapsed < self.period:
            return
        rate_i = self.queues.fluid_rate_of(queue)
        floor = self.theta_minus * rate_i * elapsed
        if (
            self._arrived_window[queue] < floor
            and self.queues.magic_bytes(queue) > 0
        ):
            self.queues.reclaim_magic(queue)
            self.magic_reclaims += 1
        self._window_start[queue] = now
        self._accepted_window[queue] = 0.0
        self._arrived_window[queue] = 0.0
        self.cost.charge(Op.ALU, 3)

    def receive_batch(self, packets: list[Packet]) -> None:
        """Fused batch entry point with the BC-PQP window hooks inlined.

        The generic :meth:`PQP.receive_batch` would dispatch
        ``_arrived``/``_accepted`` per packet; this override folds both
        hooks (and ``_maybe_roll_window``) into the decision loop in
        restricted compilable style — flat locals, branches instead of
        ``max()``, cost charges accumulated and posted once.  Float
        operations on the window state happen on the same values in the
        same order as the per-packet hooks, and cost counts are
        integer-valued (commutative), so the fused loop is
        bit-identical to the unbatched path — which stays the executable
        reference via ``_on_packet``.
        """
        n = len(packets)
        stats = self.stats
        stats.arrived_packets += n
        queues = self.queues
        queue_of = self._classifier.queue_of
        advance = queues.advance
        try_enqueue = queues.try_enqueue
        fluid_rate_of = queues.fluid_rate_of
        now = self._sim._now
        fraction = self._ecn_mark_fraction
        period = self.period
        theta_plus = self.theta_plus
        theta_minus = self.theta_minus
        accepted_window = self._accepted_window
        arrived_window = self._arrived_window
        window_start = self._window_start
        accepted = self._accept_scratch
        accepted.clear()
        append = accepted.append
        arrived_bytes = 0
        alu = 0
        drops = 0
        drop_bytes = 0
        for packet in packets:
            size = packet.size
            arrived_bytes += size
            qi = queue_of(packet.flow)
            before = queues.drain_recomputes
            advance(now)
            alu += 3 + 2 * (queues.drain_recomputes - before)
            # _arrived: roll the window on the queue's own clock first.
            elapsed = now - window_start[qi]
            if elapsed >= period:
                floor = theta_minus * fluid_rate_of(qi) * elapsed
                if arrived_window[qi] < floor and queues.magic_bytes(qi) > 0:
                    queues.reclaim_magic(qi)
                    self.magic_reclaims += 1
                window_start[qi] = now
                accepted_window[qi] = 0.0
                arrived_window[qi] = 0.0
                alu += 3
            arrived_window[qi] += size
            if try_enqueue(qi, size):
                # _accepted: upper-threshold (magic fill) check.
                acc = accepted_window[qi] + size
                accepted_window[qi] = acc
                x_i = fluid_rate_of(qi) * period
                alu += 3
                ceiling = theta_plus * x_i
                slack = x_i + _TWO_MSS
                if ceiling < slack:
                    ceiling = slack
                if acc > ceiling:
                    if queues.fill_with_magic(qi) > 0:
                        self.magic_fills += 1
                        alu += 2
                    window_start[qi] = now
                    accepted_window[qi] = 0.0
                    arrived_window[qi] = 0.0
                if (
                    fraction is not None
                    and packet.ecn_capable
                    and queues.length(qi) > fraction * queues.capacity(qi)
                ):
                    packet.ce = True
                    self.ecn_marked_packets += 1
                append(packet)
            else:
                drops += 1
                drop_bytes += size
                per_queue = stats.per_queue_drops
                per_queue[qi] = per_queue.get(qi, 0) + 1
        stats.arrived_bytes += arrived_bytes
        cost = self.cost
        cost.charge(Op.MAP, n)
        cost.charge(Op.ALU, alu)
        if drops:
            stats.dropped_packets += drops
            stats.dropped_bytes += drop_bytes
        if accepted:
            self._forward_batch(accepted)

    # ------------------------------------------------------------------
    # PQP hooks
    # ------------------------------------------------------------------

    def _accepted(self, queue: int, packet: Packet, now: float) -> None:
        self._accepted_window[queue] += packet.size
        # Estimate r*_i from the active set (the packet we just enqueued
        # guarantees `queue` itself is active).
        x_i = self.expected_window_bytes(queue)
        self.cost.charge(Op.ALU, 3)
        # Keep at least two packets of slack above the window budget so
        # low-rate queues (X_i of a packet or two) don't trip on
        # packetization granularity — the same reason token buckets are
        # never sized below a couple of MTUs.
        ceiling = max(self.theta_plus * x_i, x_i + 2.0 * MSS)
        if self._accepted_window[queue] > ceiling:
            added = self.queues.fill_with_magic(queue)
            if added > 0:
                self.magic_fills += 1
                self.cost.charge(Op.ALU, 2)
            # Restart this queue's window at the fill so the next lower-
            # threshold check sees a full window of post-fill behaviour
            # (the queue now admits exactly at its drain rate).
            self._window_start[queue] = now
            self._accepted_window[queue] = 0.0
            self._arrived_window[queue] = 0.0

    def _on_window_sweep(self) -> None:
        now = self._sim.now
        self.queues.advance(now)
        self.cost.charge(Op.TIMER, 1)
        # The reclaim watches the flow's *sending* rate (arrivals at the
        # queue, §4: "its sending rate falls below a lower threshold") — a
        # flow whose packets are being dropped at a magic-full queue is
        # still active; only a quiet one is finishing.  The sweep exists
        # for exactly the queues that stopped receiving packets (their
        # windows would otherwise never roll).
        for qi in range(self.num_queues):
            self._maybe_roll_window(qi, now)
        self.cost.charge(Op.ALU, 2 * self.num_queues)
        self._sweep_timer.schedule_after(self.period)
