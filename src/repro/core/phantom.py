"""Phantom queues: simulated buffer occupancy held as byte counters.

A phantom queue never stores packets — its length is a float byte counter
incremented on (accepted) packet arrival and drained at the policy-assigned
service rate.  Draining is *lazy*: counters are brought up to date when the
next packet arrives (§3.1: "phantom dequeues can be batched").

Three service disciplines are provided:

* ``fluid`` (default) — the piecewise-linear GPS process, realized by the
  virtual-time engine (:mod:`repro.core.gps`): per-queue drains are
  evaluated lazily as ``weight x (V(now) - V(touch))`` and piece
  boundaries come off a min-heap of predicted queue-empty times, so each
  arrival costs amortized O(log N) instead of a full O(N) rescan.
* ``fluid-ref`` — the direct piecewise loop (recompute all shares, scan
  all queues per piece).  Byte-equivalent to ``fluid`` up to float
  rounding; kept as the executable specification the property tests
  compare the optimized engine against.
* ``quantum`` — the paper's literal mechanism: batched dequeues of
  MSS-sized phantom packets picked by a hierarchical deficit-round-robin
  scheduler (§3.2 "dequeue phantom packets from the occupied phantom
  queues in a round-robin manner").  Byte-for-byte this converges to the
  fluid shares (property-tested); it exists as an ablation of the
  idealization.  Its scheduler tracks the occupied set incrementally
  (:class:`repro.sched.drr.ActiveSetDrr`) so each phantom dequeue costs
  O(depth) instead of rebuilding an N-element head list.

Regardless of discipline, ``total_length()`` is a running counter (O(1)),
and ``drain_recomputes`` counts *fluid linear pieces / DRR dequeues* — the
paper-modeled amortized drain work — independent of how much Python
bookkeeping the optimized engines actually skip (see
:mod:`repro.limiters.costs`).
"""

from __future__ import annotations

from repro.core.gps import VirtualTimeGps
from repro.policy.tree import Policy
from repro.sched.drr import ActiveSetDrr
from repro.units import MSS

#: Counters below this many bytes are treated as empty (float hygiene).
_EPSILON = 1e-6


class PhantomQueueSet:
    """N phantom queues served at cumulative ``rate`` under ``policy``.

    All mutating entry points take an explicit ``now``; the caller (PQP /
    BC-PQP) advances the fluid drain before inspecting occupancy.

    ``magic`` tracks the portion of each queue's length that is *magic*
    bytes (BC-PQP's vacuous fill, §4).  Magic bytes drain with everything
    else; as a queue drains below its magic watermark the watermark is
    clamped down (paper footnote 5: reclaiming may find fewer magic bytes
    than were added).
    """

    #: Supported service disciplines.
    SERVICES = ("fluid", "fluid-ref", "quantum")

    def __init__(
        self,
        policy: Policy,
        rate: float,
        capacities: list[float],
        *,
        start_time: float = 0.0,
        service: str = "fluid",
        quantum: float = MSS,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if service not in self.SERVICES:
            raise ValueError(
                f"unknown service {service!r}; choose from {self.SERVICES}"
            )
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        n = policy.num_queues
        if len(capacities) != n:
            raise ValueError(f"need {n} capacities, got {len(capacities)}")
        if any(c <= 0 for c in capacities):
            raise ValueError("capacities must be positive")
        self._policy = policy
        self._rate = rate
        self._capacity = [float(c) for c in capacities]
        self._magic = [0.0] * n
        self._clock = start_time
        self.service = service
        self._quantum = float(quantum)
        #: Fluid-piece recomputations / DRR dequeues, for the cost model.
        self.drain_recomputes = 0
        #: Mutation epoch: bumped by every committed :meth:`reconfigure`.
        #: The invariant checker keys its epoch-seam checks off this.
        self.epoch = 0
        #: Bytes removed by reconfiguration (occupancy above a shrunk
        #: capacity, whole removed queues) — the ledger's fourth leg:
        #: in - reclaimed - drained - evicted = total.
        self.evicted_bytes = 0.0
        #: Drained bytes accumulated by engines retired at epoch seams
        #: (the fluid engine is rebuilt on policy changes; the public
        #: counter must stay continuous and monotone across them).
        self._drained_base = 0.0
        #: Virtual-time engine (``fluid``) or eager counters (others).
        self._gps: VirtualTimeGps | None = None
        self._length: list[float] | None = None
        self._drr: ActiveSetDrr | None = None
        if service == "fluid":
            self._gps = VirtualTimeGps(policy, rate, start_time=start_time)
        else:
            self._length = [0.0] * n
            #: Running total so ``total_length()`` never rescans (kept in
            #: lock-step with every enqueue/drain/reclaim below).
            self._total = 0.0
            self._drained = 0.0
            if service == "quantum":
                self._drr = ActiveSetDrr(
                    policy, head_of=self._quantum_head, quantum=quantum
                )
        #: Unspent service budget carried between quantum drains, bytes.
        self._budget = 0.0

    @property
    def num_queues(self) -> int:
        """Number of phantom queues."""
        return self._policy.num_queues

    @property
    def rate(self) -> float:
        """Cumulative phantom service rate, bytes/second."""
        return self._rate

    @property
    def policy(self) -> Policy:
        """The sharing policy tree."""
        return self._policy

    @property
    def drained_bytes(self) -> float:
        """Total bytes drained so far (real + magic)."""
        if self._gps is not None:
            return self._drained_base + self._gps.drained_bytes
        return self._drained

    def capacity(self, queue: int) -> float:
        """Simulated buffer size of ``queue`` in bytes."""
        return self._capacity[queue]

    def length(self, queue: int) -> float:
        """Current phantom occupancy of ``queue`` (advance first!)."""
        if self._gps is not None:
            length = self._gps.length(queue)
            if self._magic[queue] > length:
                self._magic[queue] = length
            return length
        return self._length[queue]

    def peek_length(self, queue: int) -> float:
        """Occupancy of ``queue`` without mutating any lazy drain state.

        The invariant checker probes every queue after every packet; a
        probe must not settle the fluid engine's floats (settling is
        semantically neutral but perturbs last-ulp rounding, and a
        validated run must stay bit-identical to an unvalidated one).
        """
        if self._gps is not None:
            return self._gps.peek_length(queue)
        return self._length[queue]

    def peek_magic(self, queue: int) -> float:
        """Effective magic watermark of ``queue``, without settling.

        The stored watermark is clamped lazily (a queue draining below it
        between packets leaves the raw value stale-high until the next
        settle); the effective value is its clamp against the current
        occupancy.
        """
        magic = self._magic[queue]
        length = self.peek_length(queue)
        return magic if magic < length else length

    def raw_magic(self, queue: int) -> float:
        """The stored (possibly stale-high, never negative) watermark."""
        return self._magic[queue]

    def magic_bytes(self, queue: int) -> float:
        """Current magic-byte watermark of ``queue``."""
        if self._gps is not None:
            # Settle the lazy drain so the watermark clamp is current.
            self.length(queue)
        return self._magic[queue]

    def remaining(self, queue: int) -> float:
        """Free capacity of ``queue`` in bytes."""
        return self._capacity[queue] - self.length(queue)

    def active_flags(self) -> list[bool]:
        """Occupancy flags used for policy share computation."""
        if self._gps is not None:
            mask = self._gps.active_mask
            return [bool(mask >> i & 1) for i in range(self.num_queues)]
        return [length > _EPSILON for length in self._length]

    def active_mask(self) -> int:
        """Occupancy bitmask (bit ``i`` set when queue ``i`` holds data)."""
        if self._gps is not None:
            return self._gps.active_mask
        mask = 0
        for i, length in enumerate(self._length):
            if length > _EPSILON:
                mask |= 1 << i
        return mask

    def total_length(self) -> float:
        """Total phantom bytes across all queues (running total, O(1))."""
        if self._gps is not None:
            return self._gps.total()
        return self._total

    def gps_virtual_times(self) -> list[float] | None:
        """Virtual-time snapshot of the fluid engine (``None`` otherwise).

        Pure read; see :meth:`VirtualTimeGps.group_virtual_times`.
        """
        if self._gps is None:
            return None
        return self._gps.group_virtual_times()

    # ------------------------------------------------------------------
    # Fluid drain
    # ------------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Drain the service process up to time ``now``."""
        if now < self._clock:
            raise ValueError(
                f"time went backwards: {now!r} < {self._clock!r}"
            )
        if self._gps is not None:
            self.drain_recomputes += self._gps.advance(now)
            self._clock = now
            return
        if self._drr is not None:
            self._advance_quantum(now)
            return
        self._advance_fluid_ref(now)

    def _advance_fluid_ref(self, now: float) -> None:
        """The reference piecewise drain: recompute every share and scan
        every queue per linear piece.  O(N) per arrival — kept as the
        executable specification of the fluid service."""
        lengths = self._length
        while now > self._clock:
            active = [length > _EPSILON for length in lengths]
            if not any(active):
                self._clock = now
                break
            rates = self._policy.fluid_rates(active, self._rate)
            self.drain_recomputes += 1
            # The current linear piece ends when a served queue empties.
            horizon = now - self._clock
            dt = horizon
            for i, ri in enumerate(rates):
                if ri > 0:
                    t_empty = lengths[i] / ri
                    if t_empty < dt:
                        dt = t_empty
            for i, ri in enumerate(rates):
                if ri > 0:
                    drained = ri * dt
                    lengths[i] -= drained
                    self._drained += drained
                    self._total -= drained
                    if lengths[i] < _EPSILON:
                        self._total += lengths[i]
                        lengths[i] = 0.0
                    if self._magic[i] > lengths[i]:
                        self._magic[i] = lengths[i]
            if self._total < 0.0:
                self._total = 0.0
            self._clock += dt
        self._clock = max(self._clock, now)

    def _quantum_head(self, queue: int) -> float:
        """Next phantom-packet size of an occupied queue (DRR peek)."""
        length = self._length[queue]
        return length if length < self._quantum else self._quantum

    def _advance_quantum(self, now: float) -> None:
        """Batched DRR dequeues: spend ``rate x dt`` bytes of service in
        scheduler-ordered phantom-packet units (the paper's §3.1 "phantom
        dequeues can be batched and done only when the queue becomes
        full")."""
        lengths = self._length
        self._budget += self._rate * (now - self._clock)
        self._clock = now
        drr = self._drr
        assert drr is not None
        if not drr.any_active():
            # A policer accrues no service while idle: it has no tokens
            # beyond the queue capacities themselves.
            self._budget = 0.0
            return
        quantum = self._quantum
        while self._budget > _EPSILON:
            queue = drr.select()
            if queue is None:
                self._budget = 0.0
                return
            head = lengths[queue]
            if head > quantum:
                head = quantum
            size = min(head, self._budget)
            if size <= _EPSILON:
                return
            drr.charge(size)
            lengths[queue] -= size
            self._drained += size
            self._total -= size
            self._budget -= size
            self.drain_recomputes += 1
            if lengths[queue] < _EPSILON:
                self._total += lengths[queue]
                lengths[queue] = 0.0
                drr.deactivate(queue)
            if self._magic[queue] > lengths[queue]:
                self._magic[queue] = lengths[queue]
        if self._total < 0.0:
            self._total = 0.0

    # ------------------------------------------------------------------
    # Live reconfiguration (policy churn)
    # ------------------------------------------------------------------

    def reconfigure(
        self,
        now: float,
        *,
        policy: Policy | None = None,
        rate: float | None = None,
        capacities: list[float] | None = None,
    ) -> None:
        """Atomically apply a *validated* reconfiguration at time ``now``.

        The caller (the limiter's ``apply_update``) has already rejected
        anything invalid; this method only commits.  Migration rules:

        * The service process is settled at the mutation instant first.
        * Rate-only on the fluid engine changes just the dV/dt slopes
          (:meth:`VirtualTimeGps.set_rate` — heap entries are virtual
          instants and stay valid); lazy engines pick the rate up at the
          next advance, having accrued at the old rate until ``now``.
        * A policy change rebuilds the engine for the new tree and
          re-seeds surviving per-queue occupancy by index.  Removed
          queues' bytes (real and magic) are *evicted* — accounted in
          :attr:`evicted_bytes`, never silently lost — and
          :attr:`drained_bytes` stays continuous via a base accumulator.
          The quantum discipline's unspent service budget is discarded
          at the seam; its DRR active set is rebuilt from scratch.
        * Capacity shrinks clamp occupancy (excess evicted) and re-clamp
          the magic watermarks, so occupancy <= capacity holds
          immediately after the resize.

        Every commit starts a new :attr:`epoch`.  This object's identity
        is stable across reconfigurations (the invariant checker's
        instance-level wrappers stay attached).
        """
        self.advance(now)
        if rate is not None:
            if self._gps is not None and policy is None:
                self._gps.set_rate(rate)
            self._rate = rate
        if policy is not None:
            self._migrate_policy(policy, capacities)
        elif capacities is not None:
            self._clamp_to(capacities)
        self.epoch += 1

    def _migrate_policy(
        self, policy: Policy, capacities: list[float] | None
    ) -> None:
        """Re-seed the service engine for a new tree (settled already)."""
        n_old = self._policy.num_queues
        n_new = policy.num_queues
        if capacities is None and n_new > n_old:
            raise ValueError("queue count grew without capacities")
        carried = [self.length(q) for q in range(n_old)]
        evicted = 0.0
        for q in range(n_new, n_old):
            evicted += carried[q]
        self.evicted_bytes += evicted
        survivors = carried[:n_new]
        magic = self._magic[:n_new]
        if n_new > n_old:
            survivors += [0.0] * (n_new - n_old)
            magic += [0.0] * (n_new - n_old)
        if policy is self._policy:
            # In-place tree edit: flush the memo caches via the version
            # counter.  (Swapping a fresh Policy object is the
            # interning-safe path — see fleet/shard.py — but an edited
            # tree must never serve stale share vectors either.)
            policy.invalidate()
        self._policy = policy
        self._magic = magic
        new_caps = (
            [float(c) for c in capacities]
            if capacities is not None
            else self._capacity[:n_new]
        )
        if self._gps is not None:
            self._drained_base += self._gps.drained_bytes
            self._gps = VirtualTimeGps(policy, self._rate, start_time=self._clock)
            for q, length in enumerate(survivors):
                if length > 0.0:
                    self._gps.add(q, length)
        else:
            self._length = survivors
            total = 0.0
            for length in survivors:
                total += length
            self._total = total
            if self._drr is not None:
                self._drr = ActiveSetDrr(
                    policy, head_of=self._quantum_head, quantum=self._quantum
                )
                self._drr.reseed(
                    q for q, length in enumerate(survivors) if length > _EPSILON
                )
            self._budget = 0.0
        # A resize may ride along with the tree change; enforce the
        # occupancy <= capacity invariant against the new capacities.
        self._clamp_to(new_caps)

    def _clamp_to(self, capacities: list[float]) -> None:
        """Install new capacities, evicting occupancy above them."""
        evicted = 0.0
        for q, cap in enumerate(capacities):
            before = self.length(q)
            if before > cap:
                if self._gps is not None:
                    self._gps.remove(q, before - cap)
                    after = self.length(q)
                else:
                    after = cap if cap > _EPSILON else 0.0
                    if after == 0.0 and self._drr is not None:
                        self._drr.deactivate(q)
                    self._total -= before - after
                    if self._total < 0.0:
                        self._total = 0.0
                    self._length[q] = after
                evicted += before - after
                if self._magic[q] > after:
                    self._magic[q] = after
        self._capacity = [float(c) for c in capacities]
        self.evicted_bytes += evicted

    # ------------------------------------------------------------------
    # Enqueue / magic manipulation (callers advance() first)
    # ------------------------------------------------------------------

    def try_enqueue(self, queue: int, size: float) -> bool:
        """Enqueue ``size`` phantom bytes if they fit; return success."""
        if self._gps is not None:
            # Settle via self.length() so the magic watermark clamps at
            # this instant — new real bytes stack on top of the low-water
            # mark, and a later settle must not clamp magic against them.
            if self.length(queue) + size <= self._capacity[queue] + _EPSILON:
                self._gps.add(queue, size)
                return True
            return False
        if self._length[queue] + size <= self._capacity[queue] + _EPSILON:
            if (
                self._drr is not None
                and self._length[queue] <= _EPSILON
                and self._length[queue] + size > _EPSILON
            ):
                self._drr.activate(queue)
            self._length[queue] += size
            self._total += size
            return True
        return False

    def fill_with_magic(self, queue: int) -> float:
        """Fill ``queue`` to capacity with magic bytes; return bytes added."""
        if self._gps is not None:
            added = self._capacity[queue] - self.length(queue)
            if added > 0:
                self._gps.add(queue, added)
                self._magic[queue] += added
                return added
            return 0.0
        added = self._capacity[queue] - self._length[queue]
        if added > 0:
            if self._drr is not None and self._length[queue] <= _EPSILON:
                self._drr.activate(queue)
            self._length[queue] = self._capacity[queue]
            self._total += added
            self._magic[queue] += added
            return added
        return 0.0

    def reclaim_magic(self, queue: int) -> float:
        """Remove all (remaining) magic bytes from ``queue``."""
        if self._gps is not None:
            length = self.length(queue)
            reclaimable = min(self._magic[queue], length)
            if reclaimable > 0:
                self._gps.remove(queue, reclaimable)
            self._magic[queue] = 0.0
            return reclaimable
        reclaimable = min(self._magic[queue], self._length[queue])
        if reclaimable > 0:
            self._length[queue] -= reclaimable
            self._total -= reclaimable
            if self._length[queue] < _EPSILON:
                self._total += self._length[queue]
                self._length[queue] = 0.0
                if self._drr is not None:
                    self._drr.deactivate(queue)
            if self._total < 0.0:
                self._total = 0.0
        self._magic[queue] = 0.0
        return reclaimable

    def fluid_rates(self) -> list[float]:
        """Current per-queue phantom service rates (after an advance)."""
        return self._policy.fluid_rates(self.active_mask(), self._rate)

    def fluid_rate_of(self, queue: int) -> float:
        """Current phantom service rate of one queue (after an advance).

        O(1) while the occupied set is stable: reads the memoized share
        vector instead of materializing all N rates.
        """
        return self._policy.fluid_rate_of(queue, self.active_mask(), self._rate)
