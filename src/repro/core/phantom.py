"""Phantom queues: simulated buffer occupancy held as byte counters.

A phantom queue never stores packets — its length is a float byte counter
incremented on (accepted) packet arrival and drained at the policy-assigned
service rate.  Draining is *lazy*: counters are brought up to date when the
next packet arrives (§3.1: "phantom dequeues can be batched").

Two service disciplines are provided:

* ``fluid`` (default) — a piecewise-linear GPS process: within each linear
  piece the set of occupied queues is constant, so the policy tree's
  instantaneous shares apply; a piece ends when some queue empties, at
  which point shares are recomputed (work conservation).
* ``quantum`` — the paper's literal mechanism: batched dequeues of
  MSS-sized phantom packets picked by the hierarchical deficit-round-robin
  scheduler (§3.2 "dequeue phantom packets from the occupied phantom
  queues in a round-robin manner").  Byte-for-byte this converges to the
  fluid shares (property-tested); it exists as an ablation of the
  idealization.
"""

from __future__ import annotations

from repro.policy.tree import Policy
from repro.sched.drr import HierarchicalDrrScheduler
from repro.units import MSS

#: Counters below this many bytes are treated as empty (float hygiene).
_EPSILON = 1e-6


class PhantomQueueSet:
    """N phantom queues served at cumulative ``rate`` under ``policy``.

    All mutating entry points take an explicit ``now``; the caller (PQP /
    BC-PQP) advances the fluid drain before inspecting occupancy.

    ``magic`` tracks the portion of each queue's length that is *magic*
    bytes (BC-PQP's vacuous fill, §4).  Magic bytes drain with everything
    else; as a queue drains below its magic watermark the watermark is
    clamped down (paper footnote 5: reclaiming may find fewer magic bytes
    than were added).
    """

    #: Supported service disciplines.
    SERVICES = ("fluid", "quantum")

    def __init__(
        self,
        policy: Policy,
        rate: float,
        capacities: list[float],
        *,
        start_time: float = 0.0,
        service: str = "fluid",
        quantum: float = MSS,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if service not in self.SERVICES:
            raise ValueError(
                f"unknown service {service!r}; choose from {self.SERVICES}"
            )
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        n = policy.num_queues
        if len(capacities) != n:
            raise ValueError(f"need {n} capacities, got {len(capacities)}")
        if any(c <= 0 for c in capacities):
            raise ValueError("capacities must be positive")
        self._policy = policy
        self._rate = rate
        self._capacity = [float(c) for c in capacities]
        self._length = [0.0] * n
        self._magic = [0.0] * n
        self._clock = start_time
        self.service = service
        self._quantum = float(quantum)
        self._drr: HierarchicalDrrScheduler | None = (
            HierarchicalDrrScheduler(policy, quantum=quantum)
            if service == "quantum"
            else None
        )
        #: Unspent service budget carried between quantum drains, bytes.
        self._budget = 0.0
        #: Fluid-piece recomputations / DRR dequeues, for the cost model.
        self.drain_recomputes = 0
        #: Total bytes drained so far (real + magic).
        self.drained_bytes = 0.0

    @property
    def num_queues(self) -> int:
        """Number of phantom queues."""
        return self._policy.num_queues

    @property
    def rate(self) -> float:
        """Cumulative phantom service rate, bytes/second."""
        return self._rate

    @property
    def policy(self) -> Policy:
        """The sharing policy tree."""
        return self._policy

    def capacity(self, queue: int) -> float:
        """Simulated buffer size of ``queue`` in bytes."""
        return self._capacity[queue]

    def length(self, queue: int) -> float:
        """Current phantom occupancy of ``queue`` (advance first!)."""
        return self._length[queue]

    def magic_bytes(self, queue: int) -> float:
        """Current magic-byte watermark of ``queue``."""
        return self._magic[queue]

    def remaining(self, queue: int) -> float:
        """Free capacity of ``queue`` in bytes."""
        return self._capacity[queue] - self._length[queue]

    def active_flags(self) -> list[bool]:
        """Occupancy flags used for policy share computation."""
        return [length > _EPSILON for length in self._length]

    def total_length(self) -> float:
        """Total phantom bytes across all queues."""
        return sum(self._length)

    # ------------------------------------------------------------------
    # Fluid drain
    # ------------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Drain the service process up to time ``now``."""
        if now < self._clock:
            raise ValueError(
                f"time went backwards: {now!r} < {self._clock!r}"
            )
        if self._drr is not None:
            self._advance_quantum(now)
            return
        lengths = self._length
        while now > self._clock:
            active = [length > _EPSILON for length in lengths]
            if not any(active):
                self._clock = now
                break
            rates = self._policy.fluid_rates(active, self._rate)
            self.drain_recomputes += 1
            # The current linear piece ends when a served queue empties.
            horizon = now - self._clock
            dt = horizon
            for i, ri in enumerate(rates):
                if ri > 0:
                    t_empty = lengths[i] / ri
                    if t_empty < dt:
                        dt = t_empty
            for i, ri in enumerate(rates):
                if ri > 0:
                    drained = ri * dt
                    lengths[i] -= drained
                    self.drained_bytes += drained
                    if lengths[i] < _EPSILON:
                        lengths[i] = 0.0
                    if self._magic[i] > lengths[i]:
                        self._magic[i] = lengths[i]
            self._clock += dt
        self._clock = max(self._clock, now)

    def _advance_quantum(self, now: float) -> None:
        """Batched DRR dequeues: spend ``rate x dt`` bytes of service in
        scheduler-ordered phantom-packet units (the paper's §3.1 "phantom
        dequeues can be batched and done only when the queue becomes
        full")."""
        lengths = self._length
        self._budget += self._rate * (now - self._clock)
        self._clock = now
        if not any(length > _EPSILON for length in lengths):
            # A policer accrues no service while idle: it has no tokens
            # beyond the queue capacities themselves.
            self._budget = 0.0
            return
        drr = self._drr
        assert drr is not None
        while self._budget > _EPSILON:
            heads = [
                min(self._quantum, length) if length > _EPSILON else None
                for length in lengths
            ]
            queue = drr.select(heads)
            if queue is None:
                self._budget = 0.0
                return
            size = min(heads[queue], self._budget)  # type: ignore[arg-type]
            if size <= _EPSILON:
                return
            drr.charge(size)
            lengths[queue] -= size
            self.drained_bytes += size
            self._budget -= size
            self.drain_recomputes += 1
            if lengths[queue] < _EPSILON:
                lengths[queue] = 0.0
            if self._magic[queue] > lengths[queue]:
                self._magic[queue] = lengths[queue]

    # ------------------------------------------------------------------
    # Enqueue / magic manipulation (callers advance() first)
    # ------------------------------------------------------------------

    def try_enqueue(self, queue: int, size: float) -> bool:
        """Enqueue ``size`` phantom bytes if they fit; return success."""
        if self._length[queue] + size <= self._capacity[queue] + _EPSILON:
            self._length[queue] += size
            return True
        return False

    def fill_with_magic(self, queue: int) -> float:
        """Fill ``queue`` to capacity with magic bytes; return bytes added."""
        added = self._capacity[queue] - self._length[queue]
        if added > 0:
            self._length[queue] = self._capacity[queue]
            self._magic[queue] += added
            return added
        return 0.0

    def reclaim_magic(self, queue: int) -> float:
        """Remove all (remaining) magic bytes from ``queue``."""
        reclaimable = min(self._magic[queue], self._length[queue])
        if reclaimable > 0:
            self._length[queue] -= reclaimable
            if self._length[queue] < _EPSILON:
                self._length[queue] = 0.0
        self._magic[queue] = 0.0
        return reclaimable

    def fluid_rates(self) -> list[float]:
        """Current per-queue phantom service rates (after an advance)."""
        return self._policy.fluid_rates(self.active_flags(), self._rate)
