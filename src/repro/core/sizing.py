"""Queue/bucket sizing rules (§3.5 and Appendix A).

The central result: to keep a *phantom* queue occupied, a backlogged Reno
flow needs a buffer of at least ``BDP^2/18 x MSS`` bytes (where BDP is in
packets), versus the classic ``O(BDP)`` rule for real queues.  The reason
is that a phantom queue adds no queueing delay, so ACKs return in one base
RTT and the queue absorbs ``cwnd - BDP`` new packets per round instead of
one.

Also provided: the Reno steady-state rate oscillation bounds (2r/3..4r/3)
that motivate BC-PQP's default thresholds, and a numeric Cubic bucket
requirement used when sizing Policer+/FairPolicer ("pick the max of the
New Reno and Cubic requirements", §6.1).
"""

from __future__ import annotations

from repro.units import MSS, bdp_packets


def reno_steady_rate_bounds(rate: float) -> tuple[float, float]:
    """Reno's steady-state instantaneous rate oscillation ``(2r/3, 4r/3)``.

    Appendix A: with cwnd sawtoothing between ``c_l = 2BDP/3`` and
    ``c_h = 4BDP/3``, the per-RTT rate swings across these bounds while the
    long-run average stays at ``rate``.
    """
    return (2.0 * rate / 3.0, 4.0 * rate / 3.0)


def reno_min_phantom_buffer(rate: float, rtt: float, mss: int = MSS) -> float:
    """Minimum phantom-queue size (bytes) for a backlogged Reno flow.

    Appendix A: ``B >= BDP^2 / 18`` packets, i.e. ``BDP^2/18 x MSS`` bytes,
    with BDP measured in packets (``rate x rtt / mss``).

    >>> from repro.units import mbps, ms
    >>> round(reno_min_phantom_buffer(mbps(10), ms(100)) / 1e3)  # ~1000 KB
    1002
    """
    bdp = bdp_packets(rate, rtt, mss)
    return (bdp * bdp / 18.0) * mss


def reno_min_policer_bucket(rate: float, rtt: float, mss: int = MSS) -> float:
    """Token-bucket size (bytes) for correct Reno rate enforcement.

    A TBF is a single phantom queue (§3.1), so the requirement coincides
    with :func:`reno_min_phantom_buffer` — the ``O(BDP^2)`` sizing that
    van Haalen & Malhotra converge to iteratively.
    """
    return reno_min_phantom_buffer(rate, rtt, mss)


def cubic_min_bucket(
    rate: float,
    rtt: float,
    mss: int = MSS,
    *,
    beta: float = 0.7,
    c: float = 0.4,
    dt: float = 1e-3,
) -> float:
    """Bucket/phantom-buffer size (bytes) needed by a backlogged Cubic flow.

    Computed numerically: find the Cubic sawtooth (window from
    ``beta x W_max`` back up to ``W_max`` along ``W(t) = C(t-K)^3 + W_max``)
    whose long-run average throughput equals ``rate``, then integrate the
    excess of the instantaneous send rate over the drain rate; the peak of
    that integral is the buffer the policer must absorb.

    Because Cubic's growth is a function of wall-clock time (not RTT), the
    requirement exceeds Reno's at small ``rate x rtt`` and falls below it at
    large — the crossover §6.1 mentions when sizing FP/Policer+.
    """
    bdp = max(bdp_packets(rate, rtt, mss), 1.0)

    def cycle_stats(w_max: float) -> tuple[float, float]:
        """(average window, peak buffered packets) over one sawtooth."""
        k = ((w_max * (1.0 - beta)) / c) ** (1.0 / 3.0)
        t = 0.0
        area = 0.0
        buffered = 0.0
        peak = 0.0
        while True:
            w = c * (t - k) ** 3 + w_max
            area += w * dt
            # Sending w packets per RTT while draining bdp per RTT.
            buffered = max(buffered + (w - bdp) * dt / rtt, 0.0)
            peak = max(peak, buffered)
            if t > k and w >= w_max:
                break
            t += dt
            if t > 120.0:  # pathological parameters; stop integrating
                break
        avg_w = area / max(t, dt)
        return avg_w, peak

    # Bisect W_max so the average window matches the BDP (=> average
    # throughput matches the enforced rate).
    lo, hi = bdp, 4.0 * bdp + 10.0
    for _ in range(40):
        mid = (lo + hi) / 2.0
        avg_w, _ = cycle_stats(mid)
        if avg_w < bdp:
            lo = mid
        else:
            hi = mid
    _, peak = cycle_stats((lo + hi) / 2.0)
    return max(peak, 1.0) * mss


def policer_plus_bucket(rate: float, max_rtt: float, mss: int = MSS) -> float:
    """Bucket size for "Policer+"/FairPolicer in §6.1: the max of the New
    Reno and Cubic requirements at the worst-case (largest) RTT."""
    return max(
        reno_min_policer_bucket(rate, max_rtt, mss),
        cubic_min_bucket(rate, max_rtt, mss),
    )


def bcpqp_default_buffer(
    rate: float, max_rtt: float, mss: int = MSS, *, headroom: float = 10.0
) -> float:
    """The paper's BC-PQP sizing: "a very high value of at least
    10 x O(BDP^2)" — burst control makes the exact value irrelevant (§4)."""
    return headroom * reno_min_phantom_buffer(rate, max_rtt, mss)


def bdp_bucket(rate: float, rtt: float) -> float:
    """Classic BDP-sized bucket (bytes) — the §6.1 "Policer" baseline."""
    return rate * rtt
