"""The paper's contribution: phantom-queue policing.

* :class:`PhantomQueueSet` — N byte-counter queues drained lazily under a
  fluid (GPS) realization of the policy tree (§3.1–§3.2).
* :class:`PQP` — the phantom-queue policer (§3).
* :class:`BCPQP` — burst-controlled PQP with magic-packet fill/reclaim (§4).
* :mod:`repro.core.sizing` — phantom-queue and policer bucket sizing rules
  (§3.5, Appendix A).
"""

from repro.core.bcpqp import BCPQP
from repro.core.phantom import PhantomQueueSet
from repro.core.pqp import PQP
from repro.core.sizing import (
    bcpqp_default_buffer,
    cubic_min_bucket,
    reno_min_phantom_buffer,
    reno_steady_rate_bounds,
)

__all__ = [
    "BCPQP",
    "PQP",
    "PhantomQueueSet",
    "bcpqp_default_buffer",
    "cubic_min_bucket",
    "reno_min_phantom_buffer",
    "reno_steady_rate_bounds",
]
