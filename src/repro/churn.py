"""Live policy churn: atomic runtime reconfiguration of rate limiters.

Production enforcers do not restart when a customer changes their rate
plan.  This module is the transactional front door for mid-run policy
mutation — rate changes, weight/priority changes, queue-count resizes
and full policy-tree replacement — applied to a running limiter through
``limiter.apply_update(update)``:

* **Validate first, then mutate.**  Every update is checked in full
  before any state is touched.  An invalid update raises
  :class:`UpdateRejected` (a typed error naming the limiter and reason)
  and leaves the limiter byte-identical to before the call — not even
  the lazy drain state is settled.  There are no partial trees.
* **Commit atomically.**  A valid update settles the engine at the
  mutation instant, migrates surviving per-queue state, and starts a new
  mutation *epoch* (see :meth:`repro.core.phantom.PhantomQueueSet.
  reconfigure` for the migration rules; DESIGN.md "Policy churn").
* **An all-``None`` update is an accepted no-op** that touches nothing,
  so applying it zero, one or many times yields bit-identical runs.

On top sit the deterministic plan types: a :class:`ChurnPlan` is a
JSON-primitive sequence of timed :class:`ChurnAction` mutations, carried
on configs (``AggregateConfig.churn`` / ``FleetSpec.churn``) and driven
against the limiter by a :class:`ChurnDriver` riding one soft-reschedule
:class:`~repro.sim.timer.Timer`.  An empty plan constructs no driver and
schedules nothing — a churn-free run stays byte-identical to a build
without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, Sequence

from repro.classify.classifier import (
    FlowClassifier,
    HashClassifier,
    SlotClassifier,
)
from repro.sim.timer import Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (limiters import us)
    from repro.limiters.base import RateLimiter
    from repro.sim.simulator import Simulator


class ChurnError(Exception):
    """Base class for live-reconfiguration errors."""


class UpdateRejected(ChurnError):
    """A :class:`PolicyUpdate` failed validation.

    Raised *before* any mutation: the limiter's state — counters, lazy
    drain clocks, memo caches, everything — is byte-identical to before
    the ``apply_update`` call, so reject-then-retry equals retry alone.
    """

    def __init__(self, limiter: str, reason: str) -> None:
        super().__init__(f"{limiter}: update rejected: {reason}")
        self.limiter = limiter
        self.reason = reason


@dataclass(frozen=True)
class PolicyUpdate:
    """One transactional reconfiguration request.

    All fields default to ``None`` (= leave unchanged); an all-``None``
    update is an accepted no-op.  ``policy`` replaces the whole sharing
    tree (and may change the queue count); ``weights``/``priorities``
    are the flat-tree shorthand (mutually exclusive with ``policy``,
    their length sets the new queue count).  ``capacities`` resizes the
    per-queue buffers — a scalar applies to every queue, and it is
    *required* whenever the queue count changes.  Occupancy above a
    shrunk capacity is evicted at the mutation instant (accounted in
    ``PhantomQueueSet.evicted_bytes``, never silently lost).
    """

    rate: float | None = None
    policy: object | None = None  # repro.policy.tree.Policy
    weights: tuple[float, ...] | None = None
    priorities: tuple[int, ...] | None = None
    capacities: float | tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.weights is not None and not isinstance(self.weights, tuple):
            object.__setattr__(self, "weights", tuple(self.weights))
        if self.priorities is not None and not isinstance(self.priorities, tuple):
            object.__setattr__(self, "priorities", tuple(self.priorities))
        caps = self.capacities
        if caps is not None and not isinstance(caps, (int, float, tuple)):
            object.__setattr__(self, "capacities", tuple(caps))

    @property
    def is_noop(self) -> bool:
        """True when nothing is being changed (the accepted no-op)."""
        return (
            self.rate is None
            and self.policy is None
            and self.weights is None
            and self.priorities is None
            and self.capacities is None
        )


@dataclass(frozen=True)
class ChurnAction:
    """One timed mutation of a :class:`ChurnPlan` — JSON primitives only.

    ``weights``/``priorities`` describe a flat prioritized tree whose
    length is the new queue count (leaf add/remove *is* policy-tree node
    add/remove for the flat policies aggregates actually carry);
    ``capacity_scale`` multiplies the limiter's current reference
    capacity.  An action with only ``time`` set materializes as the
    accepted no-op update.
    """

    time: float
    rate: float | None = None
    weights: tuple[float, ...] | None = None
    priorities: tuple[int, ...] | None = None
    capacity_scale: float | None = None

    def __post_init__(self) -> None:
        if self.weights is not None and not isinstance(self.weights, tuple):
            object.__setattr__(self, "weights", tuple(self.weights))
        if self.priorities is not None and not isinstance(self.priorities, tuple):
            object.__setattr__(self, "priorities", tuple(self.priorities))

    def to_update(self, limiter: "RateLimiter") -> PolicyUpdate:
        """Materialize against ``limiter``'s *current* state.

        Resolution happens at fire time (not plan-build time) so scales
        compose across earlier actions; no limiter state is touched.
        """
        n_cur = getattr(limiter, "num_queues", 1)
        if self.weights is not None:
            n_new = len(self.weights)
        elif self.priorities is not None:
            n_new = len(self.priorities)
        else:
            n_new = n_cur
        capacities: float | None = None
        if self.capacity_scale is not None or n_new != n_cur:
            scale = 1.0 if self.capacity_scale is None else self.capacity_scale
            capacities = reference_capacity(limiter) * scale
        return PolicyUpdate(
            rate=self.rate,
            weights=self.weights,
            priorities=self.priorities,
            capacities=capacities,
        )


@dataclass(frozen=True)
class ChurnPlan:
    """A deterministic sequence of timed mutations for one limiter.

    Round-trips through ``dataclasses.asdict`` / JSON (actions rehydrate
    from plain dicts), has a deterministic repr (cache tokens), and an
    empty plan is inert by construction: no driver, no timer, no state.
    """

    actions: tuple[ChurnAction, ...] = ()

    def __post_init__(self) -> None:
        actions = tuple(
            a if isinstance(a, ChurnAction) else ChurnAction(**a)
            for a in self.actions
        )
        object.__setattr__(self, "actions", actions)

    @property
    def enabled(self) -> bool:
        """True when the plan holds at least one action."""
        return bool(self.actions)

    def __bool__(self) -> bool:
        return self.enabled


def reference_capacity(limiter: "RateLimiter") -> float:
    """The limiter's current per-queue/bucket capacity in bytes.

    The anchor ``capacity_scale`` actions scale against; 0.0 for
    limiters with no resizable buffer (their validation then rejects
    the resulting non-positive capacity with a typed error).
    """
    queues = getattr(limiter, "queues", None)  # PQP / BC-PQP
    if queues is not None:
        return queues.capacity(0)
    cap = getattr(limiter, "queue_capacity", None)  # shaper
    if cap is not None:
        return cap
    cap = getattr(limiter, "bucket_bytes", None)  # policers
    if cap is not None:
        return cap
    return 0.0


def reclassify(classifier: FlowClassifier, num_queues: int) -> FlowClassifier | None:
    """Rebuild ``classifier`` for a new queue count, or ``None`` if the
    mapping cannot be carried over (the caller then rejects the update).

    Slot and hash classifiers rebuild naturally; anything else survives
    only when it already covers the new count.
    """
    if isinstance(classifier, SlotClassifier):
        return SlotClassifier(num_queues)
    if isinstance(classifier, HashClassifier):
        return HashClassifier(num_queues, salt=classifier._salt)
    if classifier.num_queues == num_queues:
        return classifier
    return None


class ChurnDriver:
    """Applies a :class:`ChurnPlan` to one limiter at the scheduled times.

    One soft-reschedule timer walks the time-sorted actions; all actions
    due at one instant apply in plan order.  Rejected updates (typed
    :class:`UpdateRejected`) are counted, never fatal — a scheme that
    cannot express a mutation (a token-bucket policer offered weights)
    simply records the rejection and the run continues, which is exactly
    the per-scheme comparison the churn workload reports.
    """

    def __init__(
        self, sim: "Simulator", limiter: "RateLimiter", plan: ChurnPlan
    ) -> None:
        self._sim = sim
        self._limiter = limiter
        self._actions = sorted(plan.actions, key=lambda a: a.time)
        self._next = 0
        #: Committed / rejected mutation counts for reporting.
        self.applied = 0
        self.rejected = 0
        self._timer: Timer | None = None
        if self._actions:
            self._timer = Timer(sim, self._fire)
            self._arm()

    def _arm(self) -> None:
        if self._next >= len(self._actions):
            return
        due = self._actions[self._next].time
        now = self._sim.now
        assert self._timer is not None
        self._timer.schedule_at(due if due > now else now)

    def _fire(self) -> None:
        now = self._sim.now
        actions = self._actions
        while self._next < len(actions) and actions[self._next].time <= now:
            action = actions[self._next]
            self._next += 1
            try:
                self._limiter.apply_update(action.to_update(self._limiter))
            except UpdateRejected:
                self.rejected += 1
            else:
                self.applied += 1
        self._arm()

    def stop(self) -> None:
        """Cancel the pending action timer (teardown)."""
        if self._timer is not None:
            self._timer.cancel()


#: Weight values plan generation draws from (small integers keep repr
#: and JSON exact).
_WEIGHT_CHOICES = (1.0, 2.0, 4.0)


def draw_plan(
    rng: Random,
    *,
    num_queues: int,
    rate: float,
    horizon: float,
    actions: int,
    max_extra_queues: int = 2,
    kinds: Sequence[str] = ("rate", "weights", "priorities", "resize", "capacity", "noop"),
) -> ChurnPlan:
    """Draw a deterministic :class:`ChurnPlan` from ``rng``.

    Queue counts never shrink below ``num_queues`` — live flow slots
    0..num_queues-1 must stay classifiable — so "remove queue" means
    removing a previously added one.  Action times land in (0,
    ``horizon``); weights/priorities track the evolving queue count.
    """
    if actions < 0:
        raise ValueError(f"actions must be >= 0, got {actions!r}")
    drawn: list[ChurnAction] = []
    n = num_queues
    for _ in range(actions):
        time = rng.uniform(0.0, horizon)
        kind = rng.choice(list(kinds))
        if kind == "rate":
            drawn.append(ChurnAction(time, rate=rate * rng.uniform(0.5, 1.5)))
        elif kind == "weights":
            weights = tuple(rng.choice(_WEIGHT_CHOICES) for _ in range(n))
            drawn.append(ChurnAction(time, weights=weights))
        elif kind == "priorities":
            # At least one queue at top priority keeps the tree sane.
            priorities = [rng.choice((0, 0, 1)) for _ in range(n)]
            priorities[rng.randrange(n)] = 0
            drawn.append(ChurnAction(time, priorities=tuple(priorities)))
        elif kind == "resize":
            n = num_queues + rng.randint(0, max_extra_queues)
            drawn.append(
                ChurnAction(
                    time,
                    weights=(1.0,) * n,
                    capacity_scale=rng.uniform(0.75, 1.5),
                )
            )
        elif kind == "capacity":
            drawn.append(
                ChurnAction(time, capacity_scale=rng.uniform(0.5, 2.0))
            )
        else:  # noop
            drawn.append(ChurnAction(time))
    return ChurnPlan(actions=tuple(drawn))
