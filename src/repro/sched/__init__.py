"""Packet schedulers realizing policy trees on real packet queues."""

from repro.sched.drr import HierarchicalDrrScheduler

__all__ = ["HierarchicalDrrScheduler"]
