"""Hierarchical deficit round robin over a policy tree.

This is the packet-granularity scheduler a policy-rich shaper runs (§2.1):
at every tree node, strict priority picks the child group, and deficit round
robin (Shreedhar & Varghese) splits service within the group proportionally
to weights.  The long-run byte shares converge to the fluid (GPS) shares
returned by :meth:`repro.policy.Policy.fluid_rates` — a property the test
suite checks for random trees.

Two schedulers live here:

* :class:`HierarchicalDrrScheduler` — the shaper's scheduler.  Stateless
  about occupancy: every ``select(heads)`` call re-derives the active set
  from the head-size list, O(N) per dequeue.  Fine for a shaper (its
  dequeue already pays a timer + packet fetch), and kept byte-identical so
  shaper figure outputs never move.
* :class:`ActiveSetDrr` — the phantom ``quantum`` drain's scheduler.  The
  caller reports queue activations/deactivations as they happen, so each
  ``select()`` walks only live tree levels (O(depth) plus amortized O(1)
  deficit rotations) instead of rebuilding an N-element head list per
  MSS-sized phantom dequeue.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.policy.tree import ClassNode, Leaf, Node, Policy
from repro.units import MSS


class _SchedNode:
    """Mutable scheduling state mirroring one policy-tree node."""

    __slots__ = ("spec", "leaves", "children", "deficit", "cursor", "last_child")

    def __init__(self, spec: Node, quantum: float) -> None:
        self.spec = spec
        if isinstance(spec, Leaf):
            self.children: list[_SchedNode] = []
            self.leaves: tuple[int, ...] = (spec.queue,)
        else:
            self.children = [_SchedNode(c, quantum) for c in spec.children]
            leaves: list[int] = []
            for child in self.children:
                leaves.extend(child.leaves)
            self.leaves = tuple(leaves)
        # Deficit counter for *this* node as seen by its parent.
        self.deficit = 0.0
        # Round-robin cursor over this node's children.
        self.cursor = 0
        self.last_child: _SchedNode | None = None

    def is_active(self, heads: Sequence[int | None]) -> bool:
        return any(heads[q] is not None for q in self.leaves)


class HierarchicalDrrScheduler:
    """Selects which queue a shaper should dequeue from next.

    Usage::

        sched = HierarchicalDrrScheduler(policy)
        q = sched.select(head_sizes)   # head_sizes[i] = head pkt bytes or None
        ... pop from queue q ...
        sched.charge(size)             # account the dequeued bytes

    ``select``/``charge`` must alternate; ``charge`` bills the bytes along
    the path chosen by the preceding ``select``.
    """

    def __init__(self, policy: Policy, *, quantum: float = MSS) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self._policy = policy
        self._quantum = float(quantum)
        self._root = _SchedNode(policy.root, quantum)
        self._path: list[_SchedNode] = []

    @property
    def policy(self) -> Policy:
        """The policy tree this scheduler realizes."""
        return self._policy

    def select(self, heads: Sequence[int | None]) -> int | None:
        """Pick the next queue to serve, or ``None`` if all are empty.

        ``heads[i]`` is the size in bytes of queue ``i``'s head packet, or
        ``None`` when the queue is empty.
        """
        if len(heads) != self._policy.num_queues:
            raise ValueError(
                f"expected {self._policy.num_queues} head sizes, got {len(heads)}"
            )
        self._path = []
        queue = self._select_from(self._root, heads)
        return queue

    def charge(self, nbytes: float) -> None:
        """Bill ``nbytes`` to every node on the last selected path."""
        for node in self._path:
            node.deficit -= nbytes
        self._path = []

    def _select_from(self, node: _SchedNode, heads: Sequence[int | None]) -> int | None:
        if isinstance(node.spec, Leaf):
            return node.spec.queue if heads[node.spec.queue] is not None else None

        live = [c for c in node.children if c.is_active(heads)]
        if not live:
            return None
        # Reset state of children that went idle: classic DRR zeroes the
        # deficit of an emptied queue so it cannot hoard credit.
        for child in node.children:
            if child not in live:
                child.deficit = 0.0

        top = min(c.spec.priority for c in live)
        winners = [c for c in live if c.spec.priority == top]

        # DRR among winners: rotate, topping up weight-scaled quanta until
        # some child can afford the packet its subtree would emit next.
        if node.cursor >= len(winners):
            node.cursor = 0
        guard = 0
        max_rounds = 4 * len(winners) + 8
        while True:
            child = winners[node.cursor % len(winners)]
            cost = self._peek_cost(child, heads)
            if cost is not None and child.deficit >= cost:
                self._path.append(child)
                return self._select_from(child, heads)
            child.deficit += self._quantum * child.spec.weight
            node.cursor = (node.cursor + 1) % len(winners)
            guard += 1
            if guard > max_rounds:
                # Quantum top-ups are unbounded above packet sizes, so this
                # only trips on absurd quantum/packet ratios; serve the
                # current child rather than loop forever.
                self._path.append(child)
                return self._select_from(child, heads)

    def _peek_cost(self, node: _SchedNode, heads: Sequence[int | None]) -> int | None:
        """Size of the packet this subtree would emit if selected now."""
        if isinstance(node.spec, Leaf):
            return heads[node.spec.queue]
        live = [c for c in node.children if c.is_active(heads)]
        if not live:
            return None
        top = min(c.spec.priority for c in live)
        winners = [c for c in live if c.spec.priority == top]
        child = winners[node.cursor % len(winners)] if winners else None
        if child is None:
            return None
        cost = self._peek_cost(child, heads)
        if cost is None:
            # Cursor points at a stale child; fall back to any live child.
            cost = next(
                (c2 for c2 in (self._peek_cost(w, heads) for w in winners) if c2),
                None,
            )
        return cost


class _ActiveNode:
    """Mutable scheduling state for one policy node in :class:`ActiveSetDrr`."""

    __slots__ = (
        "parent", "weight", "priority", "queue", "children",
        "deficit", "cursor", "active", "by_prio", "pos", "winning",
    )

    def __init__(self, spec: Node, parent: "_ActiveNode | None") -> None:
        self.parent = parent
        self.weight = spec.weight
        self.priority = spec.priority
        self.queue = spec.queue if isinstance(spec, Leaf) else None
        self.children = (
            [] if isinstance(spec, Leaf)
            else [_ActiveNode(c, self) for c in spec.children]
        )
        # Deficit counter for *this* node as seen by its parent.
        self.deficit = 0.0
        # Round-robin cursor over this node's active winner list.
        self.cursor = 0
        self.active = False
        #: Active children grouped by priority (internal nodes only).
        self.by_prio: dict[int, list["_ActiveNode"]] = {}
        #: Index of this node in its parent's ``by_prio`` list while active.
        self.pos = -1
        #: Smallest priority with active children, or None.
        self.winning: int | None = None


class ActiveSetDrr:
    """Hierarchical DRR with incrementally maintained occupancy.

    Usage::

        sched = ActiveSetDrr(policy, head_of=lambda q: ...)
        sched.activate(q)              # queue q went empty -> occupied
        queue = sched.select()         # next queue to serve (or None)
        ... drain from queue ...
        sched.charge(size)             # bill the dequeued bytes
        sched.deactivate(q)            # queue q drained empty

    ``head_of(q)`` returns the size of the phantom packet queue ``q``
    would emit next (``min(quantum, length)`` for byte-counter queues);
    it is only consulted for *active* queues.

    ``select``/``charge`` must alternate, exactly as with
    :class:`HierarchicalDrrScheduler`; byte shares converge to the same
    fluid shares (the winner lists hold the same nodes, only their
    rotation order differs, which DRR fairness does not depend on).
    """

    def __init__(
        self,
        policy: Policy,
        *,
        head_of: Callable[[int], float],
        quantum: float = MSS,
    ) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self._policy = policy
        self._quantum = float(quantum)
        self._head_of = head_of
        self._root = _ActiveNode(policy.root, None)
        self._leaves: list[_ActiveNode] = [None] * policy.num_queues  # type: ignore[list-item]
        self._index(self._root)
        self._path: list[_ActiveNode] = []

    def _index(self, node: _ActiveNode) -> None:
        if node.queue is not None:
            self._leaves[node.queue] = node
        for child in node.children:
            self._index(child)

    @property
    def policy(self) -> Policy:
        """The policy tree this scheduler realizes."""
        return self._policy

    def any_active(self) -> bool:
        """Whether any queue is currently occupied, O(1)."""
        return self._root.active

    def reseed(self, occupied: Iterable[int]) -> None:
        """Activate ``occupied`` queues on a freshly built scheduler.

        Live policy churn rebuilds the scheduler against the new tree
        and reseeds it with the surviving occupancy — active entries for
        removed queues (and any stale deficit/cursor state) are pruned
        by construction, since none of the old scheduler's state is
        carried over.
        """
        for queue in occupied:
            self.activate(queue)

    def activate(self, queue: int) -> None:
        """Report that ``queue`` went from empty to occupied."""
        node = self._leaves[queue]
        while not node.active:
            node.active = True
            parent = node.parent
            if parent is None:
                return
            bucket = parent.by_prio.get(node.priority)
            if bucket is None:
                bucket = parent.by_prio[node.priority] = []
            node.pos = len(bucket)
            bucket.append(node)
            if parent.winning is None or node.priority < parent.winning:
                parent.winning = node.priority
            node = parent

    def deactivate(self, queue: int) -> None:
        """Report that ``queue`` drained empty.

        Classic DRR zeroes the deficit of an emptied queue so it cannot
        hoard credit; the same reset applies to subtree nodes that go
        fully idle.
        """
        node = self._leaves[queue]
        while node.active:
            node.active = False
            node.deficit = 0.0
            node.cursor = 0
            parent = node.parent
            if parent is None:
                return
            bucket = parent.by_prio[node.priority]
            last = bucket.pop()
            if last is not node:
                bucket[node.pos] = last
                last.pos = node.pos
            node.pos = -1
            if not bucket:
                del parent.by_prio[node.priority]
                if parent.by_prio:
                    if node.priority == parent.winning:
                        parent.winning = min(parent.by_prio)
                    node = parent  # parent still active; stop after fixup
                    break
                parent.winning = None
                node = parent  # subtree idle: keep deactivating upward
            else:
                break

    def select(self) -> int | None:
        """Pick the next queue to serve, or ``None`` if all are empty."""
        node = self._root
        if not node.active:
            return None
        self._path = []
        quantum = self._quantum
        while node.queue is None:
            winners = node.by_prio[node.winning]  # type: ignore[index]
            count = len(winners)
            guard = 0
            max_rounds = 4 * count + 8
            while True:
                child = winners[node.cursor % count]
                cost = self._peek(child)
                if child.deficit >= cost or guard > max_rounds:
                    # Quantum top-ups are unbounded above packet sizes, so
                    # the guard only trips on absurd quantum/packet ratios;
                    # serve the current child rather than loop forever.
                    break
                child.deficit += quantum * child.weight
                node.cursor = (node.cursor + 1) % count
                guard += 1
            self._path.append(child)
            node = child
        return node.queue

    def charge(self, nbytes: float) -> None:
        """Bill ``nbytes`` to every node on the last selected path."""
        for node in self._path:
            node.deficit -= nbytes
        self._path = []

    def _peek(self, node: _ActiveNode) -> float:
        """Size of the phantom packet this subtree would emit if selected."""
        while node.queue is None:
            winners = node.by_prio[node.winning]  # type: ignore[index]
            node = winners[node.cursor % len(winners)]
        return self._head_of(node.queue)
