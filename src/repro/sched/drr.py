"""Hierarchical deficit round robin over a policy tree.

This is the packet-granularity scheduler a policy-rich shaper runs (§2.1):
at every tree node, strict priority picks the child group, and deficit round
robin (Shreedhar & Varghese) splits service within the group proportionally
to weights.  The long-run byte shares converge to the fluid (GPS) shares
returned by :meth:`repro.policy.Policy.fluid_rates` — a property the test
suite checks for random trees.
"""

from __future__ import annotations

from typing import Sequence

from repro.policy.tree import ClassNode, Leaf, Node, Policy
from repro.units import MSS


class _SchedNode:
    """Mutable scheduling state mirroring one policy-tree node."""

    __slots__ = ("spec", "leaves", "children", "deficit", "cursor", "last_child")

    def __init__(self, spec: Node, quantum: float) -> None:
        self.spec = spec
        if isinstance(spec, Leaf):
            self.children: list[_SchedNode] = []
            self.leaves: tuple[int, ...] = (spec.queue,)
        else:
            self.children = [_SchedNode(c, quantum) for c in spec.children]
            leaves: list[int] = []
            for child in self.children:
                leaves.extend(child.leaves)
            self.leaves = tuple(leaves)
        # Deficit counter for *this* node as seen by its parent.
        self.deficit = 0.0
        # Round-robin cursor over this node's children.
        self.cursor = 0
        self.last_child: _SchedNode | None = None

    def is_active(self, heads: Sequence[int | None]) -> bool:
        return any(heads[q] is not None for q in self.leaves)


class HierarchicalDrrScheduler:
    """Selects which queue a shaper should dequeue from next.

    Usage::

        sched = HierarchicalDrrScheduler(policy)
        q = sched.select(head_sizes)   # head_sizes[i] = head pkt bytes or None
        ... pop from queue q ...
        sched.charge(size)             # account the dequeued bytes

    ``select``/``charge`` must alternate; ``charge`` bills the bytes along
    the path chosen by the preceding ``select``.
    """

    def __init__(self, policy: Policy, *, quantum: float = MSS) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self._policy = policy
        self._quantum = float(quantum)
        self._root = _SchedNode(policy.root, quantum)
        self._path: list[_SchedNode] = []

    @property
    def policy(self) -> Policy:
        """The policy tree this scheduler realizes."""
        return self._policy

    def select(self, heads: Sequence[int | None]) -> int | None:
        """Pick the next queue to serve, or ``None`` if all are empty.

        ``heads[i]`` is the size in bytes of queue ``i``'s head packet, or
        ``None`` when the queue is empty.
        """
        if len(heads) != self._policy.num_queues:
            raise ValueError(
                f"expected {self._policy.num_queues} head sizes, got {len(heads)}"
            )
        self._path = []
        queue = self._select_from(self._root, heads)
        return queue

    def charge(self, nbytes: float) -> None:
        """Bill ``nbytes`` to every node on the last selected path."""
        for node in self._path:
            node.deficit -= nbytes
        self._path = []

    def _select_from(self, node: _SchedNode, heads: Sequence[int | None]) -> int | None:
        if isinstance(node.spec, Leaf):
            return node.spec.queue if heads[node.spec.queue] is not None else None

        live = [c for c in node.children if c.is_active(heads)]
        if not live:
            return None
        # Reset state of children that went idle: classic DRR zeroes the
        # deficit of an emptied queue so it cannot hoard credit.
        for child in node.children:
            if child not in live:
                child.deficit = 0.0

        top = min(c.spec.priority for c in live)
        winners = [c for c in live if c.spec.priority == top]

        # DRR among winners: rotate, topping up weight-scaled quanta until
        # some child can afford the packet its subtree would emit next.
        if node.cursor >= len(winners):
            node.cursor = 0
        guard = 0
        max_rounds = 4 * len(winners) + 8
        while True:
            child = winners[node.cursor % len(winners)]
            cost = self._peek_cost(child, heads)
            if cost is not None and child.deficit >= cost:
                self._path.append(child)
                return self._select_from(child, heads)
            child.deficit += self._quantum * child.spec.weight
            node.cursor = (node.cursor + 1) % len(winners)
            guard += 1
            if guard > max_rounds:
                # Quantum top-ups are unbounded above packet sizes, so this
                # only trips on absurd quantum/packet ratios; serve the
                # current child rather than loop forever.
                self._path.append(child)
                return self._select_from(child, heads)

    def _peek_cost(self, node: _SchedNode, heads: Sequence[int | None]) -> int | None:
        """Size of the packet this subtree would emit if selected now."""
        if isinstance(node.spec, Leaf):
            return heads[node.spec.queue]
        live = [c for c in node.children if c.is_active(heads)]
        if not live:
            return None
        top = min(c.spec.priority for c in live)
        winners = [c for c in live if c.spec.priority == top]
        child = winners[node.cursor % len(winners)] if winners else None
        if child is None:
            return None
        cost = self._peek_cost(child, heads)
        if cost is None:
            # Cursor points at a stale child; fall back to any live child.
            cost = next(
                (c2 for c2 in (self._peek_cost(w, heads) for w in winners) if c2),
                None,
            )
        return cost
