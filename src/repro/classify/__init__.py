"""Flow-to-queue classification (§3.2: per-flow queues or hashed queues)."""

from repro.classify.classifier import (
    FlowClassifier,
    HashClassifier,
    SingleQueueClassifier,
    SlotClassifier,
)

__all__ = [
    "FlowClassifier",
    "HashClassifier",
    "SingleQueueClassifier",
    "SlotClassifier",
]
