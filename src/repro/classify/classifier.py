"""Classifiers mapping a packet's flow identity to a queue index."""

from __future__ import annotations

import hashlib
from typing import Protocol, runtime_checkable

from repro.net.packet import FlowId


@runtime_checkable
class FlowClassifier(Protocol):
    """Maps a flow to one of ``num_queues`` queues."""

    num_queues: int

    def queue_of(self, flow: FlowId) -> int:
        """Queue index (0-based) for ``flow``."""
        ...  # pragma: no cover - protocol definition


class SlotClassifier:
    """Exact per-flow queues: flow slot *is* the queue index.

    This models the testbed's exact flow tables: a restarting on-off flow
    (new incarnation, same slot) keeps its queue.
    """

    def __init__(self, num_queues: int) -> None:
        if num_queues < 1:
            raise ValueError("need at least one queue")
        self.num_queues = num_queues

    def queue_of(self, flow: FlowId) -> int:
        if not 0 <= flow.slot < self.num_queues:
            raise ValueError(
                f"flow slot {flow.slot} outside 0..{self.num_queues - 1}"
            )
        return flow.slot


class HashClassifier:
    """Hashes flow identifiers into ``num_queues`` buckets (§3.2's
    "approximate it by hashing the flow identifiers").

    Uses a keyed stable hash so collisions are reproducible across runs.
    """

    def __init__(self, num_queues: int, *, salt: int = 0) -> None:
        if num_queues < 1:
            raise ValueError("need at least one queue")
        self.num_queues = num_queues
        self._salt = salt

    def queue_of(self, flow: FlowId) -> int:
        key = f"{self._salt}|{flow.aggregate}|{flow.slot}".encode()
        digest = hashlib.sha256(key).digest()
        return int.from_bytes(digest[:4], "big") % self.num_queues


class SingleQueueClassifier:
    """Everything into queue 0 (single-queue shaper / plain policer)."""

    num_queues = 1

    def queue_of(self, flow: FlowId) -> int:  # noqa: ARG002 - protocol
        return 0
