"""Windowed min/max filters used by BBR's bandwidth and RTT estimators."""

from __future__ import annotations

from collections import deque


class WindowedExtremum:
    """Tracks the extremum of (time, value) samples inside a sliding window.

    A monotonic deque gives O(1) amortized updates.  ``sign=+1`` tracks the
    maximum (bottleneck bandwidth), ``sign=-1`` the minimum (RTprop).
    """

    def __init__(self, window: float, *, sign: int = 1) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        if sign not in (1, -1):
            raise ValueError("sign must be +1 (max) or -1 (min)")
        self._window = window
        self._sign = sign
        self._samples: deque[tuple[float, float]] = deque()

    def update(self, now: float, value: float) -> None:
        """Insert a sample and expire ones older than the window."""
        key = self._sign * value
        samples = self._samples
        while samples and self._sign * samples[-1][1] <= key:
            samples.pop()
        samples.append((now, value))
        self._expire(now)

    def get(self, now: float | None = None) -> float | None:
        """Current extremum, or ``None`` if the window is empty."""
        if now is not None:
            self._expire(now)
        if not self._samples:
            return None
        return self._samples[0][1]

    def age(self, now: float) -> float | None:
        """Age of the current extremum sample, or ``None`` if empty."""
        if not self._samples:
            return None
        return now - self._samples[0][0]

    def reset(self) -> None:
        """Forget all samples."""
        self._samples.clear()

    def _expire(self, now: float) -> None:
        samples = self._samples
        while samples and samples[0][0] < now - self._window:
            samples.popleft()


class WindowedMax(WindowedExtremum):
    """Sliding-window maximum."""

    def __init__(self, window: float) -> None:
        super().__init__(window, sign=1)


class WindowedMin(WindowedExtremum):
    """Sliding-window minimum."""

    def __init__(self, window: float) -> None:
        super().__init__(window, sign=-1)
