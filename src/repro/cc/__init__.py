"""TCP endpoints and congestion-control algorithms.

The senders implement packet-granularity TCP: cumulative ACKs, dup-ACK fast
retransmit, NewReno-style recovery, RTO with Karn's rule, and optional
pacing (used by BBR).  Four congestion controllers mirror the protocols the
paper evaluates with the Linux kernel stack: New Reno, Cubic, BBR and Vegas.
"""

from repro.cc.base import AckSample, CongestionControl, make_cc
from repro.cc.bbr import Bbr
from repro.cc.cubic import Cubic
from repro.cc.endpoint import FlowDemux, TcpReceiver, TcpSender
from repro.cc.reno import NewReno
from repro.cc.vegas import Vegas

__all__ = [
    "AckSample",
    "Bbr",
    "CongestionControl",
    "Cubic",
    "FlowDemux",
    "NewReno",
    "TcpReceiver",
    "TcpSender",
    "Vegas",
    "make_cc",
]
