"""BBR congestion control (v1 dynamics, simplified).

Model-based: estimates bottleneck bandwidth (windowed max of delivery-rate
samples) and round-trip propagation time (windowed min RTT) and paces at
``gain x btl_bw``.  The state machine implements STARTUP, DRAIN, PROBE_BW
(eight-phase gain cycle) and PROBE_RTT.  Loss events are ignored for rate
computation, as in BBRv1 — which is exactly why BBR flows steamroll AIMD
flows through a plain policer (Figure 9's YouTube behaviour).
"""

from __future__ import annotations

from repro.cc.base import AckSample, CongestionControl
from repro.cc.filters import WindowedMax, WindowedMin


class Bbr(CongestionControl):
    """Simplified BBRv1."""

    name = "bbr"
    needs_rate_samples = True

    HIGH_GAIN = 2.885
    DRAIN_GAIN = 1.0 / 2.885
    CYCLE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    CWND_GAIN = 2.0
    MIN_PIPE_CWND = 4.0
    #: Bandwidth filter window, in RTT rounds (approximated by cycle steps).
    BW_WINDOW_ROUNDS = 10
    RTPROP_WINDOW = 10.0
    PROBE_RTT_DURATION = 0.2

    def __init__(self, *, initial_cwnd: float = 10.0) -> None:
        super().__init__(initial_cwnd=initial_cwnd)
        self._state = "startup"
        self._bw_filter = WindowedMax(1.0)  # window retuned as RTprop learns
        self._rtprop = WindowedMin(self.RTPROP_WINDOW)
        self._pacing_gain = self.HIGH_GAIN
        self._cwnd_gain = self.HIGH_GAIN
        self._full_bw = 0.0
        self._full_bw_count = 0
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        self._probe_rtt_done_at: float | None = None
        # Disable loss-driven slow start; BBR ignores ssthresh.
        self.ssthresh = float("inf")

    # ------------------------------------------------------------------
    # Estimator access
    # ------------------------------------------------------------------

    def btl_bw(self) -> float:
        """Bottleneck bandwidth estimate, packets/second (0 if unknown)."""
        value = self._bw_filter.get()
        return value if value is not None else 0.0

    def rtprop(self) -> float | None:
        """Round-trip propagation estimate in seconds, or ``None``."""
        return self._rtprop.get()

    def bdp_packets(self) -> float:
        """Estimated pipe size in packets (bw x rtprop)."""
        rtprop = self.rtprop()
        bw = self.btl_bw()
        if rtprop is None or bw <= 0:
            return self.cwnd
        return bw * rtprop

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def on_ack(self, sample: AckSample) -> None:
        now = sample.now
        if sample.rtt is not None:
            self._rtprop.update(now, sample.rtt)
            # Retune the bandwidth filter window to ~10 RTTs.
            rtprop = self._rtprop.get()
            if rtprop:
                self._bw_filter._window = max(  # noqa: SLF001 - own helper
                    self.BW_WINDOW_ROUNDS * rtprop, 1e-3
                )
        if sample.delivery_rate is not None and sample.delivery_rate > 0:
            self._bw_filter.update(now, sample.delivery_rate)

        self._update_state(now, sample)
        self._set_cwnd(sample)

    def on_loss_event(self, now: float, inflight: float) -> None:
        # BBRv1 does not react to isolated losses with a rate cut.
        del now, inflight

    def on_recovery_exit(self, now: float) -> None:
        del now

    def on_timeout(self, now: float, inflight: float) -> None:
        del now, inflight
        self.cwnd = self.MIN_PIPE_CWND

    def pacing_rate(self, now: float) -> float | None:
        del now
        bw = self.btl_bw()
        if bw <= 0:
            return None  # before any estimate: ACK-clocked slow start burst
        return max(self._pacing_gain * bw, 1.0)

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    def _update_state(self, now: float, sample: AckSample) -> None:
        if self._state == "startup":
            self._check_full_pipe()
            if self._full_bw_count >= 3:
                self._state = "drain"
                self._pacing_gain = self.DRAIN_GAIN
                self._cwnd_gain = self.HIGH_GAIN
        if self._state == "drain" and sample.inflight <= self.bdp_packets():
            self._enter_probe_bw(now)
        if self._state == "probe_bw":
            self._advance_cycle(now, sample)
        self._check_probe_rtt(now, sample)

    def _check_full_pipe(self) -> None:
        bw = self.btl_bw()
        if bw >= self._full_bw * 1.25:
            self._full_bw = bw
            self._full_bw_count = 0
        elif bw > 0:
            self._full_bw_count += 1

    def _enter_probe_bw(self, now: float) -> None:
        self._state = "probe_bw"
        self._cycle_index = 1  # start in the drain-ish 0.75 phase
        self._cycle_stamp = now
        self._pacing_gain = self.CYCLE_GAINS[self._cycle_index]
        self._cwnd_gain = self.CWND_GAIN

    def _advance_cycle(self, now: float, sample: AckSample) -> None:
        rtprop = self.rtprop() or 0.01
        elapsed = now - self._cycle_stamp
        gain = self.CYCLE_GAINS[self._cycle_index]
        advance = elapsed > rtprop
        if gain == 0.75 and sample.inflight <= self.bdp_packets():
            advance = True  # leave the drain phase as soon as pipe drains
        if advance:
            self._cycle_index = (self._cycle_index + 1) % len(self.CYCLE_GAINS)
            self._cycle_stamp = now
            self._pacing_gain = self.CYCLE_GAINS[self._cycle_index]

    def _check_probe_rtt(self, now: float, sample: AckSample) -> None:
        del sample
        if self._state == "probe_rtt":
            if self._probe_rtt_done_at is not None and now >= self._probe_rtt_done_at:
                self._rtprop.reset()
                self._probe_rtt_done_at = None
                self._enter_probe_bw(now)
            return
        age = self._rtprop.age(now)
        if self._state == "probe_bw" and age is not None and age > self.RTPROP_WINDOW:
            self._state = "probe_rtt"
            self._probe_rtt_done_at = now + self.PROBE_RTT_DURATION

    def _set_cwnd(self, sample: AckSample) -> None:
        if self._state == "probe_rtt":
            self.cwnd = self.MIN_PIPE_CWND
            return
        rtprop = self.rtprop()
        bw = self.btl_bw()
        if rtprop is None or bw <= 0:
            # No model yet: grow like slow start (one packet per ACKed
            # packet) until the first delivery-rate sample lands.
            self.cwnd += sample.newly_acked
            return
        self.cwnd = max(self._cwnd_gain * bw * rtprop, self.MIN_PIPE_CWND)
