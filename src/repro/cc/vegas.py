"""TCP Vegas congestion control (delay-based).

Vegas keeps ``alpha..beta`` packets of standing queue.  Against a *policer*
or phantom queue there is no queueing delay signal at all, so Vegas keeps
additively increasing until packets are dropped — exactly the behaviour
that makes per-flow fairness across CC algorithms hard and motivates the
paper's per-flow queues.
"""

from __future__ import annotations

from repro.cc.base import AckSample, CongestionControl


class Vegas(CongestionControl):
    """Vegas: target ``alpha``..``beta`` packets queued in the network."""

    name = "vegas"

    ALPHA = 2.0
    BETA = 4.0
    GAMMA = 1.0

    def __init__(self, *, initial_cwnd: float = 10.0) -> None:
        super().__init__(initial_cwnd=initial_cwnd)
        self._base_rtt = float("inf")
        self._min_rtt_round = float("inf")
        self._round_left = int(self.cwnd)
        self._grow_this_round = True

    def on_ack(self, sample: AckSample) -> None:
        if sample.rtt is not None:
            self._base_rtt = min(self._base_rtt, sample.rtt)
            self._min_rtt_round = min(self._min_rtt_round, sample.rtt)
        self._round_left -= sample.newly_acked
        if self._round_left > 0:
            return
        self._end_of_round()

    def _end_of_round(self) -> None:
        rtt = self._min_rtt_round
        self._min_rtt_round = float("inf")
        if rtt == float("inf") or self._base_rtt == float("inf"):
            self._round_left = max(int(self.cwnd), 1)
            return
        # Packets held in network queues: cwnd * (rtt - baseRTT) / rtt.
        diff = self.cwnd * (rtt - self._base_rtt) / rtt
        if self.cwnd < self.ssthresh:
            # Vegas slow start: double every *other* round while the queue
            # estimate stays under gamma.
            if diff > self.GAMMA:
                self.ssthresh = self.cwnd
            elif self._grow_this_round:
                self.cwnd *= 2.0
            self._grow_this_round = not self._grow_this_round
        elif diff < self.ALPHA:
            self.cwnd += 1.0
        elif diff > self.BETA:
            self.cwnd = max(self.cwnd - 1.0, self.MIN_CWND)
        self._round_left = max(int(self.cwnd), 1)

    def on_loss_event(self, now: float, inflight: float) -> None:
        super().on_loss_event(now, inflight)
        self._round_left = max(int(self.cwnd), 1)
