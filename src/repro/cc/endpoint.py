"""TCP sender and receiver endpoints.

The sender implements the loss-recovery machinery shared by all congestion
controllers: cumulative ACK processing, SACK-based loss detection and
retransmission (an RFC 6675-style scoreboard — the paper's testbed runs
Linux TCP, where SACK recovery repairs a whole loss burst in about one
RTT), an RFC 6298 retransmission timer with Karn's rule and exponential
backoff, and pacing for rate-based controllers (BBR).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.cc.base import AckSample, CongestionControl
from repro.net.packet import FlowId, Packet, PacketKind, _packet_ids
from repro.net.sink import PacketSink, batch_capable
from repro.sim.simulator import Simulator
from repro.sim.timer import Timer
from repro.units import MSS

#: RFC 6298 constants.
_INITIAL_RTO = 1.0
_MIN_RTO = 0.2
_MAX_RTO = 60.0
#: RFC 6675 DupThresh: a hole is lost once 3 later packets were SACKed.
_DUP_THRESH = 3
#: TLP probe timeout factor (RFC 8985: PTO ~= 2 * SRTT).
_TLP_SRTT_FACTOR = 2.0
#: Linux internal TCP pacing ratios (sysctl tcp_pacing_ss_ratio /
#: tcp_pacing_ca_ratio): cwnd/srtt scaled by 200% in slow start, 120% in
#: congestion avoidance.  Applied whenever the controller doesn't supply
#: its own pacing rate (BBR does).
_PACING_SS_RATIO = 2.0
_PACING_CA_RATIO = 1.2


class TcpSender:
    """One TCP flow's sender.

    Parameters
    ----------
    sim:
        The simulator.
    flow:
        Flow identity stamped on every packet.
    cc:
        Congestion controller instance (owned by this sender).
    egress:
        First hop for data packets (a pipe into the rate limiter).
    total_packets:
        Flow length in MSS packets; ``None`` means backlogged forever.
    start_time:
        Absolute time the flow starts.
    on_complete:
        Called as ``on_complete(sender, now)`` when the last packet is
        cumulatively acknowledged (finite flows only).
    initial_rtt:
        Seed for the RTT estimator, as the SYN/SYN-ACK handshake provides
        in real TCP.  Without it the first retransmission timeout is the
        conservative 1 s initial RTO and the initial window is sent
        unpaced — both punish short flows unrealistically.
    ecn:
        Negotiate ECN: data packets carry ECT, and an echoed CE mark
        triggers one congestion-window reduction per round trip (RFC 3168
        semantics) without any retransmission.
    """

    def __init__(
        self,
        sim: Simulator,
        flow: FlowId,
        cc: CongestionControl,
        egress: PacketSink,
        *,
        total_packets: int | None = None,
        start_time: float = 0.0,
        mss: int = MSS,
        on_complete: Callable[["TcpSender", float], None] | None = None,
        initial_rtt: float | None = None,
        ecn: bool = False,
    ) -> None:
        self._sim = sim
        self.flow = flow
        self.cc = cc
        self._egress = egress
        self._total = total_packets
        self._mss = mss
        self._on_complete = on_complete
        self.ecn = ecn
        # One ECN-triggered reduction per RTT (RFC 3168 CWR gating).
        self._ecn_cwr_point = 0
        self.ecn_reductions = 0

        # Sequence space (packet numbers).
        self.snd_una = 0
        self.snd_nxt = 0
        self._newly_acked = 0
        self._in_recovery = False
        self._recover_point = 0
        # PRR-style budget: while in recovery, transmissions (retransmits
        # or new data) are clocked to packets newly delivered, so a flow
        # repairing a large burst loss retries at the path's acceptance
        # rate instead of blasting cwnd every reordering window.
        self._recovery_budget = 0.0

        # SACK scoreboard.
        self._sacked: set[int] = set()
        self._fack = 0  # highest SACKed seq + 1
        self._lost_set: set[int] = set()
        self._lost_heap: list[int] = []
        self._retx_out: dict[int, float] = {}  # seq -> retransmit time
        self._loss_scan_ptr = 0  # seqs below this were loss-checked

        # RTO state (RFC 6298), optionally seeded by the handshake sample.
        self._srtt: float | None = None
        self._rttvar = 0.0
        self._rto = _INITIAL_RTO
        if initial_rtt is not None and initial_rtt > 0:
            self._update_rto(initial_rtt)
        # All three send-side timers are soft-reschedule Timers: the
        # per-ACK rearm just overwrites a deadline float instead of a
        # cancel + O(log H) heap push (see repro.sim.timer).
        self._rto_timer = Timer(sim, self._on_rto)
        # Tail-loss-probe timer (RFC 8985 TLP): fires ~2 SRTT after the
        # last ACK while data is outstanding, retransmitting the highest
        # un-SACKed packet.  The probe's SACK feedback lets RACK repair a
        # whole-flight loss in ~2 RTTs instead of waiting for the 200 ms+
        # RTO — the behaviour of the Linux stacks in the paper's testbed.
        self._tlp_timer = Timer(sim, self._on_tlp)

        # Pacing state.
        self._next_send_time = 0.0
        self._pacing_timer = Timer(sim, self._on_pacing_timer)

        # Batched-engine fast path: the fused ACK/send loops below are
        # exact transcriptions of _process_ack/_try_send (same float ops,
        # same seq reservations) with the helper calls inlined.  The
        # legacy per-packet engine (batch_limit=1) keeps routing through
        # the original methods so batched-vs-unbatched benchmarks compare
        # against unmodified code.
        self._fast = sim.batch_limit != 1
        #: Lazily latched by :meth:`_fast_path_ok` on first ACK/timer:
        #: ``None`` = undecided, then True/False for the session.
        self._fast_state: bool | None = None
        self._needs_rate = cc.needs_rate_samples
        #: Whether the controller overrides pacing_rate (the base returns
        #: None unconditionally, so the fast path can skip the call).
        self._cc_paces = (
            type(cc).pacing_rate is not CongestionControl.pacing_rate
        )
        #: Batched-engine egress entry: the pipe's fused single-packet
        #: receive when it has one, else the plain receive.
        self._egress_fast = getattr(egress, "receive_fast", egress.receive)
        #: Scratch sample reused by the fused ACK path — controllers
        #: consume samples synchronously (AckSample's contract), so one
        #: mutable instance per sender avoids a dataclass construction
        #: per ACK.  The legacy path keeps building fresh samples.
        self._ack_scratch = AckSample(
            newly_acked=0, rtt=None, delivery_rate=None, inflight=0.0, now=0.0
        )

        # Per-packet send records: seq -> (sent_time, delivered_at_send,
        # delivered_time_at_send, retransmit).  Used for delivery-rate
        # sampling (BBR) and RACK-style time-based loss detection.
        self._delivered = 0
        self._delivered_time = start_time
        self._send_info: dict[int, tuple[float, int, float, bool]] = {}
        # RACK point: latest original send time among delivered packets.
        self._rack_time = 0.0

        # Stats.
        self.packets_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self.tlp_probes = 0
        self.loss_events = 0
        self.corrupt_acks_dropped = 0
        self.completed_at: float | None = None
        self.started = False

        sim.schedule_at(max(start_time, sim.now), self._start)

        validator = getattr(sim, "validator", None)
        if validator is not None:
            validator.attach_sender(self)

    # ------------------------------------------------------------------
    # Public state
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once a finite flow is fully acknowledged."""
        return self.completed_at is not None

    @property
    def inflight(self) -> int:
        """Scoreboard pipe estimate: outstanding minus SACKed minus
        lost-but-not-retransmitted, plus outstanding retransmissions."""
        pipe = (
            (self.snd_nxt - self.snd_una)
            - len(self._sacked)
            - len(self._lost_set)
            + len(self._retx_out)
        )
        return max(pipe, 0)

    @property
    def in_recovery(self) -> bool:
        """True while repairing a loss event."""
        return self._in_recovery

    @property
    def rto(self) -> float:
        """Current retransmission timeout in seconds."""
        return self._rto

    @property
    def srtt(self) -> float | None:
        """Smoothed RTT estimate, or ``None`` before the first sample."""
        return self._srtt

    # ------------------------------------------------------------------
    # ACK path (PacketSink protocol: the reverse pipe delivers here)
    # ------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Process an incoming ACK.

        The sender is the ACK's terminal sink, so the packet is recycled
        into the ACK free list on the way out (even on early exits).
        A corrupted ACK (failed checksum, see :mod:`repro.net.impair`)
        is dropped — recycled but never processed.
        """
        if not packet.is_ack:
            return
        try:
            if packet.corrupt:
                self.corrupt_acks_dropped += 1
            elif not self.done:
                self._process_ack(packet)
        finally:
            Packet.recycle_ack(packet)

    def receive_batch(self, packets: list[Packet]) -> None:
        """Process a same-instant batch of ACKs.

        Each ACK is still processed *fully* (bookkeeping **and** the send
        attempt) before the next: transmissions, pacing updates and timer
        rearms all consume simulator seqs, so deferring any of them to a
        per-batch pass would change the unbatched engine's seq
        assignment.  The batch win here is the hoisted kind/done checks,
        the single entry call per batch, and recycling the consumed ACKs
        batch-at-a-time.  The per-ACK timer rearms only rewrite the
        soft-reschedule deadline (two int/float stores); the heap wake is
        already amortized to at most one push per batch by the Timer.
        """
        if not self.done:
            fast = self._fast_state
            if fast is None:
                fast = self._fast_state = self._fast_path_ok()
            process = self._ack_fast if fast else self._process_ack
            for packet in packets:
                if packet.kind is PacketKind.ACK:
                    if packet.corrupt:
                        self.corrupt_acks_dropped += 1
                        continue
                    process(packet)
                    if self.completed_at is not None:
                        break
        Packet.recycle_acks(packets)

    def _fast_path_ok(self) -> bool:
        """Whether the fused transcriptions (:meth:`_ack_fast` /
        :meth:`_try_send_fast`) may run.  Latched on first use: they
        inline the bodies of the legacy reference methods, so any
        instance- or subclass-level override of those (tests hook
        ``_transmit``; the validator substitutes ``_process_ack``) must
        route through the overridable per-packet path instead.
        """
        if not self._fast:
            return False
        cls = type(self)
        d = self.__dict__
        for name in (
            "_transmit",
            "_try_send",
            "_process_ack",
            "_advance_una",
            "_update_rto",
            "_detect_losses",
            "_arm_pacing_timer",
        ):
            if getattr(cls, name) is not getattr(TcpSender, name):
                return False
            if name in d:
                return False
        return True

    def _ack_fast(self, packet: Packet) -> None:
        """Fused ACK processing for the batched engine.

        A line-for-line transcription of :meth:`_process_ack` with the
        per-ACK helper calls (``_advance_una``, ``_update_rto``, the
        ``inflight`` property, the timer rearms, ``_detect_losses``'s
        no-loss case) inlined in restricted, compilable style: flat
        locals, no closures, branches instead of ``min``/``max`` calls.
        Every simulator seq reservation and every float operation happens
        in the original order, so the two paths are bit-identical; the
        original methods are the executable reference and take over
        whenever the scoreboard is non-trivial.
        """
        sim = self._sim
        now = sim._now
        ack = packet.ack_next
        old_una = self.snd_una

        if (
            self.ecn
            and packet.ecn_echo
            and old_una >= self._ecn_cwr_point
            and not self._in_recovery
        ):
            self._ecn_cwr_point = self.snd_nxt
            self.ecn_reductions += 1
            self.cc.on_loss_event(now, self.inflight)

        sack = packet.sack
        newly_sacked = self._apply_sack(sack) if sack else 0
        delivered_this_ack = newly_sacked

        sacked = self._sacked
        lost = self._lost_set
        retx = self._retx_out
        if ack > old_una:
            # _advance_una, fast case: empty scoreboard means every seq in
            # [snd_una, ack) is newly acked and only the send-info record
            # and RACK point need maintenance.
            if not sacked and not lost and not retx:
                newly = ack - old_una
                self._newly_acked = newly
                pop_info = self._send_info.pop
                rack_time = self._rack_time
                for seq in range(old_una, ack):
                    info = pop_info(seq, None)
                    if info is not None:
                        sent = info[0]
                        if sent > rack_time:
                            rack_time = sent
                self._rack_time = rack_time
                self.snd_una = ack
                if ack > self._loss_scan_ptr:
                    self._loss_scan_ptr = ack
                heap = self._lost_heap
                while heap and heap[0] < ack:
                    heapq.heappop(heap)
            else:
                self._advance_una(ack)
                newly = self._newly_acked
            rtt_sample: float | None = None
            if not packet.echo_retransmit and packet.echo_ts > 0:
                rtt_sample = now - packet.echo_ts
                if rtt_sample < 1e-9:
                    rtt_sample = 1e-9
                # _update_rto inlined.
                srtt = self._srtt
                if srtt is None:
                    srtt = rtt_sample
                    rttvar = rtt_sample / 2.0
                else:
                    dev = srtt - rtt_sample
                    if dev < 0.0:
                        dev = -dev
                    rttvar = 0.75 * self._rttvar + 0.25 * dev
                    srtt = 0.875 * srtt + 0.125 * rtt_sample
                self._srtt = srtt
                self._rttvar = rttvar
                rto = srtt + 4.0 * rttvar
                if rto < _MIN_RTO:
                    rto = _MIN_RTO
                elif rto > _MAX_RTO:
                    rto = _MAX_RTO
                self._rto = rto
            delivered_this_ack += newly
            self._delivered += newly
            self._delivered_time = now
            if self._needs_rate:
                delivery_rate = self._take_rate_sample(ack, now)
            else:
                delivery_rate = None

            if self._in_recovery and ack >= self._recover_point:
                self._in_recovery = False
                self._recovery_budget = 0.0
                retx.clear()
                self.cc.on_recovery_exit(now)
            if not self._in_recovery:
                pipe = (
                    (self.snd_nxt - ack)
                    - len(sacked)
                    - len(lost)
                    + len(retx)
                )
                if pipe < 0:
                    pipe = 0
                sample = self._ack_scratch
                sample.newly_acked = newly
                sample.rtt = rtt_sample
                sample.delivery_rate = delivery_rate
                sample.inflight = pipe
                sample.now = now
                self.cc.on_ack(sample)
            if self._total is not None and ack >= self._total:
                self._complete(now)
                return
        if (ack > old_una or newly_sacked > 0) and self.snd_nxt > self.snd_una:
            # _restart_rto_timer + _rearm_tlp_timer: soft-reschedule
            # deadline writes, each reserving the seq the cancel+push
            # engine would have consumed (see repro.sim.timer).
            timer = self._rto_timer
            seq = sim._seq
            sim._seq = seq + 1
            time = now + self._rto
            timer._deadline = time
            timer._deadline_seq = seq
            armed = timer._armed_time
            if armed is None or time < armed:
                timer._armed_time = time
                timer._armed_seq = seq
                sim.call_at_reserved(time, seq, timer._fire, seq)
            srtt = self._srtt
            if srtt is not None:
                pto = _TLP_SRTT_FACTOR * srtt
                cap = 0.9 * self._rto
                if pto > cap:
                    pto = cap
                if pto < 1e-3:
                    pto = 1e-3
                timer = self._tlp_timer
                seq = sim._seq
                sim._seq = seq + 1
                time = now + pto
                timer._deadline = time
                timer._deadline_seq = seq
                armed = timer._armed_time
                if armed is None or time < armed:
                    timer._armed_time = time
                    timer._armed_seq = seq
                    sim.call_at_reserved(time, seq, timer._fire, seq)

        # _detect_losses, fast case: an empty scoreboard with no unscanned
        # holes leaves only the RACK head probe (membership tests against
        # empty sets elided).
        if not sacked and not lost and not retx:
            horizon = self._fack - _DUP_THRESH
            una = self.snd_una
            scan = self._loss_scan_ptr
            if scan < una:
                scan = una
            if scan < horizon:
                self._detect_losses(now)
            else:
                if scan > self._loss_scan_ptr:
                    self._loss_scan_ptr = scan
                srtt = self._srtt
                rack_time = self._rack_time
                new_loss = False
                if srtt is not None and rack_time > 0:
                    reo = 0.25 * srtt + 4.0 * self._rttvar
                    head_end = una + 8
                    snd_nxt = self.snd_nxt
                    if head_end > snd_nxt:
                        head_end = snd_nxt
                    get_info = self._send_info.get
                    for seq in range(una, head_end):
                        if seq in lost:
                            continue
                        info = get_info(seq)
                        if info is not None and info[0] + reo < rack_time:
                            lost.add(seq)
                            heapq.heappush(self._lost_heap, seq)
                            new_loss = True
                if new_loss and not self._in_recovery:
                    self._enter_recovery(now)
        else:
            self._detect_losses(now)
        if self._in_recovery:
            if delivered_this_ack > 0:
                self._recovery_budget += delivered_this_ack
            pipe = (
                (self.snd_nxt - self.snd_una)
                - len(sacked)
                - len(lost)
                + len(retx)
            )
            if pipe < 0:
                pipe = 0
            if pipe < self.cc.cwnd:
                self._recovery_budget += 1
        self._try_send_fast(now)

    def _try_send_fast(self, now: float) -> None:
        """Fused :meth:`_try_send` for the batched engine: same decision
        sequence, same seq reservations, helper calls inlined."""
        if self.completed_at is not None or not self.started:
            return
        cc = self.cc
        rate = cc.pacing_rate(now) if self._cc_paces else None
        srtt = self._srtt
        if rate is None and srtt is not None:
            cwnd = cc.cwnd
            ratio = _PACING_SS_RATIO if cwnd < cc.ssthresh else _PACING_CA_RATIO
            rate = ratio * cwnd / srtt
            if rate < 1.0:
                rate = 1.0
        sim = self._sim
        sacked = self._sacked
        lost = self._lost_set
        retx = self._retx_out
        lost_heap = self._lost_heap
        total = self._total
        while True:
            # _next_lost inlined.
            retx_seq = None
            while lost_heap:
                head = lost_heap[0]
                if head in lost and head >= self.snd_una:
                    retx_seq = head
                    break
                heapq.heappop(lost_heap)
            snd_nxt = self.snd_nxt
            if retx_seq is None and not (total is None or snd_nxt < total):
                return
            pipe = (snd_nxt - self.snd_una) - len(sacked) - len(lost) + len(retx)
            if pipe < 0:
                pipe = 0
            if pipe + 1 > cc.cwnd:
                return
            in_recovery = self._in_recovery
            if in_recovery and self._recovery_budget < 1.0:
                return
            if rate is not None:
                nst = self._next_send_time
                if now < nst - 1e-12:
                    # _arm_pacing_timer inlined: now < nst so the
                    # schedule_at target is nst itself.
                    timer = self._pacing_timer
                    if timer._deadline is None:
                        seq = sim._seq
                        sim._seq = seq + 1
                        timer._deadline = nst
                        timer._deadline_seq = seq
                        armed = timer._armed_time
                        if armed is None or nst < armed:
                            timer._armed_time = nst
                            timer._armed_seq = seq
                            sim.call_at_reserved(nst, seq, timer._fire, seq)
                    return
                if nst < now:
                    nst = now
                self._next_send_time = nst + 1.0 / rate
            if in_recovery:
                self._recovery_budget -= 1.0
            if retx_seq is not None:
                heapq.heappop(lost_heap)
                lost.discard(retx_seq)
                retx[retx_seq] = now
                self.retransmits += 1
                seq = retx_seq
                retransmit = True
            else:
                seq = snd_nxt
                self.snd_nxt = seq + 1
                retransmit = False
            # _transmit inlined, including the Packet.data pool draw
            # (same stores, same uid draw, no classmethod/kwargs call).
            self.packets_sent += 1
            self._send_info[seq] = (
                now,
                self._delivered,
                self._delivered_time,
                retransmit,
            )
            pool = Packet._data_pool
            if pool:
                pkt = pool.pop()
                pkt._in_pool = False
                pkt.generation += 1
                pkt.flow = self.flow
                pkt.seq = seq
                pkt.size = self._mss
                pkt.sent_at = now
                pkt.retransmit = retransmit
                pkt.ecn_capable = self.ecn
                pkt.ce = False
                pkt.corrupt = False
                pkt.uid = next(_packet_ids)
            else:
                pkt = Packet.data(
                    self.flow,
                    seq,
                    now,
                    size=self._mss,
                    retransmit=retransmit,
                    ecn_capable=self.ecn,
                )
            self._egress_fast(pkt)
            if self._rto_timer._deadline is None:
                self._restart_rto_timer()
            if self._tlp_timer._deadline is None:
                self._rearm_tlp_timer()

    def _process_ack(self, packet: Packet) -> None:
        now = self._sim.now
        ack = packet.ack_next
        old_una = self.snd_una

        if (
            self.ecn
            and packet.ecn_echo
            and self.snd_una >= self._ecn_cwr_point
            and not self._in_recovery
        ):
            self._ecn_cwr_point = self.snd_nxt
            self.ecn_reductions += 1
            self.cc.on_loss_event(now, self.inflight)

        newly_sacked = self._apply_sack(packet.sack)
        delivered_this_ack = newly_sacked

        if ack > self.snd_una:
            self._advance_una(ack)
            rtt_sample: float | None = None
            if not packet.echo_retransmit and packet.echo_ts > 0:
                rtt_sample = max(now - packet.echo_ts, 1e-9)
                self._update_rto(rtt_sample)
            newly = self._newly_acked
            delivered_this_ack += newly
            self._delivered += newly
            self._delivered_time = now
            delivery_rate = self._take_rate_sample(ack, now)

            if self._in_recovery and ack >= self._recover_point:
                self._in_recovery = False
                self._recovery_budget = 0.0
                self._retx_out.clear()
                self.cc.on_recovery_exit(now)
            if not self._in_recovery:
                self.cc.on_ack(
                    AckSample(
                        newly_acked=newly,
                        rtt=rtt_sample,
                        delivery_rate=delivery_rate,
                        inflight=self.inflight,
                        now=now,
                    )
                )
            if self._total is not None and self.snd_una >= self._total:
                self._complete(now)
                return
        if (ack > old_una or newly_sacked > 0) and self.snd_nxt > self.snd_una:
            # Forward progress (cumulative or SACK): the connection is not
            # stalled, so push the retransmission timer out (Linux rearms
            # the RTO on any ACK that advances the scoreboard — otherwise
            # a long SACK-paced recovery gets nuked by a spurious RTO).
            self._restart_rto_timer()
            self._rearm_tlp_timer()

        self._detect_losses(now)
        if self._in_recovery:
            # PRR: clock transmissions to deliveries; the +1 below is the
            # slow-start reduction bound (grow the pipe back toward cwnd
            # when it fell under it, e.g. after losing a whole flight).
            self._recovery_budget += max(delivered_this_ack, 0)
            if self.inflight < self.cc.cwnd:
                self._recovery_budget += 1
        self._try_send()

    def _advance_una(self, ack: int) -> None:
        """Move ``snd_una`` to ``ack`` and prune scoreboard state below."""
        newly = 0
        sacked = self._sacked
        lost = self._lost_set
        retx = self._retx_out
        pop_info = self._send_info.pop
        rack_time = self._rack_time
        for seq in range(self.snd_una, ack):
            if seq in sacked:
                sacked.discard(seq)
            else:
                newly += 1
            lost.discard(seq)
            retx.pop(seq, None)
            info = pop_info(seq, None)
            if info is not None and info[0] > rack_time:
                rack_time = info[0]
        self._rack_time = rack_time
        self._newly_acked = newly
        self.snd_una = ack
        if ack > self._loss_scan_ptr:
            self._loss_scan_ptr = ack
        # Drop stale heap heads lazily.
        heap = self._lost_heap
        while heap and heap[0] < ack:
            heapq.heappop(heap)

    def _apply_sack(self, ranges: tuple[tuple[int, int], ...]) -> int:
        """Merge SACK ranges into the scoreboard; return newly SACKed count."""
        newly = 0
        sacked = self._sacked
        lost = self._lost_set
        retx = self._retx_out
        get_info = self._send_info.get
        rack_time = self._rack_time
        una = self.snd_una
        fack = self._fack
        for start, end in ranges:
            if start < una:
                start = una
            for seq in range(start, end):
                if seq not in sacked:
                    sacked.add(seq)
                    lost.discard(seq)
                    retx.pop(seq, None)
                    info = get_info(seq)
                    if info is not None and info[0] > rack_time:
                        rack_time = info[0]
                    newly += 1
            if end > fack:
                fack = end
        self._rack_time = rack_time
        self._fack = fack
        return newly

    def _detect_losses(self, now: float) -> None:
        """Mark holes with >= DupThresh SACKed packets above them as lost,
        and re-mark stale retransmissions (RACK-style: a retransmit still
        unacknowledged after ~1.5 smoothed RTTs was lost again — Linux's
        RACK-TLP behaviour, without which a dropped retransmission stalls
        the flow until an RTO)."""
        sacked = self._sacked
        lost = self._lost_set
        retx = self._retx_out
        lost_heap = self._lost_heap
        heappush = heapq.heappush
        una = self.snd_una
        horizon = self._fack - _DUP_THRESH
        new_loss = False
        scan = self._loss_scan_ptr
        if una > scan:
            scan = una
        while scan < horizon:
            if scan not in sacked and scan not in retx and scan not in lost:
                lost.add(scan)
                heappush(lost_heap, scan)
                new_loss = True
            scan += 1
        if scan > self._loss_scan_ptr:
            self._loss_scan_ptr = scan

        srtt = self._srtt
        if retx and srtt is not None:
            reo_window = 1.5 * srtt + 4.0 * self._rttvar
            stale = None
            for seq, sent in retx.items():
                if now - sent > reo_window:
                    if stale is None:
                        stale = [seq]
                    else:
                        stale.append(seq)
            if stale is not None:
                for seq in stale:
                    del retx[seq]
                    lost.add(seq)
                    heappush(lost_heap, seq)
                new_loss = True

        # RACK time-based detection for the head of the window: a packet
        # sent a reordering-window before the most recently delivered one
        # is lost even when fewer than DupThresh packets follow it (the
        # small-cwnd regime where dup-ACK detection cannot fire and Linux
        # relies on RACK-TLP).  DupThresh handles the large-window case,
        # so scanning a few head sequences suffices.
        rack_time = self._rack_time
        if srtt is not None and rack_time > 0:
            reo = 0.25 * srtt + 4.0 * self._rttvar
            head_end = una + 8
            snd_nxt = self.snd_nxt
            if snd_nxt < head_end:
                head_end = snd_nxt
            get_info = self._send_info.get
            for seq in range(una, head_end):
                if seq in sacked or seq in lost or seq in retx:
                    continue
                info = get_info(seq)
                if info is not None and info[0] + reo < rack_time:
                    lost.add(seq)
                    heappush(lost_heap, seq)
                    new_loss = True

        if new_loss and not self._in_recovery:
            self._enter_recovery(now)

    def _enter_recovery(self, now: float) -> None:
        self._in_recovery = True
        self._recover_point = self.snd_nxt
        # Allow the immediate fast retransmit that opens recovery.
        self._recovery_budget = max(self._recovery_budget, 1.0)
        self.loss_events += 1
        self.cc.on_loss_event(now, self.inflight)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _start(self) -> None:
        self.started = True
        self._next_send_time = self._sim.now
        self._try_send()

    def _next_lost(self) -> int | None:
        heap = self._lost_heap
        while heap:
            seq = heap[0]
            if seq in self._lost_set and seq >= self.snd_una:
                return seq
            heapq.heappop(heap)
        return None

    def _try_send(self) -> None:
        if self.done or not self.started:
            return
        now = self._sim.now
        rate = self.cc.pacing_rate(now)
        if rate is None and self._srtt is not None:
            # Linux-style internal pacing: spread the window over the RTT.
            ratio = _PACING_SS_RATIO if self.cc.in_slow_start else _PACING_CA_RATIO
            rate = max(ratio * self.cc.cwnd / self._srtt, 1.0)
        while True:
            retx_seq = self._next_lost()
            if retx_seq is None and not self._may_send_new():
                return
            if self.inflight + 1 > self.cc.cwnd:
                return
            if self._in_recovery and self._recovery_budget < 1.0:
                return
            if rate is not None:
                if now < self._next_send_time - 1e-12:
                    self._arm_pacing_timer()
                    return
                self._next_send_time = max(self._next_send_time, now) + 1.0 / rate
            if self._in_recovery:
                self._recovery_budget -= 1.0
            if retx_seq is not None:
                heapq.heappop(self._lost_heap)
                self._lost_set.discard(retx_seq)
                self._retx_out[retx_seq] = now
                self.retransmits += 1
                self._transmit(retx_seq, retransmit=True)
            else:
                seq = self.snd_nxt
                self.snd_nxt += 1
                self._transmit(seq, retransmit=False)
            if not self._rto_timer.active:
                self._restart_rto_timer()
            if not self._tlp_timer.active:
                self._rearm_tlp_timer()

    def _may_send_new(self) -> bool:
        return self._total is None or self.snd_nxt < self._total

    def _transmit(self, seq: int, *, retransmit: bool) -> None:
        now = self._sim.now
        self.packets_sent += 1
        self._send_info[seq] = (
            now,
            self._delivered,
            self._delivered_time,
            retransmit,
        )
        packet = Packet.data(
            self.flow,
            seq,
            now,
            size=self._mss,
            retransmit=retransmit,
            ecn_capable=self.ecn,
        )
        self._egress.receive(packet)

    def _arm_pacing_timer(self) -> None:
        if self._pacing_timer.active:
            return
        self._pacing_timer.schedule_at(
            max(self._next_send_time, self._sim.now)
        )

    def _on_pacing_timer(self) -> None:
        fast = self._fast_state
        if fast is None:
            fast = self._fast_state = self._fast_path_ok()
        if fast:
            self._try_send_fast(self._sim._now)
        else:
            self._try_send()

    # ------------------------------------------------------------------
    # Delivery-rate sampling (BBR)
    # ------------------------------------------------------------------

    def _take_rate_sample(self, ack: int, now: float) -> float | None:
        if not self.cc.needs_rate_samples:
            return None
        info = self._send_info.get(ack - 1)
        if len(self._send_info) > 4 * max(int(self.cc.cwnd), 256):
            self._send_info = {
                s: v for s, v in self._send_info.items() if s >= ack
            }
        if info is None:
            return None
        _sent, delivered_at_send, delivered_time_at_send, retransmit = info
        if retransmit:
            return None
        interval = now - delivered_time_at_send
        if interval <= 0:
            return None
        return (self._delivered - delivered_at_send) / interval

    # ------------------------------------------------------------------
    # RTO machinery
    # ------------------------------------------------------------------

    def _update_rto(self, rtt: float) -> None:
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self._rto = min(
            max(self._srtt + 4.0 * self._rttvar, _MIN_RTO), _MAX_RTO
        )

    def _rearm_tlp_timer(self) -> None:
        if self._srtt is None:
            return
        # Linux arms the loss probe in place of the RTO, so the probe always
        # fires first and the RTO remains the backstop behind it.
        pto = max(min(_TLP_SRTT_FACTOR * self._srtt, 0.9 * self._rto), 1e-3)
        self._tlp_timer.schedule_after(pto)

    def _on_tlp(self) -> None:
        if self.done or self.snd_nxt <= self.snd_una:
            return
        # Probe with the highest-sequenced un-SACKed outstanding packet;
        # its (S)ACK rearms the scoreboard.  Sent outside the cwnd check —
        # it's a probe.  One probe per quiet period (rearmed by ACKs).
        probe = None
        for seq in range(self.snd_nxt - 1, self.snd_una - 1, -1):
            if seq not in self._sacked:
                probe = seq
                break
        if probe is None:
            return
        self.tlp_probes += 1
        self._lost_set.discard(probe)
        self._retx_out[probe] = self._sim.now
        self._transmit(probe, retransmit=True)
        # Give the probe a full RTO to report back before the backstop
        # fires (Linux rearms the retransmission timer at probe send).
        self._restart_rto_timer()

    def _restart_rto_timer(self) -> None:
        if self.snd_nxt > self.snd_una:
            self._rto_timer.schedule_after(self._rto)
        else:
            self._rto_timer.cancel()

    def _cancel_rto_timer(self) -> None:
        self._rto_timer.cancel()

    def _on_rto(self) -> None:
        if self.done or self.snd_nxt <= self.snd_una:
            return
        now = self._sim.now
        self.timeouts += 1
        self._in_recovery = False
        # RFC 5681: ssthresh is based on FlightSize (all outstanding data),
        # not the loss-adjusted pipe — repeated RTOs while the flight stays
        # outstanding must not grind ssthresh down to the minimum.
        flight = self.snd_nxt - self.snd_una
        self.cc.on_timeout(now, flight)
        self._rto = min(self._rto * 2.0, _MAX_RTO)
        # Everything outstanding and un-SACKed is presumed lost; the send
        # loop retransmits it under the collapsed window, oldest first.
        self._retx_out.clear()
        for seq in range(self.snd_una, self.snd_nxt):
            if seq not in self._sacked and seq not in self._lost_set:
                self._lost_set.add(seq)
                heapq.heappush(self._lost_heap, seq)
        self._restart_rto_timer()
        self._try_send()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def _complete(self, now: float) -> None:
        self.completed_at = now
        self._rto_timer.cancel()
        self._tlp_timer.cancel()
        self._pacing_timer.cancel()
        self._send_info.clear()
        self._sacked.clear()
        self._lost_set.clear()
        self._lost_heap.clear()
        self._retx_out.clear()
        if self._on_complete is not None:
            self._on_complete(self, now)


class TcpReceiver:
    """One flow's receiver: cumulative ACKs plus SACK blocks.

    Out-of-order data is tracked as disjoint ``[start, end)`` ranges; each
    ACK reports the lowest three (enough for the sender's scoreboard, like
    the 3-block SACK option of real TCP).
    """

    #: Maximum SACK ranges advertised per ACK.
    MAX_SACK_RANGES = 3

    def __init__(self, sim: Simulator, ack_path: PacketSink) -> None:
        self._sim = sim
        self._ack_path = ack_path
        self._ack_path_batch = batch_capable(ack_path)
        #: Fused single-packet return entry (the pipe's ``receive_fast``
        #: when it has one) for the demux singleton path.
        self._ack_path_one = getattr(ack_path, "receive_fast", None)
        if self._ack_path_one is None:
            self._ack_path_one = ack_path.receive
        self._ack_scratch: list[Packet] = []
        self.rcv_nxt = 0
        self._ranges: list[list[int]] = []  # disjoint, sorted [start, end)
        self.data_packets = 0
        self.data_bytes = 0
        self.duplicates = 0
        self.corrupt_dropped = 0

    @property
    def sack_ranges(self) -> tuple[tuple[int, int], ...]:
        """Current out-of-order ranges (for tests)."""
        return tuple((r[0], r[1]) for r in self._ranges)

    def receive(self, packet: Packet) -> None:
        if not packet.is_data:
            return
        if packet.corrupt:
            # Failed checksum: drop without acknowledging.  The receiver
            # is the terminal consumer either way, so the packet is
            # recycled exactly once (the `_in_pool` latch).
            self.corrupt_dropped += 1
            Packet.recycle(packet)
            return
        self.data_packets += 1
        self.data_bytes += packet.size
        seq = packet.seq
        if seq == self.rcv_nxt:
            self.rcv_nxt += 1
            if self._ranges and self._ranges[0][0] == self.rcv_nxt:
                self.rcv_nxt = self._ranges.pop(0)[1]
        elif seq > self.rcv_nxt:
            self._insert(seq)
        else:
            self.duplicates += 1
        ack = Packet.ack(
            packet.flow,
            self.rcv_nxt,
            self._sim.now,
            echo_ts=packet.sent_at,
            echo_retransmit=packet.retransmit,
            sack=self._sack_blocks(seq),
            ecn_echo=packet.ce,
        )
        self._ack_path.receive(ack)

    def receive_batch(self, packets: list[Packet]) -> None:
        """Fused batch path: one pass over the data packets, ACKs
        collected and handed to the return pipe in a single call.

        Nothing between two ACK constructions consumes a simulator seq
        or a packet uid in the unbatched engine (receiver bookkeeping is
        pure), so creating the ACKs back-to-back and reserving their
        return-pipe seqs consecutively reproduces the unbatched
        assignment exactly.
        """
        acks = self._ack_scratch
        acks.clear()
        now = self._sim._now
        make_ack = Packet.ack
        ack_pool = Packet._ack_pool
        append = acks.append
        data_packets = 0
        data_bytes = 0
        for packet in packets:
            if packet.kind is not PacketKind.DATA:
                continue
            if packet.corrupt:
                # Dropped without an ACK; the end-of-loop recycle_data
                # pass returns it to the pool with the rest of the batch.
                self.corrupt_dropped += 1
                continue
            data_packets += 1
            data_bytes += packet.size
            seq = packet.seq
            rcv_nxt = self.rcv_nxt
            if seq == rcv_nxt:
                rcv_nxt += 1
                ranges = self._ranges
                if ranges and ranges[0][0] == rcv_nxt:
                    rcv_nxt = ranges.pop(0)[1]
                self.rcv_nxt = rcv_nxt
            elif seq > rcv_nxt:
                self._insert(seq)
            else:
                self.duplicates += 1
            sack = () if not self._ranges else self._sack_blocks(seq)
            # Packet.ack pool draw inlined (same stores, same uid draw).
            if ack_pool:
                ackpkt = ack_pool.pop()
                ackpkt._in_pool = False
                ackpkt.generation += 1
                ackpkt.flow = packet.flow
                ackpkt.corrupt = False
                ackpkt.sent_at = now
                ackpkt.ack_next = self.rcv_nxt
                ackpkt.echo_ts = packet.sent_at
                ackpkt.echo_retransmit = packet.retransmit
                ackpkt.ecn_echo = packet.ce
                ackpkt.sack = sack
                ackpkt.uid = next(_packet_ids)
            else:
                ackpkt = make_ack(
                    packet.flow,
                    self.rcv_nxt,
                    now,
                    echo_ts=packet.sent_at,
                    echo_retransmit=packet.retransmit,
                    sack=sack,
                    ecn_echo=packet.ce,
                )
            append(ackpkt)
        self.data_packets += data_packets
        self.data_bytes += data_bytes
        # The receiver is the terminal consumer of data packets (upstream
        # components record scalars only), so the batch path returns them
        # to the free list before forwarding the ACKs — the unbatched
        # reference engine never reaches here, so its allocation pattern
        # is untouched.
        Packet.recycle_data(packets)
        if acks:
            self._ack_path_batch.receive_batch(acks)

    def receive_one(self, packet: Packet) -> None:
        """Fused single-packet path for demux singleton runs.

        Same bookkeeping as :meth:`receive` with the common in-order case
        flattened: the SACK scan is skipped while no out-of-order ranges
        exist, the ACK rides the batch-capable return path (reserving the
        exact seq ``receive`` would), and the consumed data packet is
        recycled.  Only the batched engine routes here (via
        :meth:`FlowDemux.receive_batch`), so the legacy engine keeps its
        allocation pattern.
        """
        if packet.kind is not PacketKind.DATA:
            return
        if packet.corrupt:
            self.corrupt_dropped += 1
            Packet.recycle(packet)
            return
        self.data_packets += 1
        self.data_bytes += packet.size
        seq = packet.seq
        rcv_nxt = self.rcv_nxt
        if seq == rcv_nxt:
            rcv_nxt += 1
            ranges = self._ranges
            if ranges and ranges[0][0] == rcv_nxt:
                rcv_nxt = ranges.pop(0)[1]
            self.rcv_nxt = rcv_nxt
        elif seq > rcv_nxt:
            self._insert(seq)
        else:
            self.duplicates += 1
        sack = () if not self._ranges else self._sack_blocks(seq)
        # Packet.ack pool draw inlined (same stores, same uid draw).
        ack_pool = Packet._ack_pool
        if ack_pool:
            ack = ack_pool.pop()
            ack._in_pool = False
            ack.generation += 1
            ack.flow = packet.flow
            ack.corrupt = False
            ack.sent_at = self._sim._now
            ack.ack_next = self.rcv_nxt
            ack.echo_ts = packet.sent_at
            ack.echo_retransmit = packet.retransmit
            ack.ecn_echo = packet.ce
            ack.sack = sack
            ack.uid = next(_packet_ids)
        else:
            ack = Packet.ack(
                packet.flow,
                self.rcv_nxt,
                self._sim._now,
                echo_ts=packet.sent_at,
                echo_retransmit=packet.retransmit,
                sack=sack,
                ecn_echo=packet.ce,
            )
        if not packet._in_pool:
            pool = Packet._data_pool
            if len(pool) < Packet._DATA_POOL_MAX:
                packet._in_pool = True
                pool.append(packet)
        self._ack_path_one(ack)

    def _sack_blocks(self, seq: int) -> tuple[tuple[int, int], ...]:
        """Up to three SACK blocks, the one containing the segment that
        triggered this ACK first (RFC 2018 — without this, a sender draining
        a large loss episode cannot see that later ACKs report progress)."""
        ranges = self._ranges
        if not ranges:
            return ()
        triggering = None
        for r in ranges:
            if r[0] <= seq < r[1]:
                triggering = r
                break
        blocks: list[tuple[int, int]] = []
        if triggering is not None:
            blocks.append((triggering[0], triggering[1]))
        for r in ranges:
            if len(blocks) >= self.MAX_SACK_RANGES:
                break
            if r is not triggering:
                blocks.append((r[0], r[1]))
        return tuple(blocks)

    def _insert(self, seq: int) -> None:
        """Insert ``seq`` into the disjoint range list, merging neighbours."""
        import bisect

        ranges = self._ranges
        i = bisect.bisect_right(ranges, seq, key=lambda r: r[0])
        # Check the range before (could contain or abut seq).
        if i > 0:
            prev = ranges[i - 1]
            if seq < prev[1]:
                self.duplicates += 1
                return
            if seq == prev[1]:
                prev[1] += 1
                if i < len(ranges) and ranges[i][0] == prev[1]:
                    prev[1] = ranges[i][1]
                    del ranges[i]
                return
        if i < len(ranges) and ranges[i][0] == seq + 1:
            ranges[i][0] = seq
            return
        ranges.insert(i, [seq, seq + 1])


class FlowDemux:
    """Routes packets to per-flow sinks by :class:`FlowId`."""

    def __init__(self) -> None:
        self._sinks: dict[FlowId, PacketSink] = {}
        #: Lazily-resolved single-packet dispatch per flow: the sink's
        #: ``receive_one`` fast path when it has one, else its plain
        #: ``receive``.  Invalidated on (re-)registration.
        self._ones: dict[FlowId, Callable[[Packet], None]] = {}
        self.unroutable = 0

    def register(self, flow: FlowId, sink: PacketSink) -> None:
        """Route ``flow``'s packets to ``sink`` (later wins)."""
        self._sinks[flow] = sink
        self._ones.pop(flow, None)

    def unregister(self, flow: FlowId) -> None:
        """Stop routing ``flow``; unknown flows are ignored."""
        self._sinks.pop(flow, None)
        self._ones.pop(flow, None)

    def receive(self, packet: Packet) -> None:
        sink = self._sinks.get(packet.flow)
        if sink is None:
            self.unroutable += 1
            return
        sink.receive(packet)

    def receive_batch(self, packets: list[Packet]) -> None:
        """Route a same-instant batch, merging *consecutive* same-flow
        runs into one sink call (merging across an unrelated packet would
        reorder traversals the unbatched engine keeps in order)."""
        sinks = self._sinks
        ones = self._ones
        n = len(packets)
        i = 0
        while i < n:
            packet = packets[i]
            flow = packet.flow
            j = i + 1
            while j < n and packets[j].flow == flow:
                j += 1
            sink = sinks.get(flow)
            if sink is None:
                self.unroutable += j - i
            elif j - i == 1:
                one = ones.get(flow)
                if one is None:
                    one = getattr(sink, "receive_one", None)
                    if one is None:
                        one = sink.receive
                    ones[flow] = one
                one(packet)
            else:
                batch = getattr(sink, "receive_batch", None)
                if batch is not None:
                    batch(packets[i:j])
                else:
                    receive = sink.receive
                    for k in range(i, j):
                        receive(packets[k])
            i = j
