"""Congestion-control plugin interface.

All quantities are in MSS-sized packets: ``cwnd`` is a float window in
packets, pacing rates are packets per second.  The sender owns loss
detection and recovery bookkeeping; controllers only react to the events
below.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(slots=True)
class AckSample:
    """What the sender learned from one cumulative ACK.

    The sample is consumed synchronously inside
    :meth:`CongestionControl.on_ack`; the sender's fused ACK path reuses
    one scratch instance across ACKs, so controllers must not retain a
    reference past the call (copy the fields out if needed).

    Attributes
    ----------
    newly_acked:
        Packets newly acknowledged by this ACK.
    rtt:
        Round-trip sample in seconds, or ``None`` when the sample is
        invalid (Karn's rule: the acked packet was retransmitted).
    delivery_rate:
        Delivery-rate sample in packets/second (BBR-style rate sampling),
        or ``None`` when the controller didn't request sampling.
    inflight:
        Sender's in-flight estimate *after* this ACK, in packets.
    now:
        Simulation time of the ACK.
    """

    newly_acked: int
    rtt: float | None
    delivery_rate: float | None
    inflight: float
    now: float


class CongestionControl(ABC):
    """Base class for congestion controllers.

    Subclasses maintain :attr:`cwnd` (in packets) and may expose a pacing
    rate.  The sender calls:

    * :meth:`on_ack` for each ACK advancing ``snd_una`` outside recovery,
    * :meth:`on_loss_event` once per fast-retransmit loss event,
    * :meth:`on_recovery_exit` when recovery completes,
    * :meth:`on_timeout` on a retransmission timeout.
    """

    #: Human-readable algorithm name; subclasses override.
    name = "base"

    #: Floor for the congestion window, in packets.
    MIN_CWND = 2.0

    #: Whether the sender should compute per-packet delivery-rate samples
    #: (costs a dict entry per in-flight packet; only BBR needs it).
    needs_rate_samples = False

    def __init__(self, *, initial_cwnd: float = 10.0) -> None:
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float("inf")

    @abstractmethod
    def on_ack(self, sample: AckSample) -> None:
        """React to an ACK that advanced the window (not in recovery)."""

    def on_loss_event(self, now: float, inflight: float) -> None:
        """A fast-retransmit loss event: cut ssthresh/cwnd (once per event).

        The reduction is based on ``cwnd`` at the time of the loss, as in
        Linux — using the post-loss-marking pipe would let one mass drop
        (e.g. a policer exhausting its bucket under a slow-start burst)
        collapse the window to its floor in a single event.
        """
        del now, inflight
        self.ssthresh = max(self.cwnd / 2.0, self.MIN_CWND)
        self.cwnd = self.ssthresh

    def on_recovery_exit(self, now: float) -> None:
        """Recovery completed; restore cwnd to ssthresh."""
        del now
        self.cwnd = max(self.ssthresh, self.MIN_CWND)

    def on_timeout(self, now: float, flight: float) -> None:
        """Retransmission timeout: collapse to one packet, halve ssthresh.

        ``flight`` is the RFC 5681 FlightSize (all outstanding data).
        """
        del now
        self.ssthresh = max(max(flight, self.cwnd) / 2.0, self.MIN_CWND)
        self.cwnd = 1.0

    def pacing_rate(self, now: float) -> float | None:
        """Packets/second pacing rate, or ``None`` for pure ACK clocking."""
        del now
        return None

    @property
    def in_slow_start(self) -> bool:
        """True while cwnd is below ssthresh."""
        return self.cwnd < self.ssthresh

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(cwnd={self.cwnd:.2f})"


def make_cc(name: str, **kwargs: object) -> CongestionControl:
    """Instantiate a controller by name: reno/newreno, cubic, bbr, vegas."""
    from repro.cc.bbr import Bbr
    from repro.cc.cubic import Cubic
    from repro.cc.reno import NewReno
    from repro.cc.vegas import Vegas

    registry: dict[str, type[CongestionControl]] = {
        "reno": NewReno,
        "newreno": NewReno,
        "cubic": Cubic,
        "bbr": Bbr,
        "vegas": Vegas,
    }
    key = name.lower()
    if key not in registry:
        raise ValueError(f"unknown congestion control {name!r}; "
                         f"choose from {sorted(registry)}")
    return registry[key](**kwargs)  # type: ignore[arg-type]
