"""TCP Cubic congestion control (RFC 8312 dynamics, simplified).

Cubic's window growth is a function of *time since the last loss*, not of
RTT, which is why its policer bucket-size requirement differs from Reno's
(larger at small rate x RTT, smaller at large — the crossover the paper
exploits when sizing Policer+/FairPolicer).
"""

from __future__ import annotations

from repro.cc.base import AckSample, CongestionControl


class Cubic(CongestionControl):
    """Cubic window growth W(t) = C (t - K)^3 + W_max with beta = 0.7."""

    name = "cubic"

    #: RFC 8312 constants.
    C = 0.4
    BETA = 0.7

    def __init__(self, *, initial_cwnd: float = 10.0) -> None:
        super().__init__(initial_cwnd=initial_cwnd)
        self._w_max = 0.0
        self._k = 0.0
        self._epoch_start: float | None = None

    def on_ack(self, sample: AckSample) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + sample.newly_acked, self.ssthresh)
            if self.cwnd < self.ssthresh:
                return
        if self._epoch_start is None:
            self._start_epoch(sample.now)
        t = sample.now - self._epoch_start
        target = self.C * (t - self._k) ** 3 + self._w_max
        if target > self.cwnd:
            # Approach the cubic target at most one packet per ACK.
            self.cwnd += min(
                (target - self.cwnd) / self.cwnd, 1.0
            ) * sample.newly_acked
        else:
            # Max-probing plateau: creep upward slowly (RFC 8312 §4.4).
            self.cwnd += 0.01 * sample.newly_acked / self.cwnd

    def on_loss_event(self, now: float, inflight: float) -> None:
        del inflight
        self._w_max = self.cwnd
        self.ssthresh = max(self.cwnd * self.BETA, self.MIN_CWND)
        self.cwnd = self.ssthresh
        self._start_epoch(now)

    def on_timeout(self, now: float, flight: float) -> None:
        del now
        window = max(flight, self.cwnd)
        self._w_max = window
        self.ssthresh = max(window * self.BETA, self.MIN_CWND)
        self.cwnd = 1.0
        self._epoch_start = None

    def _start_epoch(self, now: float) -> None:
        self._epoch_start = now
        if self._w_max > self.cwnd:
            self._k = ((self._w_max - self.cwnd) / self.C) ** (1.0 / 3.0)
        else:
            self._k = 0.0
