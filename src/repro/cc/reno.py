"""TCP New Reno congestion control (RFC 5681/6582 core dynamics).

Reno is the protocol the paper's sizing analysis (Appendix A) is built on:
additive increase of one packet per RTT, multiplicative decrease by half.
"""

from __future__ import annotations

from repro.cc.base import AckSample, CongestionControl


class NewReno(CongestionControl):
    """Classic AIMD: slow start, then +1 MSS per RTT; halve on loss."""

    name = "reno"

    def on_ack(self, sample: AckSample) -> None:
        if self.cwnd < self.ssthresh:
            # Slow start: +1 packet per newly acked packet, not beyond
            # ssthresh (RFC 5681 §3.1).
            self.cwnd = min(self.cwnd + sample.newly_acked, self.ssthresh)
            if self.cwnd < self.ssthresh:
                return
            # Fall through into congestion avoidance for any remainder.
        self.cwnd += sample.newly_acked / self.cwnd
