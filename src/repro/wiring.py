"""Low-level flow wiring shared by scenarios and application models."""

from __future__ import annotations

from random import Random
from typing import Callable

from repro.cc.base import make_cc
from repro.cc.endpoint import FlowDemux, TcpReceiver, TcpSender
from repro.net.impair import ImpairmentSpec, build_ack_path, build_data_path
from repro.net.packet import FlowId
from repro.net.pipe import Pipe
from repro.sim.simulator import Simulator


def wire_flow(
    sim: Simulator,
    flow: FlowId,
    *,
    cc: str,
    rtt: float,
    ingress: object,
    demux: FlowDemux,
    packets: int | None,
    start: float,
    on_complete: Callable[[TcpSender, float], None] | None = None,
    ecn: bool = False,
    impair: ImpairmentSpec | None = None,
    impair_rng: Random | None = None,
) -> TcpSender:
    """Create one TCP flow wired through the limiter ingress.

    sender -> forward pipe (rtt/2) -> ingress; data returns via the
    scenario's demux to a per-flow receiver whose ACKs travel a reverse
    pipe (rtt/2) back to the sender.  Used by the scenario's
    :class:`~repro.scenario.FlowRunner` and by the application models
    (video/web sessions).

    An :class:`~repro.net.impair.ImpairmentSpec` with per-flow channels
    enabled replaces the plain pipes with impairment chains (loss,
    jitter, reordering, duplication, corruption) seeded from
    ``impair_rng``; a ``None``/disabled spec constructs the exact same
    plain pipes as before and draws nothing, so clean runs stay
    byte-identical.
    """
    impaired = impair is not None and impair_rng is not None
    if impaired and impair.data_path_enabled:
        forward = build_data_path(
            sim, rtt / 2.0, ingress, impair, impair_rng,  # type: ignore[arg-type]
            name=f"fwd-{flow}",
        )
    else:
        forward = Pipe(sim, rtt / 2.0, ingress)  # type: ignore[arg-type]
    sender = TcpSender(
        sim,
        flow,
        make_cc(cc),
        forward,
        total_packets=packets,
        start_time=start,
        on_complete=on_complete,
        initial_rtt=rtt,
        ecn=ecn,
    )
    if impaired and impair.ack_path_enabled:
        reverse = build_ack_path(sim, rtt / 2.0, sender, impair, impair_rng)
    else:
        reverse = Pipe(sim, rtt / 2.0, sender)
    demux.register(flow, TcpReceiver(sim, reverse))
    return sender
