"""Rate-sharing policy trees.

A policy describes how an aggregate's enforced rate ``r`` is divided among
``N`` queues: per-flow fairness, weighted fairness, strict prioritization,
or arbitrary nested (hierarchical) combinations of these (§3.2/§3.3 of the
paper).  The same tree drives three consumers:

* the fluid (GPS) service model of the phantom queues (:mod:`repro.core`),
* BC-PQP's per-queue dequeue-rate estimate ``r*_i`` (§4),
* the hierarchical deficit-round-robin packet scheduler of the shaper
  (:mod:`repro.sched`).
"""

from repro.policy.tree import ClassNode, Leaf, Policy

__all__ = ["ClassNode", "Leaf", "Policy"]
