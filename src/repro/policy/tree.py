"""Policy trees and their fluid (GPS) rate shares."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union


@dataclass(frozen=True)
class Leaf:
    """A leaf of the policy tree, bound to queue index ``queue``.

    ``weight`` is the share weight relative to siblings of equal priority;
    ``priority`` orders siblings (smaller = served strictly first).
    """

    queue: int
    weight: float = 1.0
    priority: int = 0

    def __post_init__(self) -> None:
        if self.queue < 0:
            raise ValueError(f"queue index must be >= 0, got {self.queue}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class ClassNode:
    """An internal traffic class grouping children under one share."""

    children: tuple["Node", ...]
    weight: float = 1.0
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.children:
            raise ValueError("a ClassNode needs at least one child")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


Node = Union[Leaf, ClassNode]


@dataclass
class _CompiledNode:
    """Flattened node with precomputed subtree leaf sets for fast traversal.

    ``leaf_mask`` is the same leaf set as a bitmask (bit ``q`` set when
    queue ``q`` lives under this subtree), so activity checks against an
    active-set bitmask are single AND operations instead of per-leaf scans.
    """

    node: Node
    leaves: tuple[int, ...]
    leaf_mask: int = 0
    children: list["_CompiledNode"] = field(default_factory=list)


class Policy:
    """A validated policy tree over queues ``0..num_queues-1``.

    Semantics at every internal node, mirroring how a policy-rich shaper
    serves real queues (§3.2):

    * only children whose subtree contains an *active* (non-empty) queue
      compete for service;
    * among active children, the smallest ``priority`` value wins everything
      (strict priority);
    * within the winning priority level, service is split proportionally to
      ``weight`` (weighted fairness; equal weights give per-flow fairness).

    :meth:`fluid_rates` returns the resulting instantaneous service rate of
    each queue — the GPS idealization that DRR/WRR schedulers approximate,
    and exactly the ``r*_i`` estimate BC-PQP's burst control needs.
    """

    #: Share vectors memoized per (active-set bitmask, rate); cleared when
    #: it grows past this many entries (distinct active sets seen).
    _SHARE_CACHE_MAX = 4096

    def __init__(self, root: Node) -> None:
        self._root = self._compile(root)
        queues = sorted(self._root.leaves)
        if queues != list(range(len(queues))):
            raise ValueError(
                "policy leaves must cover queue indices 0..N-1 exactly once, "
                f"got {queues}"
            )
        self._num_queues = len(queues)
        #: Tree-version counter baked into every memo-cache key: bumped by
        #: :meth:`invalidate`, so share vectors computed against an old
        #: tree can never be served after an edit, even if a stale entry
        #: somehow survived the accompanying cache clear.
        self._version = 0
        self._share_cache: dict[tuple[int, int, float], tuple[float, ...]] = {}
        self._compile_flat()

    def _compile_flat(self) -> None:
        """Detect a single-level tree and precompute its fast-path state.

        A flat tree (every root child a leaf — the ``fair``/``weighted``/
        ``prioritized`` factories, i.e. almost every policy an aggregate
        actually carries) needs no recursive assignment: a queue's GPS
        rate is ``rate * w_q / W`` where ``W`` sums the weights of the
        top-priority active leaves.  :meth:`fluid_rate_of` then costs
        O(active) once per new active set (O(1) for the unit-weight
        single-priority case) with a *scalar* memo instead of an
        N-vector walk and N-tuple allocation per set — the difference
        between flat and cliff-shaped per-packet cost at N=10^4 queues
        (see ``BENCH_scaling.json``).
        """
        root = self._root
        self._flat_leaves: tuple[Leaf, ...] | None = None
        self._flat_uniform = False
        self._flat_cache: dict[tuple[int, int], tuple[int, float]] = {}
        if isinstance(root.node, Leaf) or not all(
            isinstance(c.node, Leaf) for c in root.children
        ):
            return
        leaves = tuple(c.node for c in root.children)
        self._flat_leaves = leaves
        self._flat_weight = {leaf.queue: leaf.weight for leaf in leaves}
        self._flat_uniform = all(
            leaf.weight == 1.0 and leaf.priority == leaves[0].priority
            for leaf in leaves
        )

    @classmethod
    def _compile(cls, node: Node) -> _CompiledNode:
        if isinstance(node, Leaf):
            return _CompiledNode(
                node=node, leaves=(node.queue,), leaf_mask=1 << node.queue
            )
        children = [cls._compile(c) for c in node.children]
        leaves: list[int] = []
        mask = 0
        for child in children:
            leaves.extend(child.leaves)
            mask |= child.leaf_mask
        return _CompiledNode(
            node=node, leaves=tuple(leaves), leaf_mask=mask, children=children
        )

    def __getstate__(self) -> dict:
        # The memo caches are derived state; keep pickles (sweep-runner
        # configs cross process boundaries) small and deterministic.
        state = dict(self.__dict__)
        state["_share_cache"] = {}
        state["_flat_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._share_cache = {}
        self._flat_cache = {}

    @property
    def root(self) -> Node:
        """The root node of the (immutable) tree."""
        return self._root.node

    @property
    def version(self) -> int:
        """Tree-version counter; bumped by every :meth:`invalidate`."""
        return self._version

    def invalidate(self, root: Node | None = None) -> None:
        """Drop all memoized share state (optionally rebinding the tree).

        Every mutation of the tree — live policy churn replacing nodes,
        weights or priorities — must go through here: the version counter
        is part of every ``_share_cache``/``_flat_cache`` key, so a share
        vector computed against the old tree can never be served again,
        and the flat fast-path state is recompiled against the new root.

        With ``root`` given, the policy is atomically rebound to the new
        tree (validated first; on rejection the policy is untouched).
        Policies interned across limiters (``fleet/shard.py``) must never
        be edited in place — churn swaps whole :class:`Policy` objects
        there.
        """
        if root is not None:
            compiled = self._compile(root)
            queues = sorted(compiled.leaves)
            if queues != list(range(len(queues))):
                raise ValueError(
                    "policy leaves must cover queue indices 0..N-1 exactly "
                    f"once, got {queues}"
                )
            self._root = compiled
            self._num_queues = len(queues)
        self._version += 1
        self._share_cache.clear()
        self._compile_flat()

    @property
    def num_queues(self) -> int:
        """Number of queues the policy covers."""
        return self._num_queues

    def __repr__(self) -> str:
        # Deterministic (node dataclass reprs, no object ids): the sweep
        # runner's result cache hashes configs by repr.
        return f"Policy({self.root!r})"

    def _active_mask(self, active: Sequence[bool] | int) -> int:
        """Normalize an activity description to a bitmask."""
        if isinstance(active, int):
            if active < 0 or active >> self._num_queues:
                raise ValueError(
                    f"active mask {active:#x} has bits outside "
                    f"0..{self._num_queues - 1}"
                )
            return active
        if len(active) != self._num_queues:
            raise ValueError(
                f"expected {self._num_queues} activity flags, got {len(active)}"
            )
        mask = 0
        for i, flag in enumerate(active):
            if flag:
                mask |= 1 << i
        return mask

    def fluid_rates(self, active: Sequence[bool] | int, rate: float) -> list[float]:
        """Instantaneous GPS service rate of each queue.

        ``active`` says which queues currently hold data — either one flag
        per queue or a bitmask (bit ``i`` set when queue ``i`` is occupied).
        The full ``rate`` is always distributed among active queues (work
        conservation); inactive queues get 0.  If nothing is active, all
        rates are 0.

        Results are memoized per ``(mask, rate)``: the tree is only walked
        when the occupied set actually changes, which is what keeps the
        phantom drain's share lookups O(1) between active-set transitions.
        """
        return list(self._rates_for(self._active_mask(active), rate))

    def fluid_rate_of(
        self, queue: int, active: Sequence[bool] | int, rate: float
    ) -> float:
        """Single-queue GPS rate — same memoized vector, no list built.

        This is the path BC-PQP's per-packet ``r*_i`` estimate takes: an
        O(1) cache hit while the occupied set is stable, instead of
        materializing all N rates to read one entry.
        """
        if not 0 <= queue < self._num_queues:
            raise ValueError(f"queue {queue} out of range 0..{self._num_queues - 1}")
        if self._flat_leaves is not None:
            mask = self._active_mask(active)
            if rate <= 0 or not mask & (1 << queue):
                return 0.0
            if self._flat_uniform:
                # rate * 1.0 / sum-of-ones == rate / popcount, bit for bit.
                return rate / mask.bit_count()
            winner_mask, total_weight = self._flat_winners(mask)
            if not winner_mask & (1 << queue):
                return 0.0
            return rate * self._flat_weight[queue] / total_weight
        return self._rates_for(self._active_mask(active), rate)[queue]

    def _flat_winners(self, mask: int) -> tuple[int, float]:
        """Memoized ``(winner mask, total weight)`` for a flat tree.

        The weight sum iterates leaves in child order — the same order
        :meth:`_assign` sums winners in — so the fast path's shares are
        byte-identical to the recursive walk's.
        """
        key = (self._version, mask)
        cached = self._flat_cache.get(key)
        if cached is not None:
            return cached
        leaves = self._flat_leaves
        assert leaves is not None
        live = [leaf for leaf in leaves if mask & (1 << leaf.queue)]
        top = min(leaf.priority for leaf in live)
        winners = [leaf for leaf in live if leaf.priority == top]
        total_weight = sum(leaf.weight for leaf in winners)
        winner_mask = 0
        for leaf in winners:
            winner_mask |= 1 << leaf.queue
        if len(self._flat_cache) >= self._SHARE_CACHE_MAX:
            self._flat_cache.clear()
        result = (winner_mask, total_weight)
        self._flat_cache[key] = result
        return result

    def _rates_for(self, mask: int, rate: float) -> tuple[float, ...]:
        """Memoized rate vector for an active-set bitmask."""
        key = (self._version, mask, rate)
        cached = self._share_cache.get(key)
        if cached is not None:
            return cached
        rates = [0.0] * self._num_queues
        if rate > 0 and mask:
            self._assign(self._root, rate, mask, rates)
        if len(self._share_cache) >= self._SHARE_CACHE_MAX:
            self._share_cache.clear()
        result = tuple(rates)
        self._share_cache[key] = result
        return result

    def _assign(
        self,
        node: _CompiledNode,
        rate: float,
        mask: int,
        out: list[float],
    ) -> None:
        if isinstance(node.node, Leaf):
            out[node.node.queue] = rate
            return
        live = [c for c in node.children if mask & c.leaf_mask]
        if not live:
            return
        top = min(c.node.priority for c in live)
        winners = [c for c in live if c.node.priority == top]
        total_weight = sum(c.node.weight for c in winners)
        for child in winners:
            self._assign(child, rate * child.node.weight / total_weight, mask, out)

    # ------------------------------------------------------------------
    # Factories for the policies used throughout the paper.
    # ------------------------------------------------------------------

    @staticmethod
    def fair(num_queues: int) -> "Policy":
        """Per-flow fairness: round-robin across ``num_queues`` queues."""
        if num_queues < 1:
            raise ValueError("need at least one queue")
        return Policy(ClassNode(tuple(Leaf(i) for i in range(num_queues))))

    @staticmethod
    def weighted(weights: Sequence[float]) -> "Policy":
        """Weighted fairness with ``weights[i]`` for queue ``i``."""
        if not weights:
            raise ValueError("need at least one weight")
        return Policy(
            ClassNode(tuple(Leaf(i, weight=w) for i, w in enumerate(weights)))
        )

    @staticmethod
    def prioritized(
        priorities: Sequence[int], weights: Sequence[float] | None = None
    ) -> "Policy":
        """Strict priority by ``priorities[i]`` (smaller first); weighted
        fair within each priority level."""
        if not priorities:
            raise ValueError("need at least one queue")
        if weights is None:
            weights = [1.0] * len(priorities)
        if len(weights) != len(priorities):
            raise ValueError("priorities and weights must have equal length")
        return Policy(
            ClassNode(
                tuple(
                    Leaf(i, weight=w, priority=p)
                    for i, (p, w) in enumerate(zip(priorities, weights))
                )
            )
        )

    @staticmethod
    def nested(groups: Sequence[Sequence[float]], group_weights: Sequence[float] | None = None,
               group_priorities: Sequence[int] | None = None) -> "Policy":
        """Two-level hierarchy: ``groups[g]`` lists the member queue weights
        of group ``g``; queues are numbered consecutively across groups.

        Example (§3.2): two classes, the first with 2x the weight of the
        second, per-flow fairness within each class::

            Policy.nested([[1, 1], [1, 1]], group_weights=[2, 1])
        """
        if not groups:
            raise ValueError("need at least one group")
        if group_weights is None:
            group_weights = [1.0] * len(groups)
        if group_priorities is None:
            group_priorities = [0] * len(groups)
        if len(group_weights) != len(groups) or len(group_priorities) != len(groups):
            raise ValueError("group metadata must match number of groups")
        nodes: list[Node] = []
        queue = 0
        for g, members in enumerate(groups):
            if not members:
                raise ValueError(f"group {g} is empty")
            leaves = tuple(
                Leaf(queue + j, weight=w) for j, w in enumerate(members)
            )
            queue += len(members)
            nodes.append(
                ClassNode(
                    leaves,
                    weight=group_weights[g],
                    priority=group_priorities[g],
                )
            )
        return Policy(ClassNode(tuple(nodes)))
