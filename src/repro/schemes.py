"""Factory for the rate-limiting schemes compared in the evaluation (§6.1).

Sizing follows the paper:

* **Shaper** — per-queue buffers of one maximum BDP.
* **Policer** — token bucket of one maximum BDP.
* **Policer+** — token bucket sized for correct rate enforcement: the max
  of the New Reno and Cubic requirements at the largest RTT (O(BDP^2)).
* **FairPolicer (FP)** — per-flow buckets, shared bucket sized like Policer+.
* **PQP** — phantom queues at the Reno minimum (BDP^2/18 x MSS).
* **BC-PQP** — phantom queues at "a very high value" (10x the Reno
  minimum); burst control with theta+ = 1.5, theta- = 0.5, T = 100 ms.
"""

from __future__ import annotations

from repro.classify.classifier import (
    FlowClassifier,
    SingleQueueClassifier,
    SlotClassifier,
)
from repro.core.bcpqp import BCPQP
from repro.core.pqp import PQP
from repro.core.sizing import (
    bcpqp_default_buffer,
    bdp_bucket,
    policer_plus_bucket,
    reno_min_phantom_buffer,
)
from repro.limiters.base import RateLimiter
from repro.limiters.fair_policer import FairPolicer
from repro.limiters.shaper import Shaper
from repro.limiters.token_bucket import TokenBucketPolicer
from repro.policy.tree import Policy
from repro.sim.simulator import Simulator
from repro.units import MSS, ms

#: Scheme identifiers accepted by :func:`make_limiter`.
SCHEMES = (
    "shaper",
    "shaper-fifo",
    "policer",
    "policer+",
    "fairpolicer",
    "pqp",
    "bcpqp",
)

#: Minimum practical bucket/queue so tiny BDPs still pass single packets.
_MIN_BUCKET = 2 * MSS
_MIN_SHAPER_QUEUE = 16 * MSS


def make_limiter(
    sim: Simulator,
    scheme: str,
    *,
    rate: float,
    num_queues: int,
    max_rtt: float,
    policy: Policy | None = None,
    weights: list[float] | None = None,
    theta_plus: float = 1.5,
    theta_minus: float = 0.5,
    period: float = ms(100),
    queue_bytes: float | None = None,
    phantom_service: str = "fluid",
    name: str | None = None,
) -> RateLimiter:
    """Build a configured rate limiter.

    ``policy`` defaults to per-flow fairness over ``num_queues`` (or
    weighted fairness when ``weights`` is given).  ``queue_bytes``
    overrides the paper's default sizing when provided.
    ``phantom_service`` selects the pqp/bcpqp drain discipline
    (``"fluid"``, ``"fluid-ref"`` or ``"quantum"``); other schemes
    ignore it.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    if max_rtt <= 0:
        raise ValueError(f"max_rtt must be positive, got {max_rtt!r}")
    if policy is None:
        policy = (
            Policy.weighted(weights) if weights else Policy.fair(num_queues)
        )
    if policy.num_queues != num_queues:
        raise ValueError(
            f"policy covers {policy.num_queues} queues, expected {num_queues}"
        )
    label = name or scheme
    classifier: FlowClassifier = SlotClassifier(num_queues)

    if scheme == "shaper":
        per_queue = queue_bytes or max(bdp_bucket(rate, max_rtt), _MIN_SHAPER_QUEUE)
        return Shaper(
            sim,
            rate=rate,
            policy=policy,
            classifier=classifier,
            queue_bytes=per_queue,
            name=label,
        )
    if scheme == "shaper-fifo":
        per_queue = queue_bytes or max(
            num_queues * bdp_bucket(rate, max_rtt), _MIN_SHAPER_QUEUE
        )
        return Shaper(
            sim,
            rate=rate,
            policy=Policy.fair(1),
            classifier=SingleQueueClassifier(),
            queue_bytes=per_queue,
            name=label,
        )
    if scheme == "policer":
        bucket = queue_bytes or max(bdp_bucket(rate, max_rtt), _MIN_BUCKET)
        return TokenBucketPolicer(sim, rate=rate, bucket_bytes=bucket, name=label)
    if scheme == "policer+":
        bucket = queue_bytes or max(policer_plus_bucket(rate, max_rtt), _MIN_BUCKET)
        return TokenBucketPolicer(sim, rate=rate, bucket_bytes=bucket, name=label)
    if scheme == "fairpolicer":
        bucket = queue_bytes or max(policer_plus_bucket(rate, max_rtt), _MIN_BUCKET)
        return FairPolicer(
            sim,
            rate=rate,
            bucket_bytes=bucket,
            classifier=classifier,
            weights=weights,
            name=label,
        )
    if scheme == "pqp":
        per_queue = queue_bytes or max(
            reno_min_phantom_buffer(rate, max_rtt), _MIN_BUCKET
        )
        return PQP(
            sim,
            rate=rate,
            policy=policy,
            classifier=classifier,
            queue_bytes=per_queue,
            service=phantom_service,
            name=label,
        )
    # bcpqp
    per_queue = queue_bytes or max(bcpqp_default_buffer(rate, max_rtt), _MIN_BUCKET)
    return BCPQP(
        sim,
        rate=rate,
        policy=policy,
        classifier=classifier,
        queue_bytes=per_queue,
        theta_plus=theta_plus,
        theta_minus=theta_minus,
        period=period,
        service=phantom_service,
        name=label,
    )
