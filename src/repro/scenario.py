"""Single-aggregate scenario wiring.

Reproduces the paper's three-machine testbed for one traffic aggregate:

    senders --(per-flow delay pipes)--> rate limiter
        --> [optional secondary bottleneck link] --> receiver trace
        --> per-flow receivers --(per-flow delay pipes)--> ACKs back

Each :class:`~repro.workload.spec.FlowSpec` becomes a :class:`FlowRunner`
that launches successive TCP flows in its slot (one for backlogged/fixed
flows, many for on-off slots) and records completion times.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Sequence

from repro.cc.endpoint import FlowDemux, TcpSender
from repro.limiters.base import RateLimiter
from repro.net.impair import CapacityTrace, ImpairmentSpec, TraceLink
from repro.net.link import Link
from repro.net.packet import FlowId
from repro.net.trace import Trace
from repro.sim.simulator import Simulator
from repro.wiring import wire_flow
from repro.workload.spec import FlowSpec


@dataclass(frozen=True)
class FlowRecord:
    """One completed flow: slot, incarnation, lifetime and size."""

    slot: int
    incarnation: int
    start: float
    end: float
    packets: int

    @property
    def duration(self) -> float:
        """Flow completion time in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class BottleneckSpec:
    """A secondary bottleneck after the limiter (Figure 3's 8.5 Mbps hop)."""

    rate: float
    buffer_bytes: float
    delay: float = 0.0


class FlowRunner:
    """Drives one flow slot: launches incarnations, tracks completions."""

    def __init__(
        self,
        sim: Simulator,
        spec: FlowSpec,
        *,
        aggregate: int,
        limiter_ingress: object,
        data_demux: FlowDemux,
        rng: Random,
        horizon: float,
        impair: ImpairmentSpec | None = None,
    ) -> None:
        self._sim = sim
        self.spec = spec
        self._aggregate = aggregate
        self._ingress = limiter_ingress
        self._demux = data_demux
        self._rng = rng
        self._horizon = horizon
        self._impair = impair
        self._incarnation = 0
        self._starts: dict[int, float] = {}
        self.records: list[FlowRecord] = []
        self.senders: list[TcpSender] = []
        self._launch(at=spec.start)

    @property
    def current_sender(self) -> TcpSender | None:
        """The most recently launched sender, if any."""
        return self.senders[-1] if self.senders else None

    def _launch(self, at: float) -> None:
        if at >= self._horizon:
            return
        spec = self.spec
        flow = FlowId(self._aggregate, spec.slot, self._incarnation)
        self._starts[self._incarnation] = at
        self._incarnation += 1

        packets: int | None
        if spec.on_off is not None:
            mean = spec.on_off.burst_packets_mean
            packets = max(
                spec.on_off.min_burst_packets, int(self._rng.expovariate(1.0 / mean))
            )
        else:
            packets = spec.packets

        # The impairment stream is drawn only when per-flow channels are
        # enabled: a disabled spec consumes no randomness, so clean runs
        # stay byte-identical to pre-impairment builds.
        impair = self._impair
        impair_rng = (
            Random(self._rng.getrandbits(64))
            if impair is not None and impair.flow_enabled
            else None
        )
        sender = wire_flow(
            self._sim,
            flow,
            cc=spec.cc,
            rtt=spec.rtt,
            ingress=self._ingress,
            demux=self._demux,
            packets=packets,
            start=at,
            on_complete=self._on_complete,
            ecn=spec.ecn,
            impair=impair,
            impair_rng=impair_rng,
        )
        self.senders.append(sender)

    def _on_complete(self, sender: TcpSender, now: float) -> None:
        total = sender.snd_una
        self.records.append(
            FlowRecord(
                slot=self.spec.slot,
                incarnation=sender.flow.incarnation,
                start=self._flow_start(sender),
                end=now,
                packets=total,
            )
        )
        if self.spec.on_off is not None:
            off = self._rng.expovariate(1.0 / self.spec.on_off.off_time_mean) \
                if self.spec.on_off.off_time_mean > 0 else 0.0
            self._launch(at=now + off)

    def _flow_start(self, sender: TcpSender) -> float:
        return self._starts[sender.flow.incarnation]


class AggregateScenario:
    """One rate-limited aggregate, end to end.

    Parameters
    ----------
    limiter:
        Any :class:`~repro.limiters.base.RateLimiter` (connected here).
    specs:
        Flow slots inside the aggregate.
    bottleneck:
        Optional secondary bottleneck between limiter and receiver.
    horizon:
        Run length in seconds — on-off slots stop relaunching past it.
    impair:
        Optional :class:`~repro.net.impair.ImpairmentSpec`.  Per-flow
        channels (loss/jitter/reorder/duplicate/corrupt) wrap each
        flow's delay pipes; a capacity trace inserts a Mahimahi-style
        :class:`~repro.net.impair.TraceLink` between the limiter and
        the bottleneck/receiver.  ``None`` or an all-disabled spec
        changes nothing.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        limiter: RateLimiter,
        specs: Sequence[FlowSpec],
        rng: Random,
        aggregate: int = 0,
        bottleneck: BottleneckSpec | None = None,
        horizon: float = 30.0,
        impair: ImpairmentSpec | None = None,
    ) -> None:
        if not specs:
            raise ValueError("need at least one flow spec")
        slots = [s.slot for s in specs]
        if len(set(slots)) != len(slots):
            raise ValueError("flow slots must be unique within an aggregate")
        self.sim = sim
        self.limiter = limiter
        self.horizon = horizon

        self.demux = FlowDemux()
        self.trace = Trace(sim, self.demux, data_only=True, name="receiver")
        downstream: object = self.trace
        if bottleneck is not None:
            self.bottleneck: Link | None = Link(
                sim,
                bottleneck.rate,
                bottleneck.delay,
                self.trace,
                buffer_bytes=bottleneck.buffer_bytes,
                name="secondary-bottleneck",
            )
            downstream = self.bottleneck
        else:
            self.bottleneck = None
        if impair is not None and impair.trace_enabled:
            self.trace_link: TraceLink | None = TraceLink(
                sim,
                CapacityTrace(impair.trace_rates),
                impair.trace_delay,
                downstream,  # type: ignore[arg-type]
                buffer_bytes=impair.trace_buffer,
                name="trace-link",
            )
            downstream = self.trace_link
        else:
            self.trace_link = None
        limiter.connect(downstream)

        self.runners = [
            FlowRunner(
                sim,
                spec,
                aggregate=aggregate,
                limiter_ingress=limiter,
                data_demux=self.demux,
                rng=Random(rng.getrandbits(64)),
                horizon=horizon,
                impair=impair,
            )
            for spec in specs
        ]

    def run(self, until: float | None = None) -> None:
        """Run the simulation to ``until`` (default: the horizon)."""
        self.sim.run(until=self.horizon if until is None else until)

    @property
    def flow_records(self) -> list[FlowRecord]:
        """Completion records across all slots."""
        records: list[FlowRecord] = []
        for runner in self.runners:
            records.extend(runner.records)
        return records
