"""Small statistics helpers (stdlib-only, deterministic)."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; ``nan`` for an empty input.

    An empty sample has no mean — returning 0.0 here used to make a
    misconfigured experiment (empty trace, zero-duration run) report a
    plausible-looking zero instead of something that propagates and
    fails loudly downstream.
    """
    xs = list(values)
    if not xs:
        return math.nan
    return sum(xs) / len(xs)


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100) with linear interpolation.

    >>> percentile([1, 2, 3, 4], 50)
    2.5
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError(f"p must be in [0, 100], got {p!r}")
    xs = sorted(values)
    if len(xs) == 1:
        return xs[0]
    rank = (p / 100.0) * (len(xs) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(xs) - 1)
    frac = rank - lo
    # a + frac*(b - a) is exact at frac=0 and monotone for a <= b, unlike
    # the a*(1-frac) + b*frac form which can wobble below a.
    return xs[lo] + frac * (xs[hi] - xs[lo])


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as ``(value, cumulative fraction)`` pairs.

    >>> cdf_points([3, 1])
    [(1, 0.5), (3, 1.0)]
    """
    xs = sorted(values)
    n = len(xs)
    return [(x, (i + 1) / n) for i, x in enumerate(xs)]


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean / p50 / p90 / p99 / max summary of a sample.

    Raises ``ValueError`` on an empty sample: every caller that reaches a
    summary with no data has already lost its measurements, and an
    all-zeros summary would mask that.
    """
    if not values:
        raise ValueError("summarize() of an empty sample")
    return {
        "mean": mean(values),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "p99": percentile(values, 99),
        "max": max(values),
    }
