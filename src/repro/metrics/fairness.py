"""Fairness indices."""

from __future__ import annotations

from typing import Iterable, Sequence


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly equal shares; ``1/n`` means one value hogs all.
    An empty input or all-zero input returns 1.0 (vacuously fair).

    >>> jain_index([1, 1, 1, 1])
    1.0
    >>> round(jain_index([4, 0, 0, 0]), 3)
    0.25
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0:
        return 1.0
    return (total * total) / (len(xs) * squares)


def weighted_jain_index(values: Sequence[float], weights: Sequence[float]) -> float:
    """Jain's index on weight-normalized shares ``x_i / w_i``.

    Measures how close an allocation is to the *weighted* fair target:
    1.0 when throughput is exactly proportional to the weights.
    """
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")
    return jain_index([v / w for v, w in zip(values, weights)])
