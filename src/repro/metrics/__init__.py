"""Measurement utilities: windowed throughput, fairness, bursts, CDFs."""

from repro.metrics.fairness import jain_index
from repro.metrics.series import TimeSeries, WindowedRate
from repro.metrics.stats import cdf_points, mean, percentile
from repro.metrics.throughput import (
    aggregate_throughput_series,
    burst_factor,
    flow_bytes,
    per_flow_throughput_series,
    per_slot_throughput_series,
)

__all__ = [
    "TimeSeries",
    "WindowedRate",
    "aggregate_throughput_series",
    "burst_factor",
    "cdf_points",
    "flow_bytes",
    "jain_index",
    "mean",
    "per_flow_throughput_series",
    "per_slot_throughput_series",
    "percentile",
]
