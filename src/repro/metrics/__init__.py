"""Measurement utilities: windowed throughput, fairness, bursts, CDFs."""

from repro.metrics.fairness import jain_index
from repro.metrics.merge import (
    FleetMetrics,
    ShardSummary,
    merge_shard_summaries,
)
from repro.metrics.series import TimeSeries, WindowedRate
from repro.metrics.stats import cdf_points, mean, percentile
from repro.metrics.throughput import (
    aggregate_throughput_series,
    bin_layout,
    burst_factor,
    flow_bytes,
    per_flow_throughput_series,
    per_slot_throughput_series,
)

__all__ = [
    "FleetMetrics",
    "ShardSummary",
    "TimeSeries",
    "WindowedRate",
    "aggregate_throughput_series",
    "bin_layout",
    "burst_factor",
    "cdf_points",
    "flow_bytes",
    "jain_index",
    "mean",
    "merge_shard_summaries",
    "per_flow_throughput_series",
    "per_slot_throughput_series",
    "percentile",
]
