"""Throughput extraction from packet traces.

The paper measures per-flow throughput at the receiver over 250 ms windows
(§6.1), normalizes aggregate throughput by the enforced rate, and reports
bursts as the tail of that distribution.  These helpers turn a
:class:`~repro.net.trace.Trace` into exactly those series.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable

from repro.metrics.series import TimeSeries
from repro.metrics.stats import percentile
from repro.net.packet import FlowId
from repro.net.trace import PacketRecord


def _binned_rates(
    records: Iterable[PacketRecord],
    window: float,
    start: float,
    end: float,
    key: Callable[[PacketRecord], Hashable],
) -> dict[Hashable, TimeSeries]:
    """Bin record bytes into ``window``-sized buckets per key."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window!r}")
    if end <= start:
        raise ValueError("end must be after start")
    nbins = int((end - start) / window)
    if nbins < 1:
        raise ValueError("measurement interval shorter than one window")
    bins: dict[Hashable, list[float]] = defaultdict(lambda: [0.0] * nbins)
    for rec in records:
        if start <= rec.time < start + nbins * window:
            bins[key(rec)][int((rec.time - start) / window)] += rec.size
    out: dict[Hashable, TimeSeries] = {}
    for k, acc in bins.items():
        series = TimeSeries()
        for i, nbytes in enumerate(acc):
            series.append(start + i * window, nbytes / window)
        out[k] = series
    return out


def aggregate_throughput_series(
    records: Iterable[PacketRecord],
    *,
    window: float,
    start: float,
    end: float,
) -> TimeSeries:
    """Total throughput (bytes/s) over fixed windows, all flows summed."""
    rates = _binned_rates(records, window, start, end, key=lambda _r: "all")
    return rates.get("all", _empty_series(window, start, end))


def per_flow_throughput_series(
    records: Iterable[PacketRecord],
    *,
    window: float,
    start: float,
    end: float,
) -> dict[FlowId, TimeSeries]:
    """Per-flow throughput series keyed by exact :class:`FlowId`."""
    return _binned_rates(records, window, start, end, key=lambda r: r.flow)  # type: ignore[return-value]


def per_slot_throughput_series(
    records: Iterable[PacketRecord],
    *,
    window: float,
    start: float,
    end: float,
) -> dict[int, TimeSeries]:
    """Per-slot throughput series: on-off incarnations of a slot merge."""
    return _binned_rates(records, window, start, end, key=lambda r: r.flow.slot)  # type: ignore[return-value]


def flow_bytes(records: Iterable[PacketRecord]) -> dict[FlowId, int]:
    """Total received bytes per flow."""
    totals: dict[FlowId, int] = defaultdict(int)
    for rec in records:
        totals[rec.flow] += rec.size
    return dict(totals)


def burst_factor(series: TimeSeries, rate: float, *, p: float = 99.0) -> float:
    """Tail throughput deviation from the enforced rate.

    The paper quantifies burst as how far the tail of the windowed
    throughput distribution exceeds the desired rate ("up to 6x smaller
    burst (tail throughput deviation from desired value)").  Returns the
    ``p``-th percentile of windowed throughput normalized by ``rate``.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    if not series.values:
        return 0.0
    return percentile(series.values, p) / rate


def _empty_series(window: float, start: float, end: float) -> TimeSeries:
    series = TimeSeries()
    nbins = int((end - start) / window)
    for i in range(nbins):
        series.append(start + i * window, 0.0)
    return series
