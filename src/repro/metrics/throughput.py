"""Throughput extraction from packet traces.

The paper measures per-flow throughput at the receiver over 250 ms windows
(§6.1), normalizes aggregate throughput by the enforced rate, and reports
bursts as the tail of that distribution.  These helpers turn a
:class:`~repro.net.trace.Trace` into exactly those series.

Binning runs in a single pass with a precomputed ``1/window`` and, when
given a :class:`~repro.net.trace.Trace` (or its ``records`` view), indexes
the trace's columns directly instead of materializing one record object
per packet — the dominant cost of post-run measurement on large traces.
Arbitrary iterables of :class:`~repro.net.trace.PacketRecord` are still
accepted.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Callable, Hashable, Iterable

from repro.metrics.series import TimeSeries
from repro.metrics.stats import percentile
from repro.net.packet import FlowId
from repro.net.trace import PacketRecord, Trace, TraceRecords

Records = Iterable[PacketRecord]


def _columns(records: Records) -> tuple[list, list, list] | None:
    """Return ``(times, flow_ids, sizes)`` when column access is possible."""
    if isinstance(records, (Trace, TraceRecords)):
        return records.times, records.flow_ids, records.sizes
    return None


def _validate(window: float, start: float, end: float) -> tuple[int, float]:
    """Bin layout for ``[start, end)``: ``(nbins, last_width)``.

    ``(end - start) / window`` FP-truncated used to decide the bin count:
    0.7 / 0.1 computes to 6.999...9, silently dropping the final 100 ms
    window the paper measures.  A quotient within a few ULP of an integer
    is that integer (the extent *is* a whole number of windows and the
    division merely rounded); a genuinely fractional extent gets one extra
    *partial* bin covering ``[start + whole x window, end)`` so no
    in-range record is ever excluded — its rate divides by the true
    partial width (``last_width``), not the full window.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window!r}")
    if end <= start:
        raise ValueError("end must be after start")
    quotient = (end - start) / window
    nearest = round(quotient)
    if nearest >= 1 and abs(quotient - nearest) <= 4.0 * math.ulp(nearest):
        return int(nearest), window
    whole = int(quotient)
    if whole < 1:
        raise ValueError("measurement interval shorter than one window")
    return whole + 1, (end - start) - whole * window


def bin_layout(window: float, start: float, end: float) -> tuple[int, float]:
    """Public bin layout for ``[start, end)``: ``(nbins, last_width)``.

    The exact layout every throughput series in this module uses —
    including the ULP-rounded whole-window detection and the trailing
    partial window (see :func:`_validate`).  Exposed so streaming
    accumulators (e.g. the fleet's columnar recorder) can bin bytes
    on the fly with semantics byte-identical to post-hoc trace binning.
    """
    return _validate(window, start, end)


def _series(
    acc: list[float], window: float, start: float, last_width: float
) -> TimeSeries:
    values = [nbytes / window for nbytes in acc]
    if values and last_width != window:
        values[-1] = acc[-1] / last_width
    return TimeSeries(
        times=[start + i * window for i in range(len(acc))],
        values=values,
    )


def _binned_rates(
    records: Records,
    window: float,
    start: float,
    end: float,
    key: Callable[[PacketRecord], Hashable],
) -> dict[Hashable, TimeSeries]:
    """Bin record bytes into ``window``-sized buckets per key.

    Generic fallback for arbitrary record iterables; traces go through the
    column fast paths in the public functions instead.
    """
    nbins, last_width = _validate(window, start, end)
    inv_window = 1.0 / window
    last = nbins - 1
    bins: dict[Hashable, list[float]] = defaultdict(lambda: [0.0] * nbins)
    for rec in records:
        t = rec.time
        if start <= t < end:
            # A record one ULP below ``end`` can still divide to exactly
            # ``nbins`` after FP rounding, and records in a trailing
            # partial window divide to ``nbins - 1``; clamp to the last
            # bin either way.
            index = int((t - start) * inv_window)
            bins[key(rec)][index if index < last else last] += rec.size
    return {
        k: _series(acc, window, start, last_width) for k, acc in bins.items()
    }


def _binned_columns(
    times: list[float],
    sizes: list[int],
    keys: list | None,
    window: float,
    start: float,
    end: float,
    slot_key: bool = False,
) -> dict[Hashable, list[float]]:
    """Single-pass column binning.

    ``keys=None`` bins everything under one accumulator (returned under the
    key ``"all"``); otherwise ``keys`` is the flow-id column and
    ``slot_key`` selects binning by ``flow.slot`` instead of the full id.
    """
    nbins, _last_width = _validate(window, start, end)
    inv_window = 1.0 / window
    last = nbins - 1
    bins: dict[Hashable, list[float]] = {}
    if keys is None:
        acc = [0.0] * nbins
        for i, t in enumerate(times):
            if start <= t < end:
                index = int((t - start) * inv_window)
                acc[index if index < last else last] += sizes[i]
        bins["all"] = acc
        return bins
    for i, t in enumerate(times):
        if start <= t < end:
            index = int((t - start) * inv_window)
            k = keys[i].slot if slot_key else keys[i]
            acc = bins.get(k)
            if acc is None:
                acc = bins[k] = [0.0] * nbins
            acc[index if index < last else last] += sizes[i]
    return bins


def aggregate_throughput_series(
    records: Records,
    *,
    window: float,
    start: float,
    end: float,
) -> TimeSeries:
    """Total throughput (bytes/s) over fixed windows, all flows summed."""
    cols = _columns(records)
    if cols is not None:
        times, _flows, sizes = cols
        _nbins, last_width = _validate(window, start, end)
        acc = _binned_columns(times, sizes, None, window, start, end)["all"]
        return _series(acc, window, start, last_width)
    rates = _binned_rates(records, window, start, end, key=lambda _r: "all")
    return rates.get("all", _empty_series(window, start, end))


def per_flow_throughput_series(
    records: Records,
    *,
    window: float,
    start: float,
    end: float,
) -> dict[FlowId, TimeSeries]:
    """Per-flow throughput series keyed by exact :class:`FlowId`."""
    cols = _columns(records)
    if cols is not None:
        times, flows, sizes = cols
        _nbins, last_width = _validate(window, start, end)
        bins = _binned_columns(times, sizes, flows, window, start, end)
        return {
            k: _series(acc, window, start, last_width)
            for k, acc in bins.items()
        }
    return _binned_rates(records, window, start, end, key=lambda r: r.flow)  # type: ignore[return-value]


def per_slot_throughput_series(
    records: Records,
    *,
    window: float,
    start: float,
    end: float,
) -> dict[int, TimeSeries]:
    """Per-slot throughput series: on-off incarnations of a slot merge."""
    cols = _columns(records)
    if cols is not None:
        times, flows, sizes = cols
        _nbins, last_width = _validate(window, start, end)
        bins = _binned_columns(
            times, sizes, flows, window, start, end, slot_key=True
        )
        return {
            k: _series(acc, window, start, last_width)
            for k, acc in bins.items()
        }
    return _binned_rates(records, window, start, end, key=lambda r: r.flow.slot)  # type: ignore[return-value]


def flow_bytes(records: Records) -> dict[FlowId, int]:
    """Total received bytes per flow."""
    totals: dict[FlowId, int] = defaultdict(int)
    cols = _columns(records)
    if cols is not None:
        _times, flows, sizes = cols
        for flow, size in zip(flows, sizes):
            totals[flow] += size
        return dict(totals)
    for rec in records:
        totals[rec.flow] += rec.size
    return dict(totals)


def burst_factor(series: TimeSeries, rate: float, *, p: float = 99.0) -> float:
    """Tail throughput deviation from the enforced rate.

    The paper quantifies burst as how far the tail of the windowed
    throughput distribution exceeds the desired rate ("up to 6x smaller
    burst (tail throughput deviation from desired value)").  Returns the
    ``p``-th percentile of windowed throughput normalized by ``rate``.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    if not series.values:
        return 0.0
    return percentile(series.values, p) / rate


def binned_bytes(
    records: Records,
    *,
    window: float,
    start: float,
    end: float,
) -> list[float]:
    """Raw per-bin byte totals for ``[start, end)``, all flows summed.

    The sum over bins equals the total bytes of in-range records exactly
    (integer packet sizes accumulate exactly in floats) — the conservation
    property the throughput series are derived from.
    """
    cols = _columns(records)
    if cols is not None:
        times, _flows, sizes = cols
        return _binned_columns(times, sizes, None, window, start, end)["all"]
    nbins, _last_width = _validate(window, start, end)
    inv_window = 1.0 / window
    last = nbins - 1
    acc = [0.0] * nbins
    for rec in records:
        t = rec.time
        if start <= t < end:
            index = int((t - start) * inv_window)
            acc[index if index < last else last] += rec.size
    return acc


def _empty_series(window: float, start: float, end: float) -> TimeSeries:
    series = TimeSeries()
    nbins, _last_width = _validate(window, start, end)
    for i in range(nbins):
        series.append(start + i * window, 0.0)
    return series
