"""Shard-merge layer: columnar per-shard summaries -> fleet metrics.

A fleet run fans its aggregate population out over K shard processes
(:mod:`repro.fleet`).  Each shard returns one :class:`ShardSummary` —
flat ``array`` columns indexed by ``aggregate_id - lo``, a few scalars —
and **never** a per-packet trace: a 10^5-aggregate fleet crossing the
process boundary as traces would be gigabytes, as columnar summaries it
is a few megabytes.

:func:`merge_shard_summaries` combines the summaries into one
:class:`FleetMetrics`.  Because shards cover *contiguous* id blocks
(:func:`repro.fleet.shard_bounds`), concatenating their columns in shard
order yields aggregate-id order, and every floating-point reduction here
(goodput totals, Jain indices, per-bin sums, modeled cycles) runs in that
one canonical order.  Together with per-aggregate seeding this makes the
merged metrics **byte-identical for every shard count** — ``shards=1``
and ``shards=50`` produce equal :class:`FleetMetrics` down to the digest
(pinned by ``tests/test_fleet.py`` and the fuzzer's shard tier).

Wall-clock and RSS accounting stays on the :class:`ShardSummary` (it is
run-dependent by nature); :class:`FleetMetrics` holds only deterministic
simulation outcomes, which is what the digest covers.
"""

from __future__ import annotations

import hashlib
import struct
from array import array
from dataclasses import dataclass, field

from repro.limiters.costs import Op
from repro.metrics.fairness import jain_index

__all__ = ["FleetMetrics", "ShardSummary", "merge_shard_summaries"]

#: Op-class names in charge order (column layout of ``op_counts``).
OP_NAMES = tuple(op.value for op in Op)


@dataclass
class ShardSummary:
    """Everything one shard reports back, in flat columns.

    Columns are indexed by local row ``aggregate_id - lo``; ragged
    per-slot data uses ``slot_offsets`` (length ``n + 1`` prefix sums).
    ``binned_bytes`` and ``op_counts`` are row-major 2-D columns
    (``n x nbins`` and ``n x len(OP_NAMES)``).
    """

    shard: int
    shards: int
    lo: int
    hi: int
    scheme: str
    window: float
    warmup: float
    horizon: float
    nbins: int
    # -- per-aggregate columns (deterministic simulation outcomes) -----
    rates: array
    goodput_bytes: array
    binned_bytes: array
    slot_offsets: array
    slot_goodput: array
    arrived_packets: array
    forwarded_packets: array
    dropped_packets: array
    forwarded_bytes: array
    dropped_bytes: array
    modeled_cycles: array
    op_counts: array
    # -- shard-level accounting (run-dependent; excluded from merge
    #    determinism and the digest) ----------------------------------
    setup_seconds: float = 0.0
    run_seconds: float = 0.0
    cpu_seconds: float = 0.0
    peak_rss_bytes: int = 0
    events_processed: int = 0
    heap_pushes: int = 0
    flows: int = 0
    #: Live-reconfiguration outcomes across the shard's aggregates
    #: (0 without churn).  Each aggregate's plan derives from the global
    #: seed and its own id, so these sums are shard-count invariant.
    updates_applied: int = 0
    updates_rejected: int = 0

    @property
    def num_aggregates(self) -> int:
        return self.hi - self.lo

    @property
    def total_arrived(self) -> int:
        return sum(self.arrived_packets)


@dataclass
class FleetMetrics:
    """Merged, deterministic outcome of one fleet run.

    Equal for every shard partition of the same :class:`FleetSpec`;
    ``digest`` additionally covers the full per-aggregate columns, so two
    equal digests mean byte-identical per-aggregate outcomes, not just
    equal fleet-level summaries.
    """

    aggregates: int
    scheme: str
    window: float
    warmup: float
    horizon: float
    nbins: int
    arrived_packets: int
    forwarded_packets: int
    dropped_packets: int
    forwarded_bytes: int
    dropped_bytes: int
    goodput_bytes: float
    mean_normalized_goodput: float
    fairness_across_aggregates: float
    mean_intra_aggregate_fairness: float
    fleet_binned_bytes: tuple[float, ...]
    modeled_cycles: float
    cycles_per_packet: float
    op_counts: dict[str, float] = field(default_factory=dict)
    digest: str = ""
    #: Fleet-wide live-reconfiguration outcomes (0 without churn).
    updates_applied: int = 0
    updates_rejected: int = 0

    @property
    def drop_rate(self) -> float:
        if self.arrived_packets == 0:
            return 0.0
        return self.dropped_packets / self.arrived_packets


def _concat(summaries: list[ShardSummary], name: str) -> array:
    """Concatenate one column across shards (shard order == id order)."""
    first = getattr(summaries[0], name)
    out = array(first.typecode)
    for summary in summaries:
        out.extend(getattr(summary, name))
    return out


def _check_partition(summaries: list[ShardSummary]) -> None:
    head = summaries[0]
    expected_lo = 0
    for summary in summaries:
        if (summary.scheme, summary.window, summary.warmup,
                summary.horizon, summary.nbins) != (
                head.scheme, head.window, head.warmup,
                head.horizon, head.nbins):
            raise ValueError(
                "shard summaries disagree on fleet parameters: "
                f"shard {summary.shard} vs shard {head.shard}"
            )
        if summary.lo != expected_lo:
            raise ValueError(
                f"shard summaries do not tile the id space: expected a "
                f"shard starting at {expected_lo}, got [{summary.lo}, "
                f"{summary.hi})"
            )
        if summary.hi <= summary.lo:
            raise ValueError(f"empty shard [{summary.lo}, {summary.hi})")
        expected_lo = summary.hi


def merge_shard_summaries(summaries: list[ShardSummary]) -> FleetMetrics:
    """Merge per-shard columnar summaries into one :class:`FleetMetrics`.

    Summaries may arrive in any order; they are sorted by their id range
    and must tile ``0..N`` contiguously.  All reductions run in
    aggregate-id order — the canonical order that makes the result
    independent of the shard count.
    """
    if not summaries:
        raise ValueError("need at least one shard summary")
    summaries = sorted(summaries, key=lambda s: s.lo)
    _check_partition(summaries)
    head = summaries[0]
    nbins = head.nbins
    span = head.horizon - head.warmup

    rates = _concat(summaries, "rates")
    goodput = _concat(summaries, "goodput_bytes")
    binned = _concat(summaries, "binned_bytes")
    slot_goodput = _concat(summaries, "slot_goodput")
    arrived = _concat(summaries, "arrived_packets")
    forwarded = _concat(summaries, "forwarded_packets")
    dropped = _concat(summaries, "dropped_packets")
    forwarded_bytes = _concat(summaries, "forwarded_bytes")
    dropped_bytes = _concat(summaries, "dropped_bytes")
    cycles = _concat(summaries, "modeled_cycles")
    op_counts = _concat(summaries, "op_counts")

    n = len(rates)
    if n != summaries[-1].hi:
        raise ValueError("column lengths disagree with shard bounds")

    # Slot offsets re-base per shard; rebuild the fleet-wide prefix.
    offsets = array("q", [0])
    for summary in summaries:
        base = offsets[-1]
        local = summary.slot_offsets
        offsets.extend(base + local[i] for i in range(1, len(local)))

    normalized = [g / (r * span) for g, r in zip(goodput, rates)]
    intra = [
        jain_index(slot_goodput[offsets[i]:offsets[i + 1]])
        for i in range(n)
    ]
    fleet_bins = [0.0] * nbins
    for row in range(n):
        base = row * nbins
        for b in range(nbins):
            fleet_bins[b] += binned[base + b]

    n_ops = len(OP_NAMES)
    op_totals = [0.0] * n_ops
    for row in range(n):
        base = row * n_ops
        for k in range(n_ops):
            op_totals[k] += op_counts[base + k]

    total_arrived = sum(arrived)
    total_cycles = sum(cycles)

    digest = hashlib.sha256()
    digest.update(
        struct.pack(
            "<qqdddq", n, nbins, head.window, head.warmup, head.horizon,
            total_arrived,
        )
    )
    digest.update(head.scheme.encode())
    for column in (rates, goodput, binned, slot_goodput, offsets, arrived,
                   forwarded, dropped, forwarded_bytes, dropped_bytes,
                   cycles, op_counts):
        digest.update(column.tobytes())

    return FleetMetrics(
        aggregates=n,
        scheme=head.scheme,
        window=head.window,
        warmup=head.warmup,
        horizon=head.horizon,
        nbins=nbins,
        arrived_packets=total_arrived,
        forwarded_packets=sum(forwarded),
        dropped_packets=sum(dropped),
        forwarded_bytes=sum(forwarded_bytes),
        dropped_bytes=sum(dropped_bytes),
        goodput_bytes=sum(goodput),
        mean_normalized_goodput=sum(normalized) / n,
        fairness_across_aggregates=jain_index(normalized),
        mean_intra_aggregate_fairness=sum(intra) / n,
        fleet_binned_bytes=tuple(fleet_bins),
        modeled_cycles=total_cycles,
        cycles_per_packet=(
            total_cycles / total_arrived if total_arrived else 0.0
        ),
        op_counts=dict(zip(OP_NAMES, op_totals)),
        digest=digest.hexdigest(),
        updates_applied=sum(s.updates_applied for s in summaries),
        updates_rejected=sum(s.updates_rejected for s in summaries),
    )
