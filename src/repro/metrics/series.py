"""Time-series containers for rate measurements."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class TimeSeries:
    """A plain (time, value) series with convenience accessors."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Add one point (times must be non-decreasing)."""
        if self.times and time < self.times[-1]:
            raise ValueError("TimeSeries times must be non-decreasing")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def window(self, start: float, end: float) -> "TimeSeries":
        """Points with ``start <= t < end``."""
        out = TimeSeries()
        for t, v in self:
            if start <= t < end:
                out.append(t, v)
        return out

    def max(self) -> float:
        """Largest value (0.0 for an empty series)."""
        return max(self.values, default=0.0)

    def mean(self) -> float:
        """Mean value (0.0 for an empty series)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)


class WindowedRate:
    """Online accumulator binning byte arrivals into fixed windows.

    Emits a rate sample (bytes/sec) per elapsed window; used when traces
    would be too large to keep (long workload runs).
    """

    def __init__(self, window: float, start: float = 0.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        self._window = window
        self._start = start
        self._current_bin = 0
        self._acc = 0.0
        self.series = TimeSeries()

    @property
    def window(self) -> float:
        """Window length in seconds."""
        return self._window

    def record(self, time: float, nbytes: float) -> None:
        """Account ``nbytes`` arriving at ``time`` (non-decreasing)."""
        bin_index = int((time - self._start) / self._window)
        while bin_index > self._current_bin:
            self._flush_bin()
        self._acc += nbytes

    def finish(self, end_time: float) -> "TimeSeries":
        """Flush bins up to ``end_time`` and return the rate series."""
        final_bin = int((end_time - self._start) / self._window)
        while self._current_bin < final_bin:
            self._flush_bin()
        return self.series

    def _flush_bin(self) -> None:
        t = self._start + self._current_bin * self._window
        self.series.append(t, self._acc / self._window)
        self._acc = 0.0
        self._current_bin += 1
