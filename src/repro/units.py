"""Unit helpers and protocol constants.

All internal quantities use a single convention:

* time        — seconds (float)
* data        — bytes (int for packet sizes, float for fluid counters)
* rates       — bytes per second (float)

The helpers below convert the human-facing units used throughout the paper
(Mbps, KB, ms) into that convention, so call sites read like the paper text:
``r = mbps(7.5)``, ``rtt = ms(100)``, ``B = kilobytes(1000)``.
"""

from __future__ import annotations

#: Maximum segment size used by all senders, in bytes.  The paper's analysis
#: works in MSS-sized packets; we model data packets as exactly one MSS on the
#: wire (headers folded in) which keeps the BDP arithmetic identical.
MSS = 1500

#: Wire size of a (simulated) pure ACK, in bytes.
ACK_SIZE = 40

#: Bits per byte, for rate conversions.
BITS_PER_BYTE = 8


def mbps(value: float) -> float:
    """Convert megabits per second to bytes per second."""
    return value * 1e6 / BITS_PER_BYTE


def gbps(value: float) -> float:
    """Convert gigabits per second to bytes per second."""
    return value * 1e9 / BITS_PER_BYTE


def kbps(value: float) -> float:
    """Convert kilobits per second to bytes per second."""
    return value * 1e3 / BITS_PER_BYTE


def to_mbps(rate_bytes_per_s: float) -> float:
    """Convert bytes per second back to megabits per second."""
    return rate_bytes_per_s * BITS_PER_BYTE / 1e6


def kilobytes(value: float) -> float:
    """Convert kilobytes (1 KB = 1000 bytes, as in the paper) to bytes."""
    return value * 1e3


def megabytes(value: float) -> float:
    """Convert megabytes (1 MB = 1e6 bytes) to bytes."""
    return value * 1e6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def seconds(value: float) -> float:
    """Identity helper for symmetry at call sites."""
    return float(value)


def bdp_bytes(rate_bytes_per_s: float, rtt_s: float) -> float:
    """Bandwidth-delay product in bytes for rate ``r`` and round-trip ``rtt``."""
    return rate_bytes_per_s * rtt_s


def bdp_packets(rate_bytes_per_s: float, rtt_s: float, mss: int = MSS) -> float:
    """Bandwidth-delay product in MSS-sized packets."""
    return bdp_bytes(rate_bytes_per_s, rtt_s) / mss
