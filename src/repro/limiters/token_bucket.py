"""Token-bucket traffic policer (§2.2)."""

from __future__ import annotations

from repro.limiters.base import RateLimiter
from repro.limiters.costs import Op
from repro.net.packet import Packet
from repro.sim.simulator import Simulator


class TokenBucketPolicer(RateLimiter):
    """A classic TBF: tokens accrue at ``rate`` into a bucket of
    ``bucket_bytes``; a packet passes iff it can consume its size in tokens.

    Token generation is batched lazily on arrival (the efficiency trick
    §6.2 credits policers with): no timers, just two counter updates per
    packet.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        rate: float,
        bucket_bytes: float,
        initially_full: bool = True,
        name: str = "policer",
    ) -> None:
        super().__init__(sim, name=name)
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if bucket_bytes <= 0:
            raise ValueError(f"bucket must be positive, got {bucket_bytes!r}")
        self._rate = rate
        self._bucket = float(bucket_bytes)
        self._tokens = float(bucket_bytes) if initially_full else 0.0
        self._last_refill = sim.now

    @property
    def rate(self) -> float:
        """Enforced rate in bytes/second."""
        return self._rate

    @property
    def bucket_bytes(self) -> float:
        """Bucket capacity in bytes."""
        return self._bucket

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the current time)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._sim.now
        if now > self._last_refill:
            self._tokens = min(
                self._bucket, self._tokens + self._rate * (now - self._last_refill)
            )
            self._last_refill = now

    def _on_packet(self, packet: Packet) -> None:
        self._refill()
        # Finding this aggregate's bucket is a flow-table lookup (every
        # scheme pays it), then refill + compare + decrement are a handful
        # of cache-hot ALU ops.
        self.cost.charge(Op.MAP, 1)
        self.cost.charge(Op.ALU, 3)
        if self._tokens >= packet.size:
            self._tokens -= packet.size
            self._forward(packet)
        else:
            self._drop(packet)
