"""Token-bucket traffic policer (§2.2)."""

from __future__ import annotations

from typing import Callable

from repro.churn import PolicyUpdate, UpdateRejected
from repro.limiters.base import RateLimiter
from repro.limiters.costs import Op
from repro.net.packet import Packet
from repro.sim.simulator import Simulator


class TokenBucketPolicer(RateLimiter):
    """A classic TBF: tokens accrue at ``rate`` into a bucket of
    ``bucket_bytes``; a packet passes iff it can consume its size in tokens.

    Token generation is batched lazily on arrival (the efficiency trick
    §6.2 credits policers with): no timers, just two counter updates per
    packet.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        rate: float,
        bucket_bytes: float,
        initially_full: bool = True,
        name: str = "policer",
    ) -> None:
        super().__init__(sim, name=name)
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if bucket_bytes <= 0:
            raise ValueError(f"bucket must be positive, got {bucket_bytes!r}")
        self._rate = rate
        self._bucket = float(bucket_bytes)
        self._tokens = float(bucket_bytes) if initially_full else 0.0
        self._last_refill = sim.now

    @property
    def rate(self) -> float:
        """Enforced rate in bytes/second."""
        return self._rate

    @property
    def bucket_bytes(self) -> float:
        """Bucket capacity in bytes."""
        return self._bucket

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the current time)."""
        self._refill()
        return self._tokens

    def _stage_update(self, update: PolicyUpdate) -> Callable[[], None] | None:
        """A token bucket can change rate and bucket size, nothing else."""
        if update.is_noop:
            return None
        if (
            update.policy is not None
            or update.weights is not None
            or update.priorities is not None
        ):
            raise UpdateRejected(
                self.name, "a token-bucket policer has no sharing policy"
            )
        rate = update.rate
        if rate is not None and not rate > 0:
            raise UpdateRejected(
                self.name, f"rate must be positive, got {rate!r}"
            )
        bucket: float | None = None
        caps = update.capacities
        if caps is not None:
            if not isinstance(caps, (int, float)):
                if len(caps) != 1:
                    raise UpdateRejected(
                        self.name,
                        f"a policer has one bucket, got {len(caps)} capacities",
                    )
                caps = caps[0]
            bucket = float(caps)
            if not bucket > 0:
                raise UpdateRejected(
                    self.name, f"bucket must be positive, got {bucket!r}"
                )

        def commit() -> None:
            # Settle accrual at the old rate up to the mutation instant,
            # then switch; a shrunk bucket clamps stored tokens.
            self._refill()
            if rate is not None:
                self._rate = rate
            if bucket is not None:
                self._bucket = bucket
                if self._tokens > bucket:
                    self._tokens = bucket

        return commit

    def _refill(self) -> None:
        now = self._sim.now
        if now > self._last_refill:
            self._tokens = min(
                self._bucket, self._tokens + self._rate * (now - self._last_refill)
            )
            self._last_refill = now

    def _on_packet(self, packet: Packet) -> None:
        self._refill()
        # Finding this aggregate's bucket is a flow-table lookup (every
        # scheme pays it), then refill + compare + decrement are a handful
        # of cache-hot ALU ops.
        self.cost.charge(Op.MAP, 1)
        self.cost.charge(Op.ALU, 3)
        if self._tokens >= packet.size:
            self._tokens -= packet.size
            self._forward(packet)
        else:
            self._drop(packet)

    def receive_batch(self, packets: list[Packet]) -> None:
        """Fused batch entry point: one lazy refill (the per-packet
        refills of a same-instant batch are no-ops after the first), one
        decide loop on a local token count, one downstream call."""
        n = len(packets)
        stats = self.stats
        stats.arrived_packets += n
        self._refill()
        cost = self.cost
        cost.charge(Op.MAP, n)
        cost.charge(Op.ALU, 3 * n)
        tokens = self._tokens
        accepted = self._accept_scratch
        accepted.clear()
        append = accepted.append
        arrived_bytes = 0
        drops = 0
        drop_bytes = 0
        for packet in packets:
            size = packet.size
            arrived_bytes += size
            if tokens >= size:
                tokens -= size
                append(packet)
            else:
                drops += 1
                drop_bytes += size
        self._tokens = tokens
        stats.arrived_bytes += arrived_bytes
        if drops:
            stats.dropped_packets += drops
            stats.dropped_bytes += drop_bytes
            per_queue = stats.per_queue_drops
            per_queue[0] = per_queue.get(0, 0) + drops
        if accepted:
            self._forward_batch(accepted)
