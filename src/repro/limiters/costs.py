"""Operation-level CPU cost accounting.

The paper uses CPU cycles per packet (measured on a DPDK middlebox) as its
scalability proxy (Figure 5).  We cannot measure DPDK cycles in a simulator,
so each limiter *counts the primitive operations* it performs per packet and
a cost table converts counts into modeled cycles.  The table prices are
deliberately generic x86 figures — the point is that the efficiency ranking
emerges from each limiter's operation mix rather than being asserted:

* a policer touches a couple of cache-resident counters (ALU class);
* FairPolicer additionally does per-packet token generation/allocation and
  a flow-table lookup (map class);
* phantom-queue policers touch counters plus an occasional fluid-drain
  recomputation (ALU class, amortized);
* a shaper stores the packet to buffer memory on enqueue, fetches it back
  on dequeue (DRAM class once the working set outgrows the LLC — the
  pointer-chasing cost §2.1 describes), and pays for a dequeue timer event.

Real wall-clock microbenchmarks of the same hot paths (pytest-benchmark,
``benchmarks/bench_fig5_efficiency.py``) cross-check the modeled ranking.

The modeled counts are pinned to the *paper's* per-packet operations, not
to the simulator's Python work.  Charges are driven by mechanism-level
quantities (``drain_recomputes`` = fluid linear pieces / phantom DRR
dequeues, window rolls, timer events) that every service discipline
reports identically, so optimizing the simulation — e.g. the virtual-time
drain engine skipping per-queue rescans — leaves modeled cycles/packet
untouched.  Wall-clock benchmarks move; the cost model must not.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Op(Enum):
    """Primitive operation classes a limiter can charge."""

    #: Arithmetic / cache-resident counter update (tokens, byte counters).
    ALU = "alu"
    #: Hash/flow-table lookup touching L2/LLC-resident structures.
    MAP = "map"
    #: Packet-buffer store to memory (enqueue of a real packet).
    PKT_STORE = "pkt_store"
    #: Packet-buffer fetch from memory (dequeue + NIC descriptor setup);
    #: pointer chasing across queues makes this a DRAM-class reference.
    PKT_FETCH = "pkt_fetch"
    #: Arming/serving a timer (shaper dequeue scheduling, timer wheel slot).
    TIMER = "timer"
    #: Scheduler bookkeeping (DRR deficit/cursor updates).
    SCHED = "sched"

    #: Positional index into :class:`CostMeter`'s counter list.  Plain
    #: attribute reads beat ``Enum.__hash__`` on the per-packet charge
    #: path; counts and totals are unchanged.
    index: int


for _index, _op in enumerate(Op):
    _op.index = _index
_OPS = tuple(Op)


@dataclass(frozen=True)
class CostTable:
    """Cycles charged per operation class (generic x86 estimates)."""

    alu: float = 2.0
    map: float = 18.0
    pkt_store: float = 70.0
    pkt_fetch: float = 120.0
    timer: float = 45.0
    sched: float = 8.0

    def price(self, op: Op) -> float:
        """Cycles for one operation of class ``op``."""
        return getattr(self, op.value)


class CostMeter:
    """Per-limiter accumulator of primitive-operation counts."""

    def __init__(self) -> None:
        self._counts: list[float] = [0.0] * len(_OPS)

    def charge(self, op: Op, count: float = 1.0) -> None:
        """Record ``count`` operations of class ``op``."""
        self._counts[op.index] += count

    def count(self, op: Op) -> float:
        """Total operations recorded for ``op``."""
        return self._counts[op.index]

    def cycles(self, table: CostTable | None = None) -> float:
        """Total modeled cycles under ``table`` (default prices)."""
        table = table or CostTable()
        counts = self._counts
        return sum(table.price(op) * counts[op.index] for op in _OPS)

    def cycles_per_packet(
        self, packets: int, table: CostTable | None = None
    ) -> float:
        """Modeled cycles divided by ``packets`` (0 if none processed)."""
        if packets <= 0:
            return 0.0
        return self.cycles(table) / packets

    def snapshot(self) -> dict[str, float]:
        """Operation counts keyed by class name (for reports/tests)."""
        counts = self._counts
        return {op.value: counts[op.index] for op in _OPS}

    def reset(self) -> None:
        """Zero all counters."""
        counts = self._counts
        for i in range(len(counts)):
            counts[i] = 0.0
