"""Multi-queue traffic shaper (§2.1).

Buffers real packets in per-queue drop-tail buffers and releases them at
the enforced rate, ordered by a hierarchical DRR scheduler realizing the
configured policy tree.  The cost meter charges the packet store on
enqueue, the packet fetch (pointer chase) plus a timer event on every
dequeue — the structural sources of the shaper's CPU cost.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.churn import PolicyUpdate, UpdateRejected, reclassify
from repro.classify.classifier import FlowClassifier
from repro.limiters.base import RateLimiter
from repro.limiters.costs import Op
from repro.net.packet import Packet
from repro.policy.tree import Policy
from repro.sched.drr import HierarchicalDrrScheduler
from repro.sim.simulator import Simulator
from repro.units import MSS


class Shaper(RateLimiter):
    """A policy-rich traffic shaper serving N queues at cumulative ``rate``.

    Parameters
    ----------
    rate:
        Cumulative service rate, bytes/second.
    policy:
        Sharing policy across the queues.
    classifier:
        Maps flows to queue indices; must agree with ``policy.num_queues``.
    queue_bytes:
        Per-queue drop-tail capacity in bytes.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        rate: float,
        policy: Policy,
        classifier: FlowClassifier,
        queue_bytes: float,
        quantum: float = MSS,
        name: str = "shaper",
    ) -> None:
        super().__init__(sim, name=name)
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if queue_bytes <= 0:
            raise ValueError(f"queue_bytes must be positive, got {queue_bytes!r}")
        if classifier.num_queues != policy.num_queues:
            raise ValueError(
                f"classifier has {classifier.num_queues} queues but policy "
                f"covers {policy.num_queues}"
            )
        self._rate = rate
        self._policy = policy
        self._classifier = classifier
        self._capacity = float(queue_bytes)
        self._quantum = float(quantum)
        self._scheduler = HierarchicalDrrScheduler(policy, quantum=quantum)
        n = policy.num_queues
        self._queues: list[deque[Packet]] = [deque() for _ in range(n)]
        self._queue_bytes = [0.0] * n
        self._busy = False
        self.max_backlog_bytes = 0.0

    @property
    def rate(self) -> float:
        """Cumulative service rate in bytes/second."""
        return self._rate

    @property
    def num_queues(self) -> int:
        """Number of real packet queues."""
        return self._policy.num_queues

    @property
    def queue_capacity(self) -> float:
        """Per-queue drop-tail capacity in bytes."""
        return self._capacity

    def backlog_bytes(self, queue: int | None = None) -> float:
        """Bytes buffered in ``queue`` (or in all queues when ``None``)."""
        if queue is None:
            return sum(self._queue_bytes)
        return self._queue_bytes[queue]

    def _stage_update(self, update: PolicyUpdate) -> Callable[[], None] | None:
        """Validate a live reconfiguration; return its commit thunk.

        The shaper buffers *real* packets, so migration is concrete: the
        scheduler is rebuilt for the new tree, surviving queues carry
        their backlog by index, and packets in removed queues (or above
        a shrunk capacity, trimmed from the tail — drop-tail semantics)
        are dropped and counted in the limiter stats.  A rate change
        takes effect at the next packet serialization; the dequeue
        already in flight finishes at the old rate.
        """
        if update.is_noop:
            return None

        def reject(reason: str) -> None:
            raise UpdateRejected(self.name, reason)

        rate = update.rate
        if rate is not None and not rate > 0:
            reject(f"rate must be positive, got {rate!r}")
        policy = update.policy
        if policy is not None and not isinstance(policy, Policy):
            reject(f"policy must be a Policy, got {type(policy).__name__}")
        if policy is not None and (
            update.weights is not None or update.priorities is not None
        ):
            reject("policy and weights/priorities are mutually exclusive")
        if policy is None and (
            update.weights is not None or update.priorities is not None
        ):
            weights = update.weights
            priorities = update.priorities
            if (
                weights is not None
                and priorities is not None
                and len(weights) != len(priorities)
            ):
                reject(
                    f"weights cover {len(weights)} queues but priorities "
                    f"cover {len(priorities)}"
                )
            try:
                if priorities is not None:
                    policy = Policy.prioritized(
                        priorities, list(weights) if weights else None
                    )
                else:
                    assert weights is not None
                    policy = Policy.weighted(weights)
            except ValueError as exc:
                reject(str(exc))
        capacity: float | None = None
        caps = update.capacities
        if caps is not None:
            if not isinstance(caps, (int, float)):
                reject("the shaper has one per-queue capacity, not a vector")
            capacity = float(caps)
            if not capacity > 0:
                reject(f"queue_bytes must be positive, got {capacity!r}")
        n_cur = self.num_queues
        n_new = policy.num_queues if policy is not None else n_cur
        new_classifier = None
        if n_new != n_cur:
            new_classifier = reclassify(self._classifier, n_new)
            if new_classifier is None:
                reject(
                    f"classifier {type(self._classifier).__name__} cannot "
                    f"be rebuilt for {n_new} queues"
                )

        def commit() -> None:
            if rate is not None:
                self._rate = rate
            if capacity is not None:
                self._capacity = capacity
            if policy is not None:
                if policy is self._policy:
                    policy.invalidate()
                self._policy = policy
                self._scheduler = HierarchicalDrrScheduler(
                    policy, quantum=self._quantum
                )
                # Migrate backlogs by index; removed queues drop whole.
                for qi in range(n_new, n_cur):
                    for packet in self._queues[qi]:
                        self._drop(packet, queue=qi)
                self._queues = self._queues[:n_new] + [
                    deque() for _ in range(max(0, n_new - n_cur))
                ]
                self._queue_bytes = self._queue_bytes[:n_new] + [0.0] * max(
                    0, n_new - n_cur
                )
            if new_classifier is not None:
                self._classifier = new_classifier
            if capacity is not None or policy is not None:
                # Drop-tail trim: newest packets above the (possibly
                # shrunk) capacity go first, as if they had arrived full.
                for qi, queue in enumerate(self._queues):
                    while queue and self._queue_bytes[qi] > self._capacity:
                        packet = queue.pop()
                        self._queue_bytes[qi] -= packet.size
                        self._drop(packet, queue=qi)

        return commit

    def _on_packet(self, packet: Packet) -> None:
        qi = self._classifier.queue_of(packet.flow)
        self.cost.charge(Op.MAP, 1)  # classification lookup
        if self._queue_bytes[qi] + packet.size > self._capacity:
            self.cost.charge(Op.ALU, 1)
            self._drop(packet, queue=qi)
            return
        # Store the packet into buffer memory: the DDIO-evicted write §2.1
        # describes, plus the queue bookkeeping.
        self.cost.charge(Op.PKT_STORE, 1)
        self.cost.charge(Op.ALU, 2)
        self._queues[qi].append(packet)
        self._queue_bytes[qi] += packet.size
        backlog = sum(self._queue_bytes)
        if backlog > self.max_backlog_bytes:
            self.max_backlog_bytes = backlog
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        heads = [
            q[0].size if q else None for q in self._queues
        ]
        qi = self._scheduler.select(heads)
        self.cost.charge(Op.SCHED, 2)
        if qi is None:
            self._busy = False
            return
        self._busy = True
        packet = self._queues[qi].popleft()
        self._queue_bytes[qi] -= packet.size
        self._scheduler.charge(packet.size)
        # Serialize at the enforced rate, then emit and pick the next one.
        # Fetching the packet back from buffer memory (pointer chase across
        # per-flow queues) and arming the dequeue timer are the dominant
        # per-packet costs of a shaper.
        self.cost.charge(Op.PKT_FETCH, 1)
        self.cost.charge(Op.TIMER, 1)
        # Fire-and-forget: dequeue completions are never cancelled, so
        # they ride the simulator's pooled-handle path.
        self._sim.call_after(packet.size / self._rate, self._emit, packet)

    def _emit(self, packet: Packet) -> None:
        self._forward(packet)
        self._serve_next()
