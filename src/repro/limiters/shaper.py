"""Multi-queue traffic shaper (§2.1).

Buffers real packets in per-queue drop-tail buffers and releases them at
the enforced rate, ordered by a hierarchical DRR scheduler realizing the
configured policy tree.  The cost meter charges the packet store on
enqueue, the packet fetch (pointer chase) plus a timer event on every
dequeue — the structural sources of the shaper's CPU cost.
"""

from __future__ import annotations

from collections import deque

from repro.classify.classifier import FlowClassifier
from repro.limiters.base import RateLimiter
from repro.limiters.costs import Op
from repro.net.packet import Packet
from repro.policy.tree import Policy
from repro.sched.drr import HierarchicalDrrScheduler
from repro.sim.simulator import Simulator
from repro.units import MSS


class Shaper(RateLimiter):
    """A policy-rich traffic shaper serving N queues at cumulative ``rate``.

    Parameters
    ----------
    rate:
        Cumulative service rate, bytes/second.
    policy:
        Sharing policy across the queues.
    classifier:
        Maps flows to queue indices; must agree with ``policy.num_queues``.
    queue_bytes:
        Per-queue drop-tail capacity in bytes.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        rate: float,
        policy: Policy,
        classifier: FlowClassifier,
        queue_bytes: float,
        quantum: float = MSS,
        name: str = "shaper",
    ) -> None:
        super().__init__(sim, name=name)
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if queue_bytes <= 0:
            raise ValueError(f"queue_bytes must be positive, got {queue_bytes!r}")
        if classifier.num_queues != policy.num_queues:
            raise ValueError(
                f"classifier has {classifier.num_queues} queues but policy "
                f"covers {policy.num_queues}"
            )
        self._rate = rate
        self._policy = policy
        self._classifier = classifier
        self._capacity = float(queue_bytes)
        self._scheduler = HierarchicalDrrScheduler(policy, quantum=quantum)
        n = policy.num_queues
        self._queues: list[deque[Packet]] = [deque() for _ in range(n)]
        self._queue_bytes = [0.0] * n
        self._busy = False
        self.max_backlog_bytes = 0.0

    @property
    def rate(self) -> float:
        """Cumulative service rate in bytes/second."""
        return self._rate

    @property
    def num_queues(self) -> int:
        """Number of real packet queues."""
        return self._policy.num_queues

    def backlog_bytes(self, queue: int | None = None) -> float:
        """Bytes buffered in ``queue`` (or in all queues when ``None``)."""
        if queue is None:
            return sum(self._queue_bytes)
        return self._queue_bytes[queue]

    def _on_packet(self, packet: Packet) -> None:
        qi = self._classifier.queue_of(packet.flow)
        self.cost.charge(Op.MAP, 1)  # classification lookup
        if self._queue_bytes[qi] + packet.size > self._capacity:
            self.cost.charge(Op.ALU, 1)
            self._drop(packet, queue=qi)
            return
        # Store the packet into buffer memory: the DDIO-evicted write §2.1
        # describes, plus the queue bookkeeping.
        self.cost.charge(Op.PKT_STORE, 1)
        self.cost.charge(Op.ALU, 2)
        self._queues[qi].append(packet)
        self._queue_bytes[qi] += packet.size
        backlog = sum(self._queue_bytes)
        if backlog > self.max_backlog_bytes:
            self.max_backlog_bytes = backlog
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        heads = [
            q[0].size if q else None for q in self._queues
        ]
        qi = self._scheduler.select(heads)
        self.cost.charge(Op.SCHED, 2)
        if qi is None:
            self._busy = False
            return
        self._busy = True
        packet = self._queues[qi].popleft()
        self._queue_bytes[qi] -= packet.size
        self._scheduler.charge(packet.size)
        # Serialize at the enforced rate, then emit and pick the next one.
        # Fetching the packet back from buffer memory (pointer chase across
        # per-flow queues) and arming the dequeue timer are the dominant
        # per-packet costs of a shaper.
        self.cost.charge(Op.PKT_FETCH, 1)
        self.cost.charge(Op.TIMER, 1)
        # Fire-and-forget: dequeue completions are never cancelled, so
        # they ride the simulator's pooled-handle path.
        self._sim.call_after(packet.size / self._rate, self._emit, packet)

    def _emit(self, packet: Packet) -> None:
        self._forward(packet)
        self._serve_next()
