"""Common base class for all rate-limiting mechanisms."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.churn import PolicyUpdate, UpdateRejected
from repro.limiters.costs import CostMeter
from repro.net.packet import Packet
from repro.net.sink import PacketSink
from repro.sim.simulator import Simulator


@dataclass
class LimiterStats:
    """Arrival/forward/drop accounting for one limiter."""

    arrived_packets: int = 0
    arrived_bytes: int = 0
    forwarded_packets: int = 0
    forwarded_bytes: int = 0
    dropped_packets: int = 0
    dropped_bytes: int = 0
    per_queue_drops: dict[int, int] = field(default_factory=dict)

    @property
    def drop_rate(self) -> float:
        """Fraction of arrived packets dropped (0 when nothing arrived)."""
        if self.arrived_packets == 0:
            return 0.0
        return self.dropped_packets / self.arrived_packets


class RateLimiter(ABC):
    """A rate-enforcement element sitting in the forwarding path.

    Subclasses implement :meth:`_on_packet` and either forward the packet
    immediately (policers: :meth:`_forward`), drop it (:meth:`_drop`), or
    buffer it for later release (the shaper, which calls :meth:`_forward`
    from its dequeue timer).

    The downstream hop is attached with :meth:`connect` after construction
    so topology wiring order doesn't matter.
    """

    def __init__(self, sim: Simulator, *, name: str) -> None:
        self._sim = sim
        self.name = name
        self._downstream: PacketSink | None = None
        self._downstream_batch: PacketSink | None = None
        # Reused by fused receive_batch overrides to collect the accepted
        # packets of a batch before the single _forward_batch call.
        self._accept_scratch: list[Packet] = []
        self.stats = LimiterStats()
        self.cost = CostMeter()
        validator = getattr(sim, "validator", None)
        if validator is not None:
            # The checker wraps instance-level bound methods (receive and,
            # for BC-PQP, the window sweep) and defers all introspection
            # to call time — subclass attributes don't exist yet here.
            validator.attach_limiter(self)

    def connect(self, downstream: PacketSink) -> None:
        """Attach the next hop packets are forwarded to."""
        self._downstream = downstream
        from repro.net.sink import batch_capable

        self._downstream_batch = batch_capable(downstream)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._sim.now

    def apply_update(self, update: PolicyUpdate) -> None:
        """Atomically apply a live reconfiguration (policy churn).

        Validation runs first and touches nothing: an invalid update
        raises :class:`~repro.churn.UpdateRejected` with the limiter's
        state byte-identical to before the call — the lazy drain is not
        even settled.  A valid update commits in full at the current
        simulation time and starts a new mutation epoch.  An all-``None``
        update is an accepted no-op that changes nothing, so applying it
        any number of times leaves the run bit-identical.
        """
        commit = self._stage_update(update)
        if commit is None:
            return
        commit()
        self._sim.reconfigurations += 1

    def _stage_update(self, update: PolicyUpdate) -> Callable[[], None] | None:
        """Validate ``update``; return the commit thunk (``None`` = no-op).

        Must be *pure*: subclasses may read any state but mutate nothing
        and settle nothing — rejection has to leave the limiter
        byte-identical.  The base limiter supports only the no-op.
        """
        if update.is_noop:
            return None
        raise UpdateRejected(
            self.name,
            f"{type(self).__name__} does not support live reconfiguration",
        )

    def receive(self, packet: Packet) -> None:
        """PacketSink entry point: account the arrival then decide."""
        self.stats.arrived_packets += 1
        self.stats.arrived_bytes += packet.size
        self._on_packet(packet)

    def receive_batch(self, packets: list[Packet]) -> None:
        """Batch entry point.

        The base implementation loops :meth:`receive` per packet — always
        a legal realization of a batch, and exactly what limiters whose
        per-packet decision consumes simulator seqs (the shaper's dequeue
        timers) must do to preserve the unbatched seq order.  Policers
        whose decisions are schedule-free override this with a fused
        decide-all-then-forward-all loop.
        """
        receive = self.receive
        for packet in packets:
            receive(packet)

    @abstractmethod
    def _on_packet(self, packet: Packet) -> None:
        """Decide the packet's fate (forward / drop / buffer)."""

    def _forward(self, packet: Packet) -> None:
        if self._downstream is None:
            raise RuntimeError(f"{self.name}: no downstream connected")
        self.stats.forwarded_packets += 1
        self.stats.forwarded_bytes += packet.size
        self._downstream.receive(packet)

    def _forward_batch(self, packets: list[Packet]) -> None:
        """Forward an accepted batch downstream in one call.

        Only safe for limiters whose decision phase reserves no simulator
        seqs: the unbatched engine would interleave each packet's
        downstream traversal with the next packet's decision, and the two
        orders assign identical seqs exactly when the decisions consume
        none (see DESIGN.md, "Batched packet path").
        """
        if self._downstream is None:
            raise RuntimeError(f"{self.name}: no downstream connected")
        stats = self.stats
        stats.forwarded_packets += len(packets)
        total = 0
        for packet in packets:
            total += packet.size
        stats.forwarded_bytes += total
        self._downstream_batch.receive_batch(packets)

    def _drop(self, packet: Packet, queue: int = 0) -> None:
        self.stats.dropped_packets += 1
        self.stats.dropped_bytes += packet.size
        drops = self.stats.per_queue_drops
        drops[queue] = drops.get(queue, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"fwd={s.forwarded_packets}, drop={s.dropped_packets})"
        )
