"""FairPolicer baseline (Shan et al., INFOCOM'21 / ToN'23).

Reimplemented from the description in the BC-PQP paper (§2.2, §6):

* token generation at rate ``r`` is *distributed among the active flows'
  buckets* — equally, or weight-proportionally for the §6.3.2 weighted
  variant;
* the main bucket holds the unallocated capacity ``U = B - sum(t_i)``, and
  each per-flow bucket's *capacity* is dynamically set to ``U`` ("equal to
  the number of tokens remaining in the main token bucket").  This negative
  feedback keeps any one flow from hoarding the whole budget, but gives
  every flow the *same* cap regardless of weight — the sizing rule that
  works for equal sharing and breaks weighted sharing (Figure 6b);
* token generation and allocation happen on every packet arrival — the
  per-packet work that makes FP costlier than a batched policer (§6.2).

Known behavioural consequences reproduced here: a large-RTT AIMD flow whose
sawtooth needs more buffered tokens than the dynamic cap allows cannot
reach its fair share (§6.3.1), and bucket-fulls of stored tokens produce
bursts larger than BC-PQP's (Figure 4b).
"""

from __future__ import annotations

from typing import Callable

from repro.churn import PolicyUpdate, UpdateRejected
from repro.classify.classifier import FlowClassifier
from repro.limiters.base import RateLimiter
from repro.limiters.costs import Op
from repro.net.packet import Packet
from repro.sim.simulator import Simulator


class FairPolicer(RateLimiter):
    """Token-bucket policer with per-flow token buckets for fairness.

    Flows are identified by their classifier queue index (one bucket per
    slot, as with per-flow phantom queues).
    """

    #: A flow is considered inactive after this long without a packet.
    ACTIVITY_TIMEOUT = 1.0

    def __init__(
        self,
        sim: Simulator,
        *,
        rate: float,
        bucket_bytes: float,
        classifier: FlowClassifier,
        weights: list[float] | None = None,
        name: str = "fair_policer",
    ) -> None:
        super().__init__(sim, name=name)
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if bucket_bytes <= 0:
            raise ValueError(f"bucket must be positive, got {bucket_bytes!r}")
        n = classifier.num_queues
        if weights is None:
            weights = [1.0] * n
        if len(weights) != n:
            raise ValueError(f"need {n} weights, got {len(weights)}")
        self._rate = rate
        self._bucket = float(bucket_bytes)
        self._classifier = classifier
        self._weights = list(weights)

        self._flow_tokens = [0.0] * n
        self._last_seen = [float("-inf")] * n
        self._last_refill = sim.now
        # Tokens generated while every bucket was capped; redistributed as
        # soon as room appears (work conservation), bounded by B.
        self._spare = 0.0

    @property
    def rate(self) -> float:
        """Enforced aggregate rate in bytes/second."""
        return self._rate

    @property
    def num_queues(self) -> int:
        """Number of per-flow buckets (= classifier slots)."""
        return self._classifier.num_queues

    def _stage_update(self, update: PolicyUpdate) -> Callable[[], None] | None:
        """FP can change rate, per-flow weights and the shared budget.

        Queue-count changes and tree-shaped policies are rejected: FP's
        sizing rule has no notion of hierarchy (§6.3.2), and its per-flow
        state is bound to the classifier's slot count.
        """
        if update.is_noop:
            return None
        if update.policy is not None or update.priorities is not None:
            raise UpdateRejected(
                self.name, "FairPolicer carries flat weights, not a policy tree"
            )
        rate = update.rate
        if rate is not None and not rate > 0:
            raise UpdateRejected(
                self.name, f"rate must be positive, got {rate!r}"
            )
        weights = update.weights
        if weights is not None:
            n = self.num_queues
            if len(weights) != n:
                raise UpdateRejected(
                    self.name, f"need {n} weights, got {len(weights)}"
                )
            if any(w <= 0 for w in weights):
                raise UpdateRejected(self.name, "weights must be positive")
        bucket: float | None = None
        caps = update.capacities
        if caps is not None:
            if not isinstance(caps, (int, float)):
                raise UpdateRejected(
                    self.name, "FairPolicer has one shared budget, not per-queue"
                )
            bucket = float(caps)
            if not bucket > 0:
                raise UpdateRejected(
                    self.name, f"bucket must be positive, got {bucket!r}"
                )

        def commit() -> None:
            now = self._sim.now
            # Fold the generation pending at the old rate into the spare
            # pool (the next arrival distributes it), then switch.
            self._spare = min(
                self._spare + self._rate * (now - self._last_refill),
                self._bucket,
            )
            self._last_refill = now
            if rate is not None:
                self._rate = rate
            if weights is not None:
                self._weights = list(weights)
            if bucket is not None:
                self._bucket = bucket
                if self._spare > bucket:
                    self._spare = bucket

        return commit

    @property
    def bucket_bytes(self) -> float:
        """Total token budget ``B`` in bytes."""
        return self._bucket

    def flow_bucket(self, queue: int) -> float:
        """Tokens currently held by flow slot ``queue`` (for tests)."""
        return self._flow_tokens[queue]

    def unallocated(self) -> float:
        """Main-bucket level: the unallocated share of ``B``."""
        return max(self._bucket - sum(self._flow_tokens), 0.0)

    def _on_packet(self, packet: Packet) -> None:
        now = self._sim.now
        qi = self._classifier.queue_of(packet.flow)
        self.cost.charge(Op.MAP, 1)  # per-flow state lookup

        # Expire idle flows; their stored tokens return to the main bucket
        # (i.e. are simply forgotten — U grows as sum(t_i) shrinks).
        cutoff = now - self.ACTIVITY_TIMEOUT
        for i, seen in enumerate(self._last_seen):
            if seen < cutoff and self._flow_tokens[i] > 0:
                self._flow_tokens[i] = 0.0
        self._last_seen[qi] = now

        # Per-packet token generation and allocation (FP cannot batch
        # this: the dynamic cap needs up-to-date per-flow buckets, §6.2).
        active = [
            i for i, seen in enumerate(self._last_seen) if seen >= cutoff
        ]
        new_tokens = self._rate * (now - self._last_refill) + self._spare
        self._spare = 0.0
        self._last_refill = now
        cap = self.unallocated()
        total_weight = sum(self._weights[i] for i in active) or 1.0
        leftover = 0.0
        for i in active:
            grant = new_tokens * self._weights[i] / total_weight
            # Dynamic per-flow capacity: the same cap for every flow.
            room = max(cap - self._flow_tokens[i], 0.0)
            taken = min(grant, room)
            self._flow_tokens[i] += taken
            leftover += grant - taken
        # Tokens no bucket could hold wait in the main bucket (capped).
        self._spare = min(leftover, self._bucket)
        self.cost.charge(Op.ALU, 4 + 2 * len(active))

        if self._flow_tokens[qi] >= packet.size:
            self._flow_tokens[qi] -= packet.size
            self._forward(packet)
        else:
            self._drop(packet, queue=qi)
