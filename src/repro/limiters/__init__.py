"""Rate-limiting mechanisms: the paper's baselines.

* :class:`TokenBucketPolicer` — classic TBF policer (Policer / Policer+).
* :class:`Shaper` — multi-queue traffic shaper with hierarchical DRR.
* :class:`FairPolicer` — reimplementation of the FairPolicer comparator.

The paper's own contribution (PQP / BC-PQP) lives in :mod:`repro.core`.
"""

from repro.limiters.base import LimiterStats, RateLimiter
from repro.limiters.costs import CostMeter, CostTable, Op
from repro.limiters.fair_policer import FairPolicer
from repro.limiters.shaper import Shaper
from repro.limiters.token_bucket import TokenBucketPolicer

__all__ = [
    "CostMeter",
    "CostTable",
    "FairPolicer",
    "LimiterStats",
    "Op",
    "RateLimiter",
    "Shaper",
    "TokenBucketPolicer",
]
