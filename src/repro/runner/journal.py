"""Write-ahead sweep journal: resumable per-cell completion records.

A :class:`SweepJournal` makes an interrupted sweep salvageable: every
completed cell is durably recorded *before* the sweep moves on, so a
``--resume``\\ d run replays only the missing cells and reproduces the
uninterrupted output byte for byte.

On-disk layout, for a journal at ``<path>``:

* ``<path>`` — append-only JSONL.  Line 1 is the header
  ``{"journal": 1, "task": ..., "total": N, "grid": <sha256>}`` binding
  the file to one exact sweep grid (task name + every config's canonical
  ``repr``).  Completion lines are ``{"done": i, "attempts": k,
  "result": "<i>.pkl"}``; retry/crash/timeout events are also appended
  (``{"event": kind, "index": i, "attempt": k, "detail": ...}``) so the
  full fault history of a sweep survives with it.
* ``<path>.d/`` — one checksummed pickle per completed cell (the same
  digest-protected format as the result cache).

Write-ahead ordering: the result pickle is written and atomically
renamed first, then the completion line is appended, flushed and
fsynced — a crash between the two leaves an orphan pickle (harmless; the
cell reruns), never a journal line pointing at a missing/torn result.
Torn trailing lines (a crash mid-append) and corrupt result pickles are
skipped on load, so the journal itself can never make a resume worse
than a fresh start.

A journal whose header does not match the sweep it is bound to (the grid
changed between runs) is rotated aside to ``<path>.stale`` rather than
silently mixing incompatible results.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import warnings
from pathlib import Path
from typing import Any, Sequence

from repro.runner.cache import (
    CorruptEntry,
    read_checksummed_pickle,
    write_checksummed_pickle,
)

__all__ = ["SweepJournal", "grid_hash"]

_VERSION = 1


def grid_hash(task_name: str, config_tokens: Sequence[str]) -> str:
    """Stable identity of one sweep grid (task + every config's repr)."""
    digest = hashlib.sha256(task_name.encode())
    for token in config_tokens:
        digest.update(b"\x00")
        digest.update(token.encode())
    return digest.hexdigest()


class SweepJournal:
    """Append-only completion journal for one sweep (see module doc)."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.results_dir = Path(f"{self.path}.d")
        self._fh = None
        #: Cells already completed by a previous run: ``index -> result``.
        self.results: dict[int, Any] = {}
        #: How many stored results failed verification on load.
        self.corrupt_results = 0
        #: Fault events replayed from a previous run's journal lines.
        self.prior_events = 0
        self._bound = False

    # -- binding / replay ---------------------------------------------

    def bind(self, task_name: str, config_tokens: Sequence[str]) -> None:
        """Attach the journal to one exact sweep grid and replay any
        completed cells recorded by a previous (interrupted) run."""
        if self._bound:
            raise RuntimeError("journal already bound")
        grid = grid_hash(task_name, config_tokens)
        header = {
            "journal": _VERSION,
            "task": task_name,
            "total": len(config_tokens),
            "grid": grid,
        }
        lines = self._read_lines()
        if lines and lines[0] != header:
            self._rotate_stale()
            lines = []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        fresh = not lines
        self._fh = self.path.open("a", encoding="utf-8")
        if fresh:
            self._append(header, fsync=True)
        else:
            self._replay(lines[1:], total=len(config_tokens))
        self._bound = True

    def _read_lines(self) -> list[dict]:
        """Parse the existing journal, skipping torn/garbage lines."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        lines = []
        for raw in text.splitlines():
            try:
                record = json.loads(raw)
            except ValueError:
                continue  # torn append from a crashed run
            if isinstance(record, dict):
                lines.append(record)
        return lines

    def _replay(self, records: list[dict], *, total: int) -> None:
        for record in records:
            if "event" in record:
                self.prior_events += 1
                continue
            index = record.get("done")
            if not isinstance(index, int) or not 0 <= index < total:
                continue
            result_file = self.results_dir / str(record.get("result", ""))
            try:
                self.results[index] = read_checksummed_pickle(result_file)
            except (CorruptEntry, OSError):
                # Torn or missing result: the cell simply reruns.
                self.corrupt_results += 1
                self.results.pop(index, None)

    def _rotate_stale(self) -> None:
        stale = Path(f"{self.path}.stale")
        stale_dir = Path(f"{self.results_dir}.stale")
        warnings.warn(
            f"sweep journal {self.path} belongs to a different grid; "
            f"rotating it to {stale} and starting fresh",
            RuntimeWarning,
            stacklevel=4,
        )
        shutil.rmtree(stale_dir, ignore_errors=True)
        stale.unlink(missing_ok=True)
        if self.results_dir.exists():
            os.replace(self.results_dir, stale_dir)
        if self.path.exists():
            os.replace(self.path, stale)

    # -- recording ----------------------------------------------------

    def _append(self, record: dict, *, fsync: bool = False) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        if fsync:
            os.fsync(self._fh.fileno())

    def record_done(self, index: int, result: Any, *, attempts: int = 1) -> None:
        """Durably record one completed cell (write-ahead: result first,
        then the fsynced completion line)."""
        name = f"{index}.pkl"
        write_checksummed_pickle(self.results_dir / name, result)
        self._append(
            {"done": index, "attempts": attempts, "result": name}, fsync=True
        )
        self.results[index] = result

    def record_event(
        self, kind: str, index: int, attempt: int, detail: str = ""
    ) -> None:
        """Record a non-terminal fault (retry, crash, timeout, error)."""
        self._append(
            {"event": kind, "index": index, "attempt": attempt,
             "detail": detail}
        )

    # -- lifecycle ----------------------------------------------------

    @property
    def replayed(self) -> int:
        """How many cells this run recovered from the journal."""
        return len(self.results)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
