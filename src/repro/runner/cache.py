"""On-disk result cache for the sweep runner.

Cache entries are keyed by three components:

* the task function's qualified name,
* a canonical token of the config (dataclass ``repr``, which is
  deterministic for the frozen config types used by the sweeps), and
* a **code fingerprint**: a hash over the source files the simulation
  depends on.  Scheme-aware fingerprints
  (:func:`scheme_fingerprint`) hash the shared substrate (simulator, net,
  TCP stacks, workloads, …) plus only the modules implementing that
  scheme, so editing ``core/bcpqp.py`` invalidates cached BC-PQP cells
  while the shaper/policer cells of the same figure stay warm — re-running
  a figure after editing one scheme only re-simulates that scheme.

Values are stored as one checksummed pickle file per key under the cache
root; writes go through a temp file and ``os.replace`` so a crashed run
never leaves a truncated entry behind, and every read verifies a SHA-256
digest over the payload.  An entry that fails verification anyway (torn
write on a crashed filesystem, bit rot, a concurrent writer from an
incompatible version) is **quarantined** — moved to
``<root>/quarantine/`` for post-mortem inspection — and reported as a
miss, so a corrupt cache degrades a sweep to recomputation instead of
aborting it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from functools import lru_cache
from pathlib import Path
from typing import Any

import repro

_SRC_ROOT = Path(repro.__file__).resolve().parent

#: Source the outcome of *every* simulation depends on.  Directories are
#: hashed recursively.
_SHARED_SOURCES: tuple[str, ...] = (
    "sim",
    "net",
    "cc",
    "policy",
    "classify",
    "sched",
    "workload",
    "metrics",
    "units.py",
    "scenario.py",
    "wiring.py",
    "schemes.py",
    "limiters/base.py",
    "limiters/costs.py",
    "runner/aggregate.py",
)

#: Additional per-scheme sources (relative to the ``repro`` package root).
_SCHEME_SOURCES: dict[str, tuple[str, ...]] = {
    "shaper": ("limiters/shaper.py",),
    "shaper-fifo": ("limiters/shaper.py",),
    "policer": ("limiters/token_bucket.py",),
    "policer+": ("limiters/token_bucket.py",),
    "fairpolicer": ("limiters/fair_policer.py",),
    "pqp": ("core/pqp.py", "core/phantom.py", "core/gps.py", "core/sizing.py"),
    "bcpqp": (
        "core/bcpqp.py",
        "core/pqp.py",
        "core/phantom.py",
        "core/gps.py",
        "core/sizing.py",
    ),
}


def _hash_sources_at(relative_paths: tuple[str, ...], src_root: Path) -> str:
    """Uncached fingerprint of ``relative_paths`` under ``src_root``.

    Exposed (with an explicit root) so tests can prove the fingerprint
    tracks file *bytes* without mutating the installed package.
    """
    digest = hashlib.sha256()
    for rel in relative_paths:
        path = src_root / rel
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            digest.update(str(file.relative_to(src_root)).encode())
            try:
                digest.update(file.read_bytes())
            except OSError:
                digest.update(b"<missing>")
    return digest.hexdigest()


@lru_cache(maxsize=None)
def _hash_sources(relative_paths: tuple[str, ...]) -> str:
    # Source bytes are immutable for the life of a process run, so the
    # default-root fingerprint memoizes; explicit-root hashing never does.
    return _hash_sources_at(relative_paths, _SRC_ROOT)


def scheme_fingerprint(
    scheme: str, validate: bool = False, churn: bool = False
) -> str:
    """Code fingerprint for one enforcement scheme's simulation outcome.

    ``validate=True`` folds the invariant-checker sources into the hash:
    validated runs produce byte-identical outcomes (the checker is a pure
    observer), but a checker edit must still invalidate *validated* cache
    entries — while never touching the unvalidated ones, so enabling
    validation can't poison cached sweep results either way.
    ``churn=True`` gets the same treatment for live-reconfiguration runs:
    it folds ``churn.py`` in, so an edit to the churn machinery
    invalidates exactly the cached cells whose outcome a churn plan
    shaped — churn-free sweeps stay warm.
    """
    extra = _SCHEME_SOURCES.get(scheme)
    if extra is None:
        # Unknown scheme: be conservative and hash every limiter/core file.
        extra = ("limiters", "core")
    if validate:
        extra = extra + ("validate",)
    if churn:
        extra = extra + ("churn.py",)
    return _hash_sources(_SHARED_SOURCES + extra)


def fleet_fingerprint(
    scheme: str, validate: bool = False, churn: bool = False
) -> str:
    """Code fingerprint for one fleet *shard*'s simulation outcome.

    A shard result depends on everything a single-aggregate cell does for
    its scheme, plus the fleet layer itself (plan derivation, columnar
    recorder, shard wiring) and the middlebox that routes aggregates —
    so an edit to ``fleet/`` invalidates cached shard summaries while
    per-figure aggregate cells stay warm.  ``churn=True`` mirrors
    :func:`scheme_fingerprint`'s treatment for fleets with live
    reconfiguration plans.
    """
    extra = _SCHEME_SOURCES.get(scheme)
    if extra is None:
        extra = ("limiters", "core")
    extra = extra + ("fleet", "net/middlebox.py")
    if validate:
        extra = extra + ("validate",)
    if churn:
        extra = extra + ("churn.py",)
    return _hash_sources(_SHARED_SOURCES + extra)


def package_fingerprint() -> str:
    """Fingerprint over the whole ``repro`` package (safe default)."""
    return _hash_sources((".",))


# -- checksummed pickle store (shared by the cache and the journal) -----

#: Entry header: format magic, then the payload digest, then the payload.
_PICKLE_MAGIC = b"repro-pickle/1\n"


class CorruptEntry(Exception):
    """A stored pickle failed verification (truncated, garbled, or an
    unreadable payload)."""


def write_checksummed_pickle(path: Path, value: Any) -> None:
    """Atomically write ``value`` as a digest-protected pickle."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest().encode()
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with tmp.open("wb") as fh:
        fh.write(_PICKLE_MAGIC + digest + b"\n" + payload)
    os.replace(tmp, path)


def read_checksummed_pickle(path: Path) -> Any:
    """Load a digest-protected pickle; raises :class:`CorruptEntry` on any
    mismatch (including entries written by pre-checksum versions)."""
    with path.open("rb") as fh:
        blob = fh.read()
    if not blob.startswith(_PICKLE_MAGIC):
        raise CorruptEntry(f"{path}: missing {_PICKLE_MAGIC!r} header")
    body = blob[len(_PICKLE_MAGIC):]
    digest, sep, payload = body.partition(b"\n")
    if not sep:
        raise CorruptEntry(f"{path}: truncated before payload")
    if hashlib.sha256(payload).hexdigest().encode() != digest:
        raise CorruptEntry(f"{path}: payload digest mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        # A valid digest but an unreadable payload means the entry was
        # written by an incompatible code version; same remedy either way.
        raise CorruptEntry(f"{path}: unpicklable payload ({exc})") from exc


class ResultCache:
    """A directory of checksummed pickled task results, keyed by config
    hash.  Entries that fail verification are quarantined and count as
    misses (see the module docstring)."""

    _MISS = object()

    #: Subdirectory corrupt entries are moved to (never globbed by reads).
    QUARANTINE_DIR = "quarantine"

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    @staticmethod
    def key(task_name: str, config: Any, fingerprint: str) -> str:
        """Stable cache key for ``task_name`` applied to ``config``."""
        token = f"{task_name}\x00{config!r}\x00{fingerprint}"
        return hashlib.sha256(token.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside for post-mortem inspection."""
        target_dir = self.root / self.QUARANTINE_DIR
        try:
            target_dir.mkdir(exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            # Quarantine is best-effort; an undeletable corrupt entry
            # still reads as a miss on every load.
            pass

    def load(self, key: str) -> tuple[bool, Any]:
        """Return ``(hit, value)``; ``value`` is ``None`` on a miss.

        Corrupt/truncated entries are quarantined and counted in
        ``self.corrupt`` (they are misses, never raised).
        """
        path = self._path(key)
        try:
            value = read_checksummed_pickle(path)
        except CorruptEntry:
            self.corrupt += 1
            self.misses += 1
            self._quarantine(path)
            return False, None
        except OSError:
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def store(self, key: str, value: Any) -> None:
        """Persist ``value`` under ``key`` (atomic rename, checksummed)."""
        write_checksummed_pickle(self._path(key), value)

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
