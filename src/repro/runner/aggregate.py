"""Picklable aggregate-simulation configs, outcomes, and the worker entry.

:func:`simulate_aggregate` is the unit of work the sweep runner fans out:
one fully-specified, independently-seeded aggregate simulation in, one
measurement bundle out.  Both sides are plain picklable dataclasses — no
simulator, limiter or event-heap state crosses the process boundary, only
the numbers the figures need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.churn import ChurnDriver, ChurnPlan
from repro.limiters.base import RateLimiter
from repro.metrics.fairness import jain_index
from repro.net.impair import ImpairmentSpec
from repro.metrics.series import TimeSeries
from repro.metrics.throughput import (
    aggregate_throughput_series,
    per_slot_throughput_series,
)
from repro.policy.tree import Policy
from repro.runner.cache import scheme_fingerprint
from repro.scenario import AggregateScenario, BottleneckSpec, FlowRecord
from repro.schemes import make_limiter
from repro.sim.simulator import Simulator
from repro.workload.spec import FlowSpec

#: Measurement window used throughout the paper's evaluation (250 ms).
MEASUREMENT_WINDOW = 0.25


@dataclass(frozen=True)
class AggregateConfig:
    """Everything needed to simulate and measure one aggregate.

    A frozen dataclass of primitives (plus the frozen spec/policy types),
    so it pickles across process boundaries and its ``repr`` is a stable
    cache token.  ``seed`` fully determines the run's randomness.
    """

    scheme: str
    specs: tuple[FlowSpec, ...]
    rate: float
    max_rtt: float
    horizon: float
    warmup: float
    seed: int = 1
    bottleneck: BottleneckSpec | None = None
    weights: tuple[float, ...] | None = None
    policy: Policy | None = None
    queue_bytes: float | None = None
    window: float = MEASUREMENT_WINDOW
    #: Phantom service discipline for pqp/bcpqp ("fluid", "fluid-ref",
    #: "quantum"); ignored by other schemes.
    phantom_service: str = "fluid"
    #: Attach the runtime invariant checker to the run.  Outcomes are
    #: byte-identical either way (the checker is a pure observer), but
    #: the field participates in the config ``repr`` so validated and
    #: unvalidated runs never share cache entries.
    validate: bool = False
    #: Delivery batching (``Simulator(batch_limit=...)``): ``None`` =
    #: unbounded batches (the default engine), ``1`` = the legacy
    #: per-packet path, ``K`` = cap batches at K.  Outcomes are
    #: byte-identical for every setting (pinned by
    #: ``tests/test_engine_equivalence.py`` and the differential
    #: fuzzer); the field participates in the cache token regardless.
    batch: int | None = None
    #: Optional impairment channels (loss/jitter/reorder/corrupt plus a
    #: capacity trace) applied to the scenario.  ``None`` and an
    #: all-disabled spec both construct nothing and draw no randomness,
    #: so clean runs stay byte-identical.
    impair: ImpairmentSpec | None = None
    #: Optional live-reconfiguration plan (see :mod:`repro.churn`).
    #: ``None`` and an empty plan both construct no driver, schedule no
    #: timer and consume no simulator seqs, so churn-free runs stay
    #: byte-identical to pre-churn builds.
    churn: ChurnPlan | None = None

    def __post_init__(self) -> None:
        # Tolerate list inputs (call sites build grids with lists) while
        # keeping the stored config hashable/immutable.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))
        if self.weights is not None and not isinstance(self.weights, tuple):
            object.__setattr__(self, "weights", tuple(self.weights))

    def code_fingerprint(self) -> str:
        """Cache fingerprint covering this config's scheme code."""
        return scheme_fingerprint(
            self.scheme,
            validate=self.validate,
            churn=self.churn is not None,
        )


@dataclass
class AggregateOutcome:
    """Everything measured from one aggregate under one scheme.

    Unlike the in-process :class:`~repro.experiments.common.AggregateResult`
    it does not hold the limiter or scenario objects, so it pickles cleanly;
    the few cross-object measurements figures need (flow completion records,
    secondary-bottleneck drops) are extracted eagerly.
    """

    scheme: str
    rate: float
    aggregate_series: TimeSeries
    slot_series: dict[int, TimeSeries]
    drop_rate: float
    cycles_per_packet: float
    arrived_packets: int
    flow_records: tuple[FlowRecord, ...] = ()
    bottleneck_drops: int = 0
    #: Burst-control actions taken by a bcpqp limiter (0 for every other
    #: scheme).  The impairments experiment reads these as the
    #: false-trigger proxy: impairment-induced loss should not masquerade
    #: as bursts and flip the controller.
    magic_fills: int = 0
    magic_reclaims: int = 0
    #: Live-reconfiguration outcomes (0 when the run carried no churn
    #: plan): plan actions committed vs rejected with a typed error.
    updates_applied: int = 0
    updates_rejected: int = 0

    @property
    def normalized_series(self) -> list[float]:
        """Windowed aggregate throughput normalized by the enforced rate."""
        return [v / self.rate for v in self.aggregate_series.values]

    @property
    def mean_normalized_throughput(self) -> float:
        """Mean of non-zero normalized windows (Figure 4c's metric)."""
        values = [v for v in self.normalized_series if v > 0]
        if not values:
            return 0.0
        return sum(values) / len(values)

    @property
    def peak_normalized_throughput(self) -> float:
        """Max windowed throughput over the enforced rate (burst)."""
        if not self.aggregate_series.values:
            return 0.0
        return self.aggregate_series.max() / self.rate

    @property
    def fairness(self) -> float:
        """Jain's index over mean per-slot throughputs."""
        return jain_index([s.mean() for s in self.slot_series.values()])


def build_scenario(
    config: AggregateConfig, sim: Simulator
) -> tuple[RateLimiter, AggregateScenario]:
    """Wire up the limiter and scenario for ``config`` on ``sim``."""
    num_queues = max(s.slot for s in config.specs) + 1
    limiter = make_limiter(
        sim,
        config.scheme,
        rate=config.rate,
        num_queues=num_queues,
        max_rtt=config.max_rtt,
        weights=list(config.weights) if config.weights else None,
        policy=config.policy,
        queue_bytes=config.queue_bytes,
        phantom_service=config.phantom_service,
    )
    scenario = AggregateScenario(
        sim,
        limiter=limiter,
        specs=config.specs,
        rng=random.Random(config.seed),
        horizon=config.horizon,
        bottleneck=config.bottleneck,
        impair=config.impair,
    )
    if config.churn is not None and config.churn.enabled:
        # The driver parks itself on the limiter so `measure` can read
        # the applied/rejected counts without changing this signature.
        limiter.churn_driver = ChurnDriver(sim, limiter, config.churn)
    return limiter, scenario


def measure(
    config: AggregateConfig,
    limiter: RateLimiter,
    scenario: AggregateScenario,
) -> AggregateOutcome:
    """Extract the figure measurements from a completed run."""
    trace = scenario.trace
    bottleneck = scenario.bottleneck
    driver = getattr(limiter, "churn_driver", None)
    return AggregateOutcome(
        scheme=config.scheme,
        rate=config.rate,
        aggregate_series=aggregate_throughput_series(
            trace, window=config.window, start=config.warmup,
            end=config.horizon,
        ),
        slot_series=per_slot_throughput_series(
            trace, window=config.window, start=config.warmup,
            end=config.horizon,
        ),
        drop_rate=limiter.stats.drop_rate,
        cycles_per_packet=limiter.cost.cycles_per_packet(
            limiter.stats.arrived_packets
        ),
        arrived_packets=limiter.stats.arrived_packets,
        flow_records=tuple(scenario.flow_records),
        bottleneck_drops=bottleneck.dropped_packets if bottleneck else 0,
        magic_fills=getattr(limiter, "magic_fills", 0),
        magic_reclaims=getattr(limiter, "magic_reclaims", 0),
        updates_applied=driver.applied if driver is not None else 0,
        updates_rejected=driver.rejected if driver is not None else 0,
    )


def simulate_aggregate(config: AggregateConfig) -> AggregateOutcome:
    """Worker entry point: simulate one aggregate and measure it."""
    checker = None
    if config.validate:
        # Imported lazily so unvalidated sweeps never load the checker.
        from repro.validate import InvariantChecker

        checker = InvariantChecker()
    sim = Simulator(validate=checker, batch_limit=config.batch)
    limiter, scenario = build_scenario(config, sim)
    scenario.run()
    if checker is not None:
        checker.finalize(traces=(scenario.trace,))
    return measure(config, limiter, scenario)
