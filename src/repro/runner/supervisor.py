"""Supervised sweep execution: crash isolation, timeouts, retries,
backoff, circuit-breaker degradation, and journaled resume.

The plain pool (:func:`repro.runner.pool.run_tasks`) maps cells over a
``multiprocessing.Pool`` — fast, but a single SIGKILL'd worker (OOM), a
hung simulation, or a transient exception aborts the whole sweep.  The
supervisor runs **one disposable worker process per cell attempt** and
owns the full failure lifecycle:

* **Crash isolation** — a worker that dies without reporting (SIGKILL,
  segfault, OOM kill) loses only its own cell; the supervisor observes
  the closed result pipe / exit code and reschedules the cell.
* **Timeouts** — ``task_timeout`` bounds each attempt's wall clock; a
  hung worker is SIGKILLed and the cell rescheduled.
* **Retry with backoff + jitter** — failed cells retry up to
  ``RetryPolicy.retries`` times with exponential backoff and
  deterministic per-(cell, attempt) jitter, so retry storms decorrelate
  but every run of the same sweep sleeps the same schedule.
* **Circuit breaker + graceful degradation** — a run of consecutive
  *infrastructure* failures (crashes/timeouts, not clean exceptions)
  with no intervening success trips the breaker: instead of aborting,
  the supervisor halves its worker budget (parallel → reduced workers →
  serial, i.e. one isolated worker at a time) and keeps going.
* **Write-ahead journal** — with a :class:`~repro.runner.journal.SweepJournal`
  attached, every completed cell is durably recorded before the sweep
  advances; a resumed sweep replays completed cells from the journal and
  computes only the missing ones, reproducing uninterrupted output byte
  for byte.

Results are keyed by input index and every cell derives its randomness
from its own config, so supervised, plain-pool and serial execution all
produce identical results — the supervisor changes *availability*, never
*values* (pinned by ``tests/test_chaos.py``).

Per-cell permanent failures (retry budget exhausted) do not abort the
sweep unless ``fail_fast=True``: the remaining cells complete (and are
journaled), then the failures are reported in the returned
:class:`SweepReport`.  Callers that need every cell (figure tables)
raise :class:`SweepError` on a non-empty failure list — by then all
salvageable work is already journaled.
"""

from __future__ import annotations

import heapq
import random
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.runner.cache import ResultCache, package_fingerprint
from repro.runner.faults import FaultPlan
from repro.runner.journal import SweepJournal

C = TypeVar("C")
R = TypeVar("R")

__all__ = [
    "CellFailure",
    "RetryPolicy",
    "SweepError",
    "SweepReport",
    "SweepStats",
    "run_supervised",
    "reset_session_stats",
    "session_stats",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/breaker knobs for one supervised sweep."""

    #: Additional attempts after the first failure (0 = no retries).
    retries: int = 2
    #: First retry delay, seconds (0 disables backoff sleeping).
    backoff_base: float = 0.5
    #: Exponential growth per attempt.
    backoff_factor: float = 2.0
    #: Backoff ceiling, seconds.
    backoff_max: float = 30.0
    #: Jitter fraction: the delay is scaled by ``1 + jitter * u`` with
    #: ``u`` drawn deterministically per (cell, attempt).
    jitter: float = 0.1
    #: Seed for the jitter draws (same seed → same retry schedule).
    seed: int = 0
    #: Consecutive crash/timeout failures (no success in between) that
    #: trip the circuit breaker and halve the worker budget.
    breaker_threshold: int = 5

    def delay(self, index: int, attempt: int) -> float:
        """Backoff before retrying ``index`` after failed ``attempt``."""
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** attempt,
        )
        if base <= 0.0:
            return 0.0
        # Tuple-of-ints hashing is deterministic across processes and
        # runs (no string hash randomization involved).
        rng = random.Random(hash((self.seed, index, attempt)))
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class CellFailure:
    """One cell that exhausted its retry budget."""

    index: int
    kind: str  #: ``"crash"`` | ``"timeout"`` | ``"error"``
    detail: str
    attempts: int

    def __str__(self) -> str:
        return (
            f"cell {self.index}: {self.kind} after {self.attempts} "
            f"attempt(s): {self.detail}"
        )


@dataclass
class SweepStats:
    """Fault accounting for one supervised sweep."""

    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    errors: int = 0
    failed_cells: int = 0
    replayed: int = 0
    cache_hits: int = 0
    degradations: list[str] = field(default_factory=list)


@dataclass
class SweepReport:
    """Everything a supervised sweep produced."""

    #: Input-ordered results; ``None`` for permanently failed cells.
    results: list[Any]
    failures: list[CellFailure]
    stats: SweepStats

    @property
    def ok(self) -> bool:
        return not self.failures


class SweepError(RuntimeError):
    """A sweep finished (or fail-fast aborted) with failed cells."""

    def __init__(self, report: SweepReport) -> None:
        self.report = report
        lines = [f"{len(report.failures)} sweep cell(s) failed permanently:"]
        lines += [f"  {failure}" for failure in report.failures]
        super().__init__("\n".join(lines))


#: Process-wide fault accounting, accumulated across every supervised
#: sweep in this session (surfaced by ``benchmarks/report.py``).
_SESSION = SweepStats()


def session_stats() -> dict[str, int]:
    """Snapshot of the session-wide supervised-sweep fault counters."""
    return {
        "retries": _SESSION.retries,
        "crashes": _SESSION.crashes,
        "timeouts": _SESSION.timeouts,
        "errors": _SESSION.errors,
        "failed_cells": _SESSION.failed_cells,
        "replayed": _SESSION.replayed,
        "degradations": len(_SESSION.degradations),
    }


def reset_session_stats() -> None:
    global _SESSION
    _SESSION = SweepStats()


def _absorb_session(stats: SweepStats) -> None:
    _SESSION.retries += stats.retries
    _SESSION.crashes += stats.crashes
    _SESSION.timeouts += stats.timeouts
    _SESSION.errors += stats.errors
    _SESSION.failed_cells += stats.failed_cells
    _SESSION.replayed += stats.replayed
    _SESSION.cache_hits += stats.cache_hits
    _SESSION.degradations.extend(stats.degradations)


def _supervised_worker(conn, fn, config, index, attempt, fault_plan) -> None:
    """Child entry: run one cell attempt, report through the pipe.

    Top-level (picklable) so spawn contexts work.  Any outcome other
    than a message on the pipe — including the process dying before
    sending — is read by the supervisor as a crash.
    """
    try:
        if fault_plan is not None:
            fault_plan.apply(index, attempt)
        result = fn(config)
    except BaseException as exc:  # report, never escape: the pipe IS the API
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", result))
    except Exception as exc:
        try:
            conn.send(("error", f"unpicklable result: {exc}"))
        except Exception:
            pass
    conn.close()


@dataclass
class _Inflight:
    index: int
    attempt: int
    process: Any
    conn: Any
    deadline: float | None


def run_supervised(
    fn: Callable[[C], R],
    configs: Iterable[C],
    *,
    jobs: int | None = None,
    policy: RetryPolicy | None = None,
    task_timeout: float | None = None,
    fail_fast: bool = False,
    journal: SweepJournal | None = None,
    cache: ResultCache | None = None,
    fingerprint: str | Callable[[C], str] | None = None,
    fault_plan: FaultPlan | None = None,
    start_method: str | None = None,
) -> SweepReport:
    """Map ``fn`` over ``configs`` under full supervision (module doc).

    Returns a :class:`SweepReport`; raises :class:`SweepError` only in
    ``fail_fast`` mode (first permanent cell failure aborts the sweep,
    after journaling everything already complete).
    """
    from repro.runner.pool import _pool_context, _task_name

    policy = policy or RetryPolicy()
    config_list = list(configs)
    total = len(config_list)
    results: list[Any] = [None] * total
    done = [False] * total
    stats = SweepStats()
    failures: list[CellFailure] = []
    task_name = _task_name(fn)

    if journal is not None:
        journal.bind(task_name, [repr(config) for config in config_list])
        for index, value in journal.results.items():
            results[index] = value
            done[index] = True
        stats.replayed = journal.replayed

    keys: dict[int, str] = {}
    if cache is not None:
        for index in range(total):
            if done[index]:
                continue
            if callable(fingerprint):
                fp = fingerprint(config_list[index])
            else:
                fp = fingerprint or package_fingerprint()
            key = cache.key(task_name, config_list[index], fp)
            keys[index] = key
            hit, value = cache.load(key)
            if hit:
                results[index] = value
                done[index] = True
                stats.cache_hits += 1
                if journal is not None:
                    journal.record_done(index, value, attempts=0)

    pending: deque[tuple[int, int]] = deque(
        (index, 0) for index in range(total) if not done[index]
    )
    retry_heap: list[tuple[float, int, int]] = []  # (ready_at, index, attempt)
    inflight: dict[Any, _Inflight] = {}
    max_workers = max(1, jobs) if jobs else 1
    consecutive_bad = 0
    aborted = False
    ctx = _pool_context(start_method)

    def launch(index: int, attempt: int) -> None:
        recv, send = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_supervised_worker,
            args=(send, fn, config_list[index], index, attempt, fault_plan),
            daemon=True,
        )
        process.start()
        send.close()  # child holds the only writer; EOF == child death
        deadline = (
            time.monotonic() + task_timeout if task_timeout else None
        )
        inflight[recv] = _Inflight(index, attempt, process, recv, deadline)

    def reap(run: _Inflight, *, kill: bool = False) -> None:
        if kill:
            run.process.kill()
        run.process.join(timeout=5.0)
        if run.process.is_alive():  # pragma: no cover - last resort
            run.process.kill()
            run.process.join(timeout=5.0)
        run.conn.close()

    def degrade_if_tripped() -> None:
        nonlocal max_workers, consecutive_bad
        if consecutive_bad >= policy.breaker_threshold and max_workers > 1:
            new_workers = max(1, max_workers // 2)
            stage = "serial" if new_workers == 1 else "reduced workers"
            stats.degradations.append(
                f"circuit breaker: {consecutive_bad} consecutive "
                f"crash/timeout failures; workers {max_workers} -> "
                f"{new_workers} ({stage})"
            )
            max_workers = new_workers
            consecutive_bad = 0

    def on_success(run: _Inflight, value: Any) -> None:
        nonlocal consecutive_bad
        results[run.index] = value
        done[run.index] = True
        consecutive_bad = 0
        if cache is not None and run.index in keys:
            cache.store(keys[run.index], value)
        if journal is not None:
            journal.record_done(run.index, value, attempts=run.attempt + 1)

    def on_failure(run: _Inflight, kind: str, detail: str) -> None:
        nonlocal consecutive_bad, aborted
        if kind == "crash":
            stats.crashes += 1
        elif kind == "timeout":
            stats.timeouts += 1
        else:
            stats.errors += 1
        if journal is not None:
            journal.record_event(kind, run.index, run.attempt, detail)
        if kind in ("crash", "timeout"):
            consecutive_bad += 1
            degrade_if_tripped()
        if run.attempt < policy.retries:
            stats.retries += 1
            ready_at = time.monotonic() + policy.delay(run.index, run.attempt)
            heapq.heappush(retry_heap, (ready_at, run.index, run.attempt + 1))
        else:
            failures.append(
                CellFailure(run.index, kind, detail, attempts=run.attempt + 1)
            )
            stats.failed_cells += 1
            if fail_fast:
                aborted = True

    try:
        while (pending or retry_heap or inflight) and not aborted:
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, index, attempt = heapq.heappop(retry_heap)
                pending.append((index, attempt))
            while pending and len(inflight) < max_workers:
                index, attempt = pending.popleft()
                launch(index, attempt)
            if not inflight:
                if retry_heap:  # backoff gap: sleep until the next retry
                    time.sleep(max(0.0, retry_heap[0][0] - time.monotonic()))
                continue

            timeout = None
            deadlines = [
                run.deadline for run in inflight.values()
                if run.deadline is not None
            ]
            if deadlines:
                timeout = max(0.0, min(deadlines) - time.monotonic())
            if retry_heap:
                gap = max(0.0, retry_heap[0][0] - time.monotonic())
                timeout = gap if timeout is None else min(timeout, gap)
            ready = _connection_wait(list(inflight), timeout=timeout)

            for conn in ready:
                run = inflight.pop(conn)
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError):
                    reap(run)
                    code = run.process.exitcode
                    on_failure(
                        run, "crash",
                        f"worker died without reporting (exit code {code})",
                    )
                    continue
                reap(run)
                if kind == "ok":
                    on_success(run, payload)
                else:
                    on_failure(run, "error", payload)

            now = time.monotonic()
            for conn, run in list(inflight.items()):
                if run.deadline is not None and now >= run.deadline:
                    del inflight[conn]
                    reap(run, kill=True)
                    on_failure(
                        run, "timeout",
                        f"exceeded task timeout of {task_timeout} s",
                    )
    finally:
        for run in inflight.values():
            reap(run, kill=True)
        inflight.clear()
        if journal is not None:
            journal.close()
        _absorb_session(stats)

    report = SweepReport(results=results, failures=failures, stats=stats)
    if aborted:
        raise SweepError(report)
    return report
