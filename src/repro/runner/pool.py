"""Process-pool sweep execution with a serial fallback.

Every figure experiment is a grid of *independent* simulations: one
(scheme, workload, rate, seed) cell never observes another cell's state,
and each cell derives all randomness from an explicit seed in its config.
That makes the sweep embarrassingly parallel *and* deterministic: the
same config produces bit-identical results in-process, in a forked
worker, or in a spawned worker, so ``jobs=4`` and the serial fallback
print byte-identical figure tables.

``run_tasks`` is deliberately generic — it maps a top-level (picklable)
function over a list of picklable configs, preserving input order.  The
aggregate-simulation entry point lives in
:mod:`repro.runner.aggregate`; application-style figures (video, web,
ECN) submit their own cell functions.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.runner.cache import ResultCache, package_fingerprint

C = TypeVar("C")
R = TypeVar("R")

#: Env var consulted by :func:`default_jobs` (e.g. set by CI).
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count when the caller asks for "parallel, you pick"."""
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork shares the already-imported package with workers (cheap start);
    # fall back to spawn elsewhere — cell functions are all importable
    # top-level functions, so both start methods work.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _task_name(fn: Callable[..., Any]) -> str:
    return f"{fn.__module__}:{fn.__qualname__}"


def run_tasks(
    fn: Callable[[C], R],
    configs: Iterable[C],
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    fingerprint: str | Callable[[C], str] | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``fn`` over ``configs``, optionally in parallel and cached.

    Parameters
    ----------
    fn:
        A module-level function taking one picklable config and returning
        a picklable result.
    jobs:
        ``None``/``0``/``1`` runs serially in-process (the bit-for-bit
        fallback — no multiprocessing machinery is touched at all);
        ``>1`` fans out over that many worker processes.
    cache:
        Optional :class:`~repro.runner.cache.ResultCache`.  Hits skip the
        simulation entirely; misses are stored after computation.
    fingerprint:
        Code-fingerprint component of the cache key: a string, a callable
        ``config -> str`` (e.g. scheme-aware), or ``None`` for the
        whole-package fingerprint.  Ignored without ``cache``.

    Results are returned in input order regardless of completion order.
    """
    config_list = list(configs)
    results: list[Any] = [None] * len(config_list)
    keys: dict[int, str] = {}
    if cache is not None:
        pending = []
        name = _task_name(fn)
        for i, config in enumerate(config_list):
            if callable(fingerprint):
                fp = fingerprint(config)
            else:
                fp = fingerprint or package_fingerprint()
            key = cache.key(name, config, fp)
            keys[i] = key
            hit, value = cache.load(key)
            if hit:
                results[i] = value
            else:
                pending.append(i)
    else:
        pending = list(range(len(config_list)))

    if pending:
        todo = [config_list[i] for i in pending]
        if jobs is not None and jobs > 1:
            with _pool_context().Pool(processes=jobs) as pool:
                computed = pool.map(fn, todo, chunksize=chunksize)
        else:
            computed = [fn(config) for config in todo]
        for i, value in zip(pending, computed):
            results[i] = value
            if cache is not None:
                cache.store(keys[i], value)
    return results


def run_sweep(
    fn: Callable[[C], R],
    configs: Sequence[C],
    *,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    fingerprint: str | Callable[[C], str] | None = None,
) -> list[R]:
    """Convenience wrapper: build the cache from a directory path."""
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return run_tasks(fn, configs, jobs=jobs, cache=cache, fingerprint=fingerprint)
