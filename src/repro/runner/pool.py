"""Process-pool sweep execution with a serial fallback.

Every figure experiment is a grid of *independent* simulations: one
(scheme, workload, rate, seed) cell never observes another cell's state,
and each cell derives all randomness from an explicit seed in its config.
That makes the sweep embarrassingly parallel *and* deterministic: the
same config produces bit-identical results in-process, in a forked
worker, or in a spawned worker, so ``jobs=4`` and the serial fallback
print byte-identical figure tables.

``run_tasks`` is deliberately generic — it maps a top-level (picklable)
function over a list of picklable configs, preserving input order.  The
aggregate-simulation entry point lives in
:mod:`repro.runner.aggregate`; application-style figures (video, web,
ECN) submit their own cell functions.

Fault tolerance: passing any of ``retries``/``task_timeout``/``journal``/
``fail_fast``/``fault_plan`` routes the sweep through the supervised
pool (:mod:`repro.runner.supervisor`) — worker crashes are isolated and
retried with backoff, hung cells are timed out, and completed cells are
journaled for ``--resume``.  Without those knobs the fast plain-pool
path below is used, unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.runner.cache import ResultCache, package_fingerprint

C = TypeVar("C")
R = TypeVar("R")

#: Env var consulted by :func:`default_jobs` (e.g. set by CI).
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count when the caller asks for "parallel, you pick".

    Caps at the CPUs this process may actually run on (the scheduler
    affinity mask) rather than the machine's full core count: in a
    cgroup/container or under ``taskset`` the two differ, and sizing the
    pool to ``cpu_count()`` oversubscribes the few permitted cores.
    """
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring invalid {JOBS_ENV}={env!r} (not an integer); "
                "falling back to the CPU count",
                RuntimeWarning,
                stacklevel=2,
            )
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        # Platforms without sched_getaffinity (macOS, Windows).
        return os.cpu_count() or 1


def _pool_context(
    method: str | None = None,
) -> multiprocessing.context.BaseContext:
    # fork shares the already-imported package with workers (cheap start);
    # fall back to spawn elsewhere — cell functions are all importable
    # top-level functions, so both start methods work.
    if method is None:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(method)


def _task_name(fn: Callable[..., Any]) -> str:
    return f"{fn.__module__}:{fn.__qualname__}"


def run_tasks(
    fn: Callable[[C], R],
    configs: Iterable[C],
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    fingerprint: str | Callable[[C], str] | None = None,
    chunksize: int = 1,
    retries: int | None = None,
    task_timeout: float | None = None,
    journal: Any | None = None,
    fail_fast: bool = False,
    fault_plan: Any | None = None,
    start_method: str | None = None,
) -> list[R]:
    """Map ``fn`` over ``configs``, optionally in parallel and cached.

    Parameters
    ----------
    fn:
        A module-level function taking one picklable config and returning
        a picklable result.
    jobs:
        ``None``/``0``/``1`` runs serially in-process (the bit-for-bit
        fallback — no multiprocessing machinery is touched at all);
        ``>1`` fans out over that many worker processes.
    cache:
        Optional :class:`~repro.runner.cache.ResultCache`.  Hits skip the
        simulation entirely; misses are stored after computation.
    fingerprint:
        Code-fingerprint component of the cache key: a string, a callable
        ``config -> str`` (e.g. scheme-aware), or ``None`` for the
        whole-package fingerprint.  Ignored without ``cache``.
    retries, task_timeout, journal, fail_fast, fault_plan:
        Fault-tolerance knobs; any of them being set routes the sweep
        through :func:`repro.runner.supervisor.run_supervised` (crash
        isolation, retry with backoff, per-cell wall-clock timeouts,
        write-ahead journaling, deterministic fault injection).  If any
        cell still fails after its retry budget, :class:`SweepError` is
        raised *after* the remaining cells complete (or immediately with
        ``fail_fast=True``) — completed cells stay journaled/cached.
    start_method:
        Force a multiprocessing start method (``"fork"``/``"spawn"``)
        instead of the fork-preferred default.

    Results are returned in input order regardless of completion order.
    """
    supervised = (
        retries is not None
        or task_timeout is not None
        or journal is not None
        or fault_plan is not None
        or fail_fast
    )
    if supervised:
        from repro.runner.supervisor import (
            RetryPolicy,
            SweepError,
            run_supervised,
        )

        policy = RetryPolicy() if retries is None else RetryPolicy(retries=retries)
        report = run_supervised(
            fn,
            configs,
            jobs=jobs,
            policy=policy,
            task_timeout=task_timeout,
            fail_fast=fail_fast,
            journal=journal,
            cache=cache,
            fingerprint=fingerprint,
            fault_plan=fault_plan,
            start_method=start_method,
        )
        if report.failures:
            raise SweepError(report)
        return report.results

    config_list = list(configs)
    results: list[Any] = [None] * len(config_list)
    keys: dict[int, str] = {}
    if cache is not None:
        pending = []
        name = _task_name(fn)
        for i, config in enumerate(config_list):
            if callable(fingerprint):
                fp = fingerprint(config)
            else:
                fp = fingerprint or package_fingerprint()
            key = cache.key(name, config, fp)
            keys[i] = key
            hit, value = cache.load(key)
            if hit:
                results[i] = value
            else:
                pending.append(i)
    else:
        pending = list(range(len(config_list)))

    if pending:
        todo = [config_list[i] for i in pending]
        if jobs is not None and jobs > 1:
            pool = _pool_context(start_method).Pool(processes=jobs)
            try:
                computed = pool.map(fn, todo, chunksize=chunksize)
            except BaseException:
                # KeyboardInterrupt (or any worker error) must not leave
                # pool children alive behind the re-raised exception.
                pool.terminate()
                pool.join()
                raise
            else:
                pool.close()
                pool.join()
        else:
            computed = [fn(config) for config in todo]
        for i, value in zip(pending, computed):
            results[i] = value
            if cache is not None:
                cache.store(keys[i], value)
    return results


def run_sweep(
    fn: Callable[[C], R],
    configs: Sequence[C],
    *,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    fingerprint: str | Callable[[C], str] | None = None,
) -> list[R]:
    """Convenience wrapper: build the cache from a directory path."""
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return run_tasks(fn, configs, jobs=jobs, cache=cache, fingerprint=fingerprint)
