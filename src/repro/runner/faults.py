"""Deterministic fault injection for the supervised sweep runner.

A :class:`FaultPlan` maps ``(cell index, attempt)`` to a fault kind and
is applied *inside* the worker process right before the cell function
runs, so the chaos tests exercise the exact failure modes production
sweeps see:

* ``"kill"`` — the worker SIGKILLs itself (models OOM kills / segfaults:
  the process dies without a traceback or a result message);
* ``"hang"`` — the worker sleeps far past any sane cell duration
  (models a stuck simulation; recovered by the per-task timeout);
* ``"raise"`` — the worker raises :class:`TransientFault` (models a
  recoverable environment error, e.g. a flaky filesystem).

Plans are plain frozen data: an explicit ``{index: [fault per attempt]}``
table (:meth:`FaultPlan.explicit`) or a seeded random draw
(:meth:`FaultPlan.seeded`).  Either way the same plan injects the same
faults at the same (cell, attempt) coordinates on every run, so chaos
tests assert exact retry accounting and byte-identical recovered output.

:func:`corrupt_file` is the companion for at-rest faults: it truncates or
garbles a cache/journal entry in place, deterministically.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["FAULT_KINDS", "FaultPlan", "TransientFault", "corrupt_file"]

#: The injectable fault kinds, in the order :meth:`FaultPlan.seeded` draws.
FAULT_KINDS = ("kill", "hang", "raise")


class TransientFault(RuntimeError):
    """An injected recoverable failure (the ``"raise"`` fault kind)."""


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic ``(cell index, attempt) -> fault kind`` table."""

    #: ``(index, attempt) -> kind`` with kind in :data:`FAULT_KINDS`.
    plan: Mapping[tuple[int, int], str] = field(default_factory=dict)
    #: How long a ``"hang"`` fault sleeps; must exceed the supervisor's
    #: task timeout for the hang to be observed as a timeout.
    hang_seconds: float = 3600.0

    def fault_for(self, index: int, attempt: int) -> str | None:
        """The fault to inject for this attempt, or ``None``."""
        return self.plan.get((index, attempt))

    def apply(self, index: int, attempt: int) -> None:
        """Inject the planned fault (if any) in the calling process."""
        kind = self.fault_for(index, attempt)
        if kind is None:
            return
        if kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "hang":
            time.sleep(self.hang_seconds)
        elif kind == "raise":
            raise TransientFault(
                f"injected transient fault (cell {index}, attempt {attempt})"
            )
        else:  # pragma: no cover - guarded by the constructors
            raise ValueError(f"unknown fault kind {kind!r}")

    @staticmethod
    def explicit(
        spec: Mapping[int, Sequence[str | None]], *, hang_seconds: float = 3600.0
    ) -> "FaultPlan":
        """Build a plan from ``{index: [fault for attempt 0, 1, ...]}``."""
        plan: dict[tuple[int, int], str] = {}
        for index, kinds in spec.items():
            for attempt, kind in enumerate(kinds):
                if kind is None:
                    continue
                if kind not in FAULT_KINDS:
                    raise ValueError(f"unknown fault kind {kind!r}")
                plan[(index, attempt)] = kind
        return FaultPlan(plan=plan, hang_seconds=hang_seconds)

    @staticmethod
    def seeded(
        seed: int,
        count: int,
        *,
        rate: float = 0.2,
        attempts: int = 1,
        kinds: Sequence[str] = FAULT_KINDS,
        hang_seconds: float = 3600.0,
    ) -> "FaultPlan":
        """Draw a random plan: each of the first ``attempts`` attempts of
        each cell faults with probability ``rate``, kind uniform over
        ``kinds``.  Same seed, same plan — the chaos harness's campaigns
        are reproducible by construction."""
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        rng = random.Random(seed)
        plan: dict[tuple[int, int], str] = {}
        for index in range(count):
            for attempt in range(attempts):
                if rng.random() < rate:
                    plan[(index, attempt)] = rng.choice(tuple(kinds))
        return FaultPlan(plan=plan, hang_seconds=hang_seconds)


def corrupt_file(path: str | os.PathLike, *, mode: str = "truncate") -> None:
    """Damage a file in place (for cache/journal corruption tests).

    ``"truncate"`` cuts the file to half its length (a crashed writer);
    ``"garble"`` flips a run of bytes in the middle (bit rot) without
    changing the length.
    """
    target = Path(path)
    data = target.read_bytes()
    if mode == "truncate":
        target.write_bytes(data[: len(data) // 2])
    elif mode == "garble":
        mid = len(data) // 2
        span = max(1, min(16, len(data) - mid))
        garbled = bytes((b ^ 0xFF) for b in data[mid : mid + span])
        target.write_bytes(data[:mid] + garbled + data[mid + span :])
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
