"""Parallel sweep runner: fan independent simulation configs out over
process workers, with deterministic per-config seeding and an on-disk
result cache keyed by config + code fingerprints.

The three layers:

* :mod:`repro.runner.pool` — generic ordered ``run_tasks`` map with a
  bit-for-bit serial fallback;
* :mod:`repro.runner.cache` — pickle-per-key result store with
  scheme-aware code fingerprints;
* :mod:`repro.runner.aggregate` — the picklable config/outcome pair and
  worker entry point for the standard one-aggregate simulation.
"""

from repro.runner.aggregate import (
    MEASUREMENT_WINDOW,
    AggregateConfig,
    AggregateOutcome,
    simulate_aggregate,
)
from repro.runner.cache import (
    ResultCache,
    package_fingerprint,
    scheme_fingerprint,
)
from repro.runner.pool import default_jobs, run_sweep, run_tasks

__all__ = [
    "AggregateConfig",
    "AggregateOutcome",
    "MEASUREMENT_WINDOW",
    "ResultCache",
    "default_jobs",
    "package_fingerprint",
    "run_sweep",
    "run_tasks",
    "scheme_fingerprint",
    "simulate_aggregate",
]
