"""Parallel sweep runner: fan independent simulation configs out over
process workers, with deterministic per-config seeding and an on-disk
result cache keyed by config + code fingerprints.

The layers:

* :mod:`repro.runner.pool` — generic ordered ``run_tasks`` map with a
  bit-for-bit serial fallback;
* :mod:`repro.runner.supervisor` — fault-tolerant execution: supervised
  per-cell workers (crash isolation), per-task timeouts, retry with
  exponential backoff + jitter, a crash-loop circuit breaker that
  degrades parallel → reduced workers → serial, and journaled resume;
* :mod:`repro.runner.journal` — write-ahead per-cell completion journal
  so an interrupted sweep replays only missing cells;
* :mod:`repro.runner.faults` — deterministic chaos harness (seeded fault
  plans: worker kills, hangs, transient exceptions, file corruption);
* :mod:`repro.runner.cache` — checksummed pickle-per-key result store
  with scheme-aware code fingerprints and corrupt-entry quarantine;
* :mod:`repro.runner.aggregate` — the picklable config/outcome pair and
  worker entry point for the standard one-aggregate simulation.
"""

from repro.runner.aggregate import (
    MEASUREMENT_WINDOW,
    AggregateConfig,
    AggregateOutcome,
    simulate_aggregate,
)
from repro.runner.cache import (
    CorruptEntry,
    ResultCache,
    package_fingerprint,
    scheme_fingerprint,
)
from repro.runner.faults import FaultPlan, TransientFault, corrupt_file
from repro.runner.journal import SweepJournal
from repro.runner.pool import default_jobs, run_sweep, run_tasks
from repro.runner.supervisor import (
    CellFailure,
    RetryPolicy,
    SweepError,
    SweepReport,
    SweepStats,
    run_supervised,
    session_stats,
)

__all__ = [
    "AggregateConfig",
    "AggregateOutcome",
    "CellFailure",
    "CorruptEntry",
    "FaultPlan",
    "MEASUREMENT_WINDOW",
    "ResultCache",
    "RetryPolicy",
    "SweepError",
    "SweepJournal",
    "SweepReport",
    "SweepStats",
    "TransientFault",
    "corrupt_file",
    "default_jobs",
    "package_fingerprint",
    "run_supervised",
    "run_sweep",
    "run_tasks",
    "scheme_fingerprint",
    "session_stats",
    "simulate_aggregate",
]
