"""BC-PQP: Efficient Policy-Rich Rate Enforcement with Phantom Queues.

A faithful Python reproduction of the SIGCOMM 2024 paper, including the
discrete-event network substrate, TCP congestion-control stacks, all
baseline rate limiters (shaper, policer, FairPolicer) and the paper's
contribution: phantom-queue policing (PQP) with burst control (BC-PQP).

Quick start
-----------
>>> from repro import Simulator, make_limiter, AggregateScenario, FlowSpec
>>> from repro.units import mbps, ms
>>> import random
>>> sim = Simulator()
>>> limiter = make_limiter(sim, "bcpqp", rate=mbps(10), num_queues=2,
...                        max_rtt=ms(50))
>>> scenario = AggregateScenario(
...     sim, limiter=limiter, rng=random.Random(1), horizon=5.0,
...     specs=[FlowSpec(slot=0, cc="reno", rtt=ms(20)),
...            FlowSpec(slot=1, cc="cubic", rtt=ms(40))])
>>> scenario.run()
>>> limiter.stats.forwarded_packets > 0
True
"""

from repro.classify import HashClassifier, SingleQueueClassifier, SlotClassifier
from repro.core import BCPQP, PQP, PhantomQueueSet
from repro.core.sizing import (
    bcpqp_default_buffer,
    cubic_min_bucket,
    reno_min_phantom_buffer,
    reno_steady_rate_bounds,
)
from repro.limiters import (
    FairPolicer,
    RateLimiter,
    Shaper,
    TokenBucketPolicer,
)
from repro.net import FlowId, Link, Packet, Pipe, Trace
from repro.net.middlebox import Middlebox
from repro.policy import ClassNode, Leaf, Policy
from repro.scenario import AggregateScenario, BottleneckSpec, FlowRecord
from repro.schemes import SCHEMES, make_limiter
from repro.sim import Simulator
from repro.workload import FlowSpec, OnOffSpec

__version__ = "1.0.0"

__all__ = [
    "AggregateScenario",
    "BCPQP",
    "BottleneckSpec",
    "ClassNode",
    "FairPolicer",
    "FlowId",
    "FlowRecord",
    "FlowSpec",
    "HashClassifier",
    "Leaf",
    "Link",
    "Middlebox",
    "OnOffSpec",
    "PQP",
    "Packet",
    "PhantomQueueSet",
    "Pipe",
    "Policy",
    "RateLimiter",
    "SCHEMES",
    "Shaper",
    "Simulator",
    "SingleQueueClassifier",
    "SlotClassifier",
    "TokenBucketPolicer",
    "Trace",
    "bcpqp_default_buffer",
    "cubic_min_bucket",
    "make_limiter",
    "reno_min_phantom_buffer",
    "reno_steady_rate_bounds",
    "__version__",
]
