"""Columnar in-flight measurement for fleet shards.

One :class:`FleetRecorder` replaces the *per-aggregate*
:class:`~repro.net.trace.Trace` objects a naive N-aggregate shard would
carry.  A trace materializes five columns **per packet** (a
10^4-aggregate shard would hold millions of entries just to be binned
and thrown away after the run); the recorder bins bytes *as they
arrive* into flat per-aggregate arrays — O(aggregates x bins) memory,
independent of packet count — which is what lets a single shard hold
10^4+ aggregates.

Binning semantics are byte-identical to recording a per-aggregate trace
and running :func:`~repro.metrics.throughput.aggregate_throughput_series`
afterwards: the same :func:`~repro.metrics.throughput.bin_layout`, the
same in-range check ``warmup <= t < horizon``, the same last-bin clamp,
and float accumulation in the same (arrival) order.  Pinned by
``tests/test_fleet.py``.

The recorder sits where the per-aggregate traces sat: every limiter in
the shard connects to it, it records data packets and forwards the whole
stream to the shard's shared :class:`~repro.cc.endpoint.FlowDemux`.
"""

from __future__ import annotations

from array import array

from repro.metrics.throughput import bin_layout
from repro.net.packet import Packet, PacketKind
from repro.net.sink import PacketSink, batch_capable
from repro.sim.simulator import Simulator

__all__ = ["FleetRecorder"]


class FleetRecorder:
    """Streamed per-aggregate measurement columns for one shard.

    Parameters
    ----------
    lo:
        First aggregate id hosted by this shard; row = ``aggregate - lo``.
    slot_counts:
        Flow-slot count per aggregate (row order) — sizes the ragged
        per-slot goodput column.
    """

    def __init__(
        self,
        sim: Simulator,
        sink: PacketSink,
        *,
        lo: int,
        slot_counts: list[int],
        window: float,
        warmup: float,
        horizon: float,
        name: str = "fleet-recorder",
    ) -> None:
        n = len(slot_counts)
        nbins, last_width = bin_layout(window, warmup, horizon)
        self._sim = sim
        self._sink = sink
        self._batch_sink = batch_capable(sink)
        self.name = name
        self.lo = lo
        self.window = window
        self.warmup = warmup
        self.horizon = horizon
        self.nbins = nbins
        self.last_width = last_width
        self._inv_window = 1.0 / window
        self._last_bin = nbins - 1
        self.goodput_bytes = array("d", bytes(8 * n))
        self.binned_bytes = array("d", bytes(8 * n * nbins))
        offsets = array("q", [0] * (n + 1))
        for i, count in enumerate(slot_counts):
            offsets[i + 1] = offsets[i] + count
        self.slot_offsets = offsets
        self.slot_goodput = array("d", bytes(8 * offsets[-1]))
        self.recorded_packets = 0

    def _record(self, packet: Packet, t: float) -> None:
        if not (self.warmup <= t < self.horizon):
            return
        flow = packet.flow
        row = flow.aggregate - self.lo
        size = packet.size
        index = int((t - self.warmup) * self._inv_window)
        if index > self._last_bin:
            # Same clamp as trace binning: a record one ULP below the
            # horizon (or in a trailing partial window) lands in the
            # last bin.
            index = self._last_bin
        self.binned_bytes[row * self.nbins + index] += size
        self.goodput_bytes[row] += size
        self.slot_goodput[self.slot_offsets[row] + flow.slot] += size
        self.recorded_packets += 1

    def receive(self, packet: Packet) -> None:
        if packet.is_data:
            self._record(packet, self._sim.now)
        self._sink.receive(packet)

    def receive_batch(self, packets: list[Packet]) -> None:
        """Record a same-instant batch (one timestamp read), then forward
        the whole batch downstream."""
        now = self._sim._now
        record = self._record
        for packet in packets:
            if packet.kind is PacketKind.DATA:
                record(packet, now)
        self._batch_sink.receive_batch(packets)
