"""Fleet driver: fan shards over workers, merge their summaries.

:func:`run_fleet` is the one-call entry the experiments CLI, the
benchmarks and the fuzzer's shard tier share: build the shard configs,
run them through the sweep runner (serial, plain pool, or the supervised
pool for crash isolation / journaled resume), and merge the columnar
summaries into one :class:`~repro.metrics.merge.FleetMetrics`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.fleet.shard import simulate_shard
from repro.fleet.spec import FleetSpec, ShardConfig, shard_configs
from repro.metrics.merge import (
    FleetMetrics,
    ShardSummary,
    merge_shard_summaries,
)
from repro.runner.cache import ResultCache
from repro.runner.pool import run_tasks

__all__ = ["FleetResult", "run_fleet"]


@dataclass
class FleetResult:
    """Merged metrics plus the per-shard accounting behind them."""

    spec: FleetSpec
    shards: int
    metrics: FleetMetrics
    summaries: list[ShardSummary]
    #: Parent-side elapsed seconds for the whole sweep (includes worker
    #: dispatch and the merge).
    wall_seconds: float = 0.0

    @property
    def run_seconds(self) -> float:
        """Summed in-shard simulation seconds (shard-parallelism
        independent: the CPU cost of the fleet, not its wall clock)."""
        return sum(s.run_seconds for s in self.summaries)

    @property
    def setup_seconds(self) -> float:
        """Summed in-shard topology construction seconds."""
        return sum(s.setup_seconds for s in self.summaries)

    @property
    def us_per_packet(self) -> float:
        """Summed shard run time over limiter-arrived packets, in us.

        The fleet-scale analogue of the scaling benchmark's
        seconds/packet: what one enforced packet costs in CPU time,
        regardless of how many workers the shards were spread over.
        """
        arrived = self.metrics.arrived_packets
        if arrived == 0:
            return 0.0
        return self.run_seconds / arrived * 1e6

    @property
    def peak_rss_bytes(self) -> int:
        """Largest per-shard peak RSS observed (bytes)."""
        return max((s.peak_rss_bytes for s in self.summaries), default=0)

    @property
    def total_flows(self) -> int:
        return sum(s.flows for s in self.summaries)


def run_fleet(
    spec: FleetSpec,
    *,
    shards: int,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    retries: int | None = None,
    task_timeout: float | None = None,
    journal=None,
    fail_fast: bool = False,
    isolate: bool = False,
) -> FleetResult:
    """Run ``spec`` partitioned into ``shards`` shards and merge.

    ``jobs`` fans shards over worker processes (``None``/``1`` = serial
    in-process, byte-identical to parallel).  Setting any of ``retries``
    / ``task_timeout`` / ``journal`` / ``fail_fast`` routes the sweep
    through the supervised pool: a shard that crashes its worker is
    retried in a fresh process, and journaled sweeps resume.
    ``isolate=True`` forces the supervised pool even without retry knobs
    — every shard then runs in a disposable process of its own, which
    also makes the reported per-shard peak RSS exact rather than a
    worker-lifetime high-water mark.
    """
    if isolate and retries is None:
        retries = 0
    start = time.perf_counter()
    configs = shard_configs(spec, shards)
    summaries = run_tasks(
        simulate_shard,
        configs,
        jobs=jobs,
        cache=cache,
        fingerprint=ShardConfig.code_fingerprint,
        retries=retries,
        task_timeout=task_timeout,
        journal=journal,
        fail_fast=fail_fast,
    )
    metrics = merge_shard_summaries(list(summaries))
    return FleetResult(
        spec=spec,
        shards=shards,
        metrics=metrics,
        summaries=list(summaries),
        wall_seconds=time.perf_counter() - start,
    )
