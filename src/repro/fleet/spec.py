"""Fleet specifications: per-aggregate plans, shard partitioning, seeding.

A *fleet* is a large population of independently rate-limited traffic
aggregates (the paper's ~100k-subscribers-per-machine deployment, §6).
:class:`FleetSpec` describes the whole population with a handful of
primitives plus one global seed; everything else — each aggregate's plan
rate, flow count, CC mix, RTTs, policy tree — is *derived* per aggregate
from ``(seed, aggregate_id)`` through named
:class:`~repro.sim.rng.RngFactory` streams.

That derivation rule is the root of **shard-count invariance**: an
aggregate's workload depends only on the global seed and its own id,
never on which shard simulates it or how many shards exist, so
partitioning the fleet into 1, 2 or 50 shards produces byte-identical
per-aggregate outcomes (pinned by ``tests/test_fleet.py`` and the
differential fuzzer's shard tier).

Shards partition the id space into **contiguous balanced blocks**
(:func:`shard_bounds`).  Contiguity matters beyond cache locality:
concatenating per-shard columnar summaries in shard order yields
aggregate-id order, so every floating-point reduction in the merge layer
(:mod:`repro.metrics.merge`) runs in one canonical order regardless of
the shard count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.churn import ChurnPlan, draw_plan
from repro.net.impair import ImpairmentSpec
from repro.runner.cache import fleet_fingerprint
from repro.sim.rng import RngFactory
from repro.units import mbps
from repro.workload.spec import FlowSpec

__all__ = [
    "AggregatePlan",
    "FleetSpec",
    "ShardConfig",
    "churn_plan_for",
    "plan_for",
    "shard_bounds",
    "shard_configs",
]


@dataclass(frozen=True)
class FleetSpec:
    """A whole fleet of rate-limited aggregates, described generatively.

    A frozen dataclass of primitives so it pickles across process
    boundaries and its ``repr`` is a stable cache token.  ``seed`` fully
    determines every aggregate's plan and workload.
    """

    #: Total number of aggregates (subscribers) in the fleet.
    aggregates: int
    seed: int = 1
    scheme: str = "bcpqp"
    #: Run length; on-path events stop here.
    horizon: float = 1.2
    #: Measurement starts here (bins cover ``[warmup, horizon)``).
    warmup: float = 0.2
    #: Throughput bin width (the paper's 250 ms measurement window).
    window: float = 0.25
    #: Plan rates drawn per aggregate, in Mbit/s.
    rates_mbps: tuple[float, ...] = (0.5, 1.0, 2.0)
    #: Flow slots per aggregate are drawn from ``1..max_flows``.
    max_flows: int = 2
    #: CC algorithms drawn per flow.
    ccs: tuple[str, ...] = ("reno", "cubic")
    #: Per-flow base RTT drawn uniformly from this range (seconds).
    rtt_range: tuple[float, float] = (0.01, 0.08)
    #: Flow start times drawn uniformly from ``[0, max_start]``.
    max_start: float = 0.1
    #: Phantom service discipline for pqp/bcpqp; ignored otherwise.
    phantom_service: str = "fluid"
    #: Delivery batch limit (``None`` = unbounded, ``1`` = per-packet).
    batch: int | None = None
    #: Attach the runtime invariant checker inside every shard.
    validate: bool = False
    #: Optional per-flow impairment channels.  Each flow's impairment
    #: stream derives from ``(seed, "impair", aggregate, slot)``, never
    #: from shard layout, so impaired fleets stay shard-count invariant.
    impair: ImpairmentSpec | None = None
    #: Live-reconfiguration actions per aggregate: when positive, each
    #: aggregate draws its own :class:`~repro.churn.ChurnPlan` of this
    #: many actions from the ``(seed, "churn", aggregate)`` stream — a
    #: pure function of the global seed and the aggregate id, never of
    #: shard layout, so churned fleets stay shard-count invariant.  Zero
    #: constructs no plans, no drivers and draws no randomness.
    churn_actions: int = 0

    def __post_init__(self) -> None:
        if self.aggregates < 1:
            raise ValueError("aggregates must be >= 1")
        if self.churn_actions < 0:
            raise ValueError("churn_actions must be >= 0")
        if self.max_flows < 1:
            raise ValueError("max_flows must be >= 1")
        if self.warmup < 0 or self.horizon <= self.warmup:
            raise ValueError("need 0 <= warmup < horizon")
        if self.horizon - self.warmup < self.window:
            raise ValueError("measurement extent shorter than one window")
        for name in ("rates_mbps", "ccs", "rtt_range"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    @property
    def span(self) -> float:
        """Measured extent in seconds (``horizon - warmup``)."""
        return self.horizon - self.warmup


@dataclass(frozen=True)
class AggregatePlan:
    """One aggregate's derived plan: rate, flows and policy shape.

    Pure function of ``(spec.seed, aggregate)`` — see :func:`plan_for`.
    """

    aggregate: int
    rate: float
    specs: tuple[FlowSpec, ...]
    policy_kind: str  # "fair" | "weighted"
    weights: tuple[float, ...] | None

    @property
    def num_flows(self) -> int:
        return len(self.specs)

    @property
    def max_rtt(self) -> float:
        return max(s.rtt for s in self.specs)

    def policy_key(self) -> tuple:
        """Interning key: plans with equal keys share one compiled
        :class:`~repro.policy.tree.Policy` (the tree is immutable and its
        share memo is a pure function of (active set, rate))."""
        return (self.policy_kind, self.num_flows, self.weights)


def plan_for(spec: FleetSpec, aggregate: int) -> AggregatePlan:
    """Derive aggregate ``aggregate``'s plan from the global seed.

    All randomness flows through one named stream keyed by the aggregate
    id, so the plan is identical no matter which shard (or how many
    shards) the fleet is partitioned into.
    """
    rng = RngFactory(spec.seed).stream("fleet-plan", aggregate)
    rate = mbps(rng.choice(spec.rates_mbps))
    n = rng.randint(1, spec.max_flows)
    policy_kind = "fair" if n == 1 else rng.choice(("fair", "weighted"))
    weights = None
    if policy_kind == "weighted":
        weights = tuple(float(rng.randint(1, 3)) for _ in range(n))
    lo_rtt, hi_rtt = spec.rtt_range
    specs = tuple(
        FlowSpec(
            slot=i,
            cc=rng.choice(spec.ccs),
            rtt=rng.uniform(lo_rtt, hi_rtt),
            start=rng.uniform(0.0, spec.max_start),
            weight=weights[i] if weights else 1.0,
        )
        for i in range(n)
    )
    return AggregatePlan(
        aggregate=aggregate,
        rate=rate,
        specs=specs,
        policy_kind=policy_kind,
        weights=weights,
    )


def churn_plan_for(spec: FleetSpec, plan: AggregatePlan) -> ChurnPlan | None:
    """Derive aggregate ``plan.aggregate``'s churn plan, or ``None``.

    Same derivation rule as :func:`plan_for`: one named stream keyed by
    the aggregate id, so the plan — and therefore every reconfiguration
    the aggregate's limiter undergoes — is identical no matter how the
    fleet is sharded.
    """
    if spec.churn_actions <= 0:
        return None
    rng = RngFactory(spec.seed).stream("churn", plan.aggregate)
    return draw_plan(
        rng,
        num_queues=plan.num_flows,
        rate=plan.rate,
        horizon=spec.horizon,
        actions=spec.churn_actions,
    )


def shard_bounds(aggregates: int, shards: int, index: int) -> tuple[int, int]:
    """Contiguous balanced partition: shard ``index``'s ``[lo, hi)`` ids.

    The first ``aggregates % shards`` shards hold one extra aggregate, so
    shard sizes differ by at most one and ids stay contiguous — the
    property the merge layer's canonical reduction order relies on.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if not 0 <= index < shards:
        raise ValueError(f"shard index {index} outside 0..{shards - 1}")
    if shards > aggregates:
        raise ValueError(
            f"cannot split {aggregates} aggregate(s) into {shards} shards"
        )
    base, extra = divmod(aggregates, shards)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


@dataclass(frozen=True)
class ShardConfig:
    """The unit of work a fleet sweep fans out: one shard of one fleet.

    Frozen and built of primitives, so it pickles across the process
    boundary and its ``repr`` is a stable cache token.
    """

    spec: FleetSpec
    shards: int
    index: int

    def __post_init__(self) -> None:
        shard_bounds(self.spec.aggregates, self.shards, self.index)

    @property
    def bounds(self) -> tuple[int, int]:
        """This shard's aggregate-id range ``[lo, hi)``."""
        return shard_bounds(self.spec.aggregates, self.shards, self.index)

    def code_fingerprint(self) -> str:
        """Cache fingerprint covering the scheme and fleet sources."""
        return fleet_fingerprint(
            self.spec.scheme,
            validate=self.spec.validate,
            churn=self.spec.churn_actions > 0,
        )


def shard_configs(spec: FleetSpec, shards: int) -> list[ShardConfig]:
    """The full sweep for ``spec`` partitioned into ``shards`` shards."""
    return [ShardConfig(spec=spec, shards=shards, index=i)
            for i in range(shards)]
