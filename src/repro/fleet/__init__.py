"""Sharded fleet execution: 10^5+ rate-limited aggregates per run.

The paper's deployment hosts ~100k subscriber aggregates on one machine
(§6.1).  This package scales the reproduction to that population by
partitioning a :class:`FleetSpec` into contiguous shards
(:func:`shard_bounds`), simulating each shard in its own worker process
(:func:`simulate_shard` fanned out by :func:`run_fleet`), and merging
streamed columnar summaries (:mod:`repro.metrics.merge`) without ever
materializing per-packet traces in the parent.

Per-aggregate workloads derive purely from ``(seed, aggregate_id)``
(:func:`plan_for`), which makes merged fleet metrics byte-identical for
every shard count — the invariance the tests and the differential
fuzzer's shard tier pin.
"""

from repro.fleet.recorder import FleetRecorder
from repro.fleet.run import FleetResult, run_fleet
from repro.fleet.shard import simulate_shard
from repro.fleet.spec import (
    AggregatePlan,
    FleetSpec,
    ShardConfig,
    plan_for,
    shard_bounds,
    shard_configs,
)

__all__ = [
    "AggregatePlan",
    "FleetRecorder",
    "FleetResult",
    "FleetSpec",
    "ShardConfig",
    "plan_for",
    "run_fleet",
    "shard_bounds",
    "shard_configs",
    "simulate_shard",
]
