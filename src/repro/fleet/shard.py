"""One fleet shard: build, run and summarize a block of aggregates.

:func:`simulate_shard` is the picklable worker entry the fleet sweep
fans out (directly analogous to
:func:`repro.runner.aggregate.simulate_aggregate`, one level up the
scale ladder): one :class:`~repro.fleet.spec.ShardConfig` in, one
columnar :class:`~repro.metrics.merge.ShardSummary` out.  Inside, the
shard mirrors the paper's deployment shape — a single
:class:`~repro.net.middlebox.Middlebox` hosting an independent limiter
per aggregate, with each aggregate's TCP flows wired through it — but
measurement goes through the shared columnar
:class:`~repro.fleet.recorder.FleetRecorder` instead of per-aggregate
traces, and identically-shaped policy trees are interned so 10^4
aggregates share a handful of compiled :class:`~repro.policy.tree.Policy`
objects instead of carrying one tree each.
"""

from __future__ import annotations

import resource
import time
from array import array

from repro.cc.endpoint import FlowDemux
from repro.churn import ChurnDriver
from repro.fleet.recorder import FleetRecorder
from repro.fleet.spec import AggregatePlan, ShardConfig, churn_plan_for, plan_for
from repro.limiters.costs import Op
from repro.metrics.merge import ShardSummary
from repro.net.middlebox import Middlebox
from repro.net.packet import FlowId
from repro.policy.tree import Policy
from repro.schemes import make_limiter
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator
from repro.wiring import wire_flow

__all__ = ["simulate_shard"]

_OPS = tuple(Op)


def _interned_policy(plan: AggregatePlan, cache: dict) -> Policy:
    """One compiled policy tree per distinct plan shape.

    Safe to share: the tree is immutable after compilation and its share
    memo is a pure function of (active set, rate), so co-hosted limiters
    reading through one instance stay byte-identical to private copies.
    """
    key = plan.policy_key()
    policy = cache.get(key)
    if policy is None:
        if plan.policy_kind == "weighted":
            policy = Policy.weighted(list(plan.weights))
        else:
            policy = Policy.fair(plan.num_flows)
        cache[key] = policy
    return policy


def simulate_shard(config: ShardConfig) -> ShardSummary:
    """Worker entry point: simulate one shard and summarize it."""
    spec = config.spec
    lo, hi = config.bounds
    n = hi - lo
    setup_start = time.perf_counter()
    cpu_start = time.process_time()

    checker = None
    if spec.validate:
        # Imported lazily so unvalidated fleets never load the checker.
        from repro.validate import InvariantChecker

        checker = InvariantChecker()
    sim = Simulator(validate=checker, batch_limit=spec.batch)
    box = Middlebox(sim, name=f"fleet-shard-{config.index}")
    demux = FlowDemux()

    plans = [plan_for(spec, aggregate) for aggregate in range(lo, hi)]
    recorder = FleetRecorder(
        sim,
        demux,
        lo=lo,
        slot_counts=[plan.num_flows for plan in plans],
        window=spec.window,
        warmup=spec.warmup,
        horizon=spec.horizon,
        name=f"fleet-recorder-{config.index}",
    )

    policies: dict = {}
    limiters = []
    drivers = []
    flows = 0
    # Impairment streams are keyed by (aggregate, slot) off the global
    # seed — like plan_for's derivation, independent of shard layout, so
    # impaired fleets stay shard-count invariant.
    impair = spec.impair if spec.impair and spec.impair.flow_enabled else None
    impair_streams = RngFactory(spec.seed) if impair is not None else None
    for plan in plans:
        limiter = make_limiter(
            sim,
            spec.scheme,
            rate=plan.rate,
            num_queues=plan.num_flows,
            max_rtt=plan.max_rtt,
            policy=_interned_policy(plan, policies),
            phantom_service=spec.phantom_service,
            name=f"{spec.scheme}-{plan.aggregate}",
        )
        limiter.connect(recorder)
        box.add_aggregate(plan.aggregate, limiter)
        limiters.append(limiter)
        churn_plan = churn_plan_for(spec, plan)
        if churn_plan is not None and churn_plan.enabled:
            # Churn swaps whole Policy objects at commit (staged updates
            # build fresh trees), so the interned, shared policies above
            # are never mutated under a co-hosted limiter.
            drivers.append(ChurnDriver(sim, limiter, churn_plan))
        for flow_spec in plan.specs:
            wire_flow(
                sim,
                FlowId(plan.aggregate, flow_spec.slot, 0),
                cc=flow_spec.cc,
                rtt=flow_spec.rtt,
                ingress=box,
                demux=demux,
                packets=None,
                start=flow_spec.start,
                impair=impair,
                impair_rng=(
                    impair_streams.stream(
                        "impair", plan.aggregate, flow_spec.slot
                    )
                    if impair_streams is not None
                    else None
                ),
            )
            flows += 1

    run_start = time.perf_counter()
    sim.run(until=spec.horizon)
    run_seconds = time.perf_counter() - run_start
    if checker is not None:
        checker.finalize()

    rates = array("d", (plan.rate for plan in plans))
    arrived = array("q", bytes(8 * n))
    forwarded = array("q", bytes(8 * n))
    dropped = array("q", bytes(8 * n))
    forwarded_bytes = array("q", bytes(8 * n))
    dropped_bytes = array("q", bytes(8 * n))
    cycles = array("d", bytes(8 * n))
    op_counts = array("d", bytes(8 * n * len(_OPS)))
    for row, limiter in enumerate(limiters):
        stats = limiter.stats
        arrived[row] = stats.arrived_packets
        forwarded[row] = stats.forwarded_packets
        dropped[row] = stats.dropped_packets
        forwarded_bytes[row] = stats.forwarded_bytes
        dropped_bytes[row] = stats.dropped_bytes
        meter = limiter.cost
        cycles[row] = meter.cycles()
        base = row * len(_OPS)
        for k, op in enumerate(_OPS):
            op_counts[base + k] = meter.count(op)

    return ShardSummary(
        shard=config.index,
        shards=config.shards,
        lo=lo,
        hi=hi,
        scheme=spec.scheme,
        window=spec.window,
        warmup=spec.warmup,
        horizon=spec.horizon,
        nbins=recorder.nbins,
        rates=rates,
        goodput_bytes=recorder.goodput_bytes,
        binned_bytes=recorder.binned_bytes,
        slot_offsets=recorder.slot_offsets,
        slot_goodput=recorder.slot_goodput,
        arrived_packets=arrived,
        forwarded_packets=forwarded,
        dropped_packets=dropped,
        forwarded_bytes=forwarded_bytes,
        dropped_bytes=dropped_bytes,
        modeled_cycles=cycles,
        op_counts=op_counts,
        setup_seconds=run_start - setup_start,
        run_seconds=run_seconds,
        cpu_seconds=time.process_time() - cpu_start,
        peak_rss_bytes=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        * 1024,
        events_processed=sim.events_processed,
        heap_pushes=sim.heap_pushes,
        flows=flows,
        updates_applied=sum(d.applied for d in drivers),
        updates_rejected=sum(d.rejected for d in drivers),
    )
