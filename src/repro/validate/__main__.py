"""CLI for the cross-engine differential fuzzer.

Examples
--------
Run the standard corpus (the CI acceptance gate)::

    python -m repro.validate --fuzz 200 --seed 1

Fan out over worker processes::

    python -m repro.validate --fuzz 200 --seed 1 --jobs 8

Re-run one generated case, or an explicit (minimized) repro::

    python -m repro.validate --index 17 --seed 1
    python -m repro.validate --case '{"index":17,...}'
"""

from __future__ import annotations

import argparse
import sys

from repro.validate.fuzz import (
    CaseReport,
    FuzzCase,
    fuzz,
    generate_case,
    minimize,
    run_case,
)


def _report_failure(report: CaseReport, *, shrink: bool = True) -> None:
    case = report.case
    print(f"case {case.index} FAILED:")
    for message in report.violations:
        print(f"  violation: {message}")
    for message in report.divergences:
        print(f"  divergence: {message}")
    repro = minimize(case) if shrink else case
    print(f"  repro: python -m repro.validate --case '{repro.to_json()}'")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Invariant-checked cross-engine differential fuzzing.",
    )
    parser.add_argument(
        "--fuzz", type=int, metavar="N", help="run cases 0..N-1"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="corpus root seed (default 1)"
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes for --fuzz (default: in-process)",
    )
    parser.add_argument(
        "--index", type=int, default=None,
        help="run only generated case INDEX",
    )
    parser.add_argument(
        "--case", type=str, default=None,
        help="run one explicit case from its JSON repro line",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failing cases without minimizing them",
    )
    args = parser.parse_args(argv)

    if args.case is not None:
        report = run_case(FuzzCase.from_json(args.case))
    elif args.index is not None:
        report = run_case(generate_case(args.seed, args.index))
    elif args.fuzz is not None:
        if args.fuzz <= 0:
            parser.error("--fuzz needs a positive case count")
        failures, simulations = fuzz(args.fuzz, args.seed, jobs=args.jobs)
        for failing in failures:
            _report_failure(failing, shrink=not args.no_shrink)
        violations = sum(len(f.violations) for f in failures)
        divergences = sum(len(f.divergences) for f in failures)
        print(
            f"fuzz: {args.fuzz} cases, {simulations} simulations, "
            f"{violations} violations, {divergences} divergences"
        )
        return 1 if failures else 0
    else:
        parser.error("nothing to do: pass --fuzz N, --index I or --case JSON")
        return 2  # pragma: no cover - parser.error raises

    if report.failed:
        _report_failure(report, shrink=not args.no_shrink)
        return 1
    print(
        f"case {report.case.index} OK: {report.simulations} simulations, "
        "0 violations, 0 divergences"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
