"""CLI for the cross-engine differential fuzzer.

Examples
--------
Run the standard corpus (the CI acceptance gate)::

    python -m repro.validate --fuzz 200 --seed 1

Fan out over worker processes::

    python -m repro.validate --fuzz 200 --seed 1 --jobs 8

Re-run one generated case, or an explicit (minimized) repro::

    python -m repro.validate --index 17 --seed 1
    python -m repro.validate --case '{"index":17,...}'
"""

from __future__ import annotations

import argparse
import sys

from repro.validate.fuzz import (
    CaseReport,
    FuzzCase,
    fuzz,
    generate_case,
    minimize,
    run_case,
    run_case_supervised,
)


def _report_failure(
    report: CaseReport,
    *,
    shrink: bool = True,
    task_timeout: float | None = None,
) -> None:
    case = report.case
    print(f"case {case.index} FAILED:")
    for message in report.violations:
        print(f"  violation: {message}")
    for message in report.divergences:
        print(f"  divergence: {message}")
    if report.crash:
        print(f"  crash: {report.crash}")
    if shrink and report.crash:
        # A crashing case would take the minimizer down with it; shrink
        # each candidate in a disposable supervised worker instead.
        repro = minimize(
            case,
            runner=lambda c: run_case_supervised(c, task_timeout=task_timeout),
        )
    elif shrink:
        repro = minimize(case)
    else:
        repro = case
    print(f"  repro: python -m repro.validate --case '{repro.to_json()}'")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Invariant-checked cross-engine differential fuzzing.",
    )
    parser.add_argument(
        "--fuzz", type=int, metavar="N", help="run cases 0..N-1"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="corpus root seed (default 1)"
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes for --fuzz (default: in-process); with "
        "workers, cases run under the supervised pool — a crashing case "
        "becomes a reported finding instead of killing the campaign",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="supervised-pool retries per case before a crash/hang is "
        "reported as a finding (default 1; --jobs only)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock limit per case; a hung case is killed and "
        "reported as a finding (--jobs only)",
    )
    parser.add_argument(
        "--impair", action="store_true",
        help="draw impairment channels (loss/jitter/reorder/corrupt) per "
        "case; the impaired corpus shares scenario bodies with the clean "
        "corpus at equal (seed, index)",
    )
    parser.add_argument(
        "--churn", action="store_true",
        help="draw a live-reconfiguration plan (rate/weight/priority "
        "changes, queue resizes) per case, exercising the epoch-seam "
        "migration paths; the churned corpus shares scenario bodies with "
        "the churn-free corpus at equal (seed, index)",
    )
    parser.add_argument(
        "--index", type=int, default=None,
        help="run only generated case INDEX",
    )
    parser.add_argument(
        "--case", type=str, default=None,
        help="run one explicit case from its JSON repro line",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failing cases without minimizing them",
    )
    args = parser.parse_args(argv)

    if args.case is not None:
        report = run_case(FuzzCase.from_json(args.case))
    elif args.index is not None:
        report = run_case(
            generate_case(
                args.seed, args.index, impair=args.impair, churn=args.churn
            )
        )
    elif args.fuzz is not None:
        if args.fuzz <= 0:
            parser.error("--fuzz needs a positive case count")
        failures, simulations = fuzz(
            args.fuzz,
            args.seed,
            jobs=args.jobs,
            retries=args.retries,
            task_timeout=args.task_timeout,
            impair=args.impair,
            churn=args.churn,
        )
        for failing in failures:
            _report_failure(
                failing,
                shrink=not args.no_shrink,
                task_timeout=args.task_timeout,
            )
        violations = sum(len(f.violations) for f in failures)
        divergences = sum(len(f.divergences) for f in failures)
        crashes = sum(1 for f in failures if f.crash)
        print(
            f"fuzz: {args.fuzz} cases, {simulations} simulations, "
            f"{violations} violations, {divergences} divergences, "
            f"{crashes} crashes"
        )
        return 1 if failures else 0
    else:
        parser.error("nothing to do: pass --fuzz N, --index I or --case JSON")
        return 2  # pragma: no cover - parser.error raises

    if report.failed:
        _report_failure(report, shrink=not args.no_shrink)
        return 1
    print(
        f"case {report.case.index} OK: {report.simulations} simulations, "
        "0 violations, 0 divergences"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
