"""Runtime validation: in-simulator invariant checking and fuzzing.

``InvariantChecker`` is a pluggable observer the simulation components
(limiters, TCP senders, middleboxes) report into; it asserts the paper's
mechanism invariants (§3 sizing/occupancy, §4 window accounting, §6.2
cost accounting) while a run executes.  It is off by default and attaches
by wrapping instance-level bound methods, so the disabled path has
literally zero per-packet overhead.

``python -m repro.validate --fuzz N --seed S`` runs the cross-engine
differential fuzzer: seeded random scenarios executed under the phantom
schemes x {fluid, fluid-ref, quantum} service disciplines, diffing drop
decisions, drained bytes, magic fills/reclaims and goodput.
"""

from repro.validate.checker import InvariantChecker, InvariantViolation

__all__ = ["InvariantChecker", "InvariantViolation"]
