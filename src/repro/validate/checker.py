"""In-simulator invariant checking.

The checker is a passive observer: components self-register at
construction (``Simulator(validate=checker)`` makes ``sim.validator``
non-None, and each limiter / TCP sender / middlebox ``__init__`` calls
the matching ``attach_*``).  Attachment wraps *instance-level* bound
methods (``receive``, BC-PQP's ``_on_window_sweep``, the phantom set's
enqueue/fill/reclaim), so:

* with validation off nothing is wrapped and the hot path is untouched —
  the disabled cost is exactly one ``getattr`` per component construction;
* with validation on, every probe goes through pure-read accessors
  (:meth:`PhantomQueueSet.peek_length`, ``raw_magic``,
  ``gps_virtual_times``) that never settle lazy drain state, so a
  validated run stays **bit-identical** to an unvalidated one.

Enforced invariants (paper anchors in parentheses):

* byte/packet conservation per limiter: arrived = forwarded + dropped
  (+ backlog and the in-service packet, for the shaper);
* ``per_queue_drops`` sums to the total drop count;
* token buckets: ``0 <= tokens <= B`` (§2.2), FairPolicer per-flow
  buckets and spare pool within ``[0, B]``;
* phantom occupancy: ``0 <= length_i <= capacity_i`` and magic
  watermarks never negative (§3.1, §3.5 sizing);
* phantom byte ledger: bytes in - reclaims - drained - evicted = total
  occupancy, within a crumb tolerance scaled by drain-piece count (§3.1
  lazy batched dequeues; the evicted leg accounts bytes removed by live
  reconfigurations — see ``repro.churn``);
* epoch boundaries (live policy churn): the mutation epoch and
  ``evicted_bytes`` are monotone, occupancy respects the *new*
  capacities immediately after a commit (the seam check runs inside the
  wrapped ``reconfigure``), GPS virtual-time baselines are re-seeded
  across engine rebuilds, no phantom event ever targets a queue outside
  the current queue count (removed-queue events never fire), the
  policy's share/flat caches hold no key from a stale tree version, and
  BC-PQP's window arrays are re-sized and freshly started at the seam;
* ``drained_bytes`` / ``drain_recomputes`` monotone non-decreasing and
  GPS virtual times monotone per (node, priority) group (§3.2 fluid
  idealization);
* BC-PQP window accounting: accepted <= arrived per window, and the
  window a packet just arrived into is younger than the period (§4
  thresholds / tumbling windows);
* TCP senders: ``snd_una <= snd_nxt``, non-negative scoreboard pipe,
  cwnd and ssthresh >= 1 MSS, RTO clamped to ``[_MIN_RTO, _MAX_RTO]``;
* middlebox dispatch conservation (assumes limiters receive traffic
  only through their middlebox);
* modeled op counts (§6.2 cost model) never negative;
* event-engine accounting: raw heap length equals live events plus the
  cancelled backlog, all engine counters non-negative, and the
  backlog / heap high-water marks never below their current values
  (``Simulator(validate=checker)`` self-registers the simulator);
* packet free lists (at finalize): pools within their size bounds, no
  object pooled twice, every pooled packet's ``_in_pool`` latch set and
  its kind matching its pool — the invariant the impairment drop points
  (gates, drop-tail buffers, corrupt discards) must preserve while
  recycling at arbitrary interleavings.
"""

from __future__ import annotations

from typing import Any

from repro.cc import endpoint as _endpoint
from repro.core.bcpqp import BCPQP
from repro.core.pqp import PQP
from repro.limiters.fair_policer import FairPolicer
from repro.limiters.shaper import Shaper
from repro.limiters.token_bucket import TokenBucketPolicer

#: Absolute float slack for single-value comparisons (bytes / tokens).
_EPS = 1e-6
#: Relative slack factor for capacity-scaled bounds.
_REL = 1e-9


class InvariantViolation(AssertionError):
    """An enforced simulation invariant did not hold."""


class InvariantChecker:
    """Collects (or raises on) invariant violations during a run.

    Parameters
    ----------
    fail_fast:
        When True (default) the first violation raises
        :class:`InvariantViolation` at the exact event that broke the
        invariant — the most useful behaviour under a debugger.  When
        False, violations accumulate in :attr:`violations` and the run
        continues (the fuzzer's mode: one scenario can report several).
    """

    def __init__(self, *, fail_fast: bool = True) -> None:
        self.fail_fast = fail_fast
        #: Human-readable description of every violation seen.
        self.violations: list[str] = []
        #: Number of individual invariant evaluations performed.
        self.checks = 0
        self._limiters: list[tuple[Any, dict[str, Any]]] = []
        self._senders: list[Any] = []
        self._middleboxes: list[tuple[Any, dict[str, Any]]] = []
        self._simulators: list[Any] = []

    # ------------------------------------------------------------------
    # Attachment (called from component __init__)
    # ------------------------------------------------------------------

    def attach_limiter(self, limiter: Any) -> None:
        """Wrap ``limiter`` for per-packet checking.

        Called from ``RateLimiter.__init__`` — subclass attributes do not
        exist yet, so everything type-specific is deferred to the first
        wrapped call.  The BC-PQP sweep must be wrapped *now*, before the
        subclass ``__init__`` schedules ``self._on_window_sweep`` (the
        timer captures the instance attribute, i.e. our wrapper).
        """
        state: dict[str, Any] = {"ready": False}
        self._limiters.append((limiter, state))

        original_receive = limiter.receive

        def wrapped_receive(packet: Any) -> None:
            if not state["ready"]:
                self._init_limiter(limiter, state)
            original_receive(packet)
            self._check_limiter(limiter, state, packet)

        limiter.receive = wrapped_receive

        def wrapped_receive_batch(packets: Any) -> None:
            # Instance attribute shadows the fused class-level batch
            # path, so a validated run takes the per-packet wrapped
            # route — every per-packet invariant still fires, and the
            # validated run stays bit-identical to batch=1 (the fused
            # paths are proven equivalent separately, by the equivalence
            # pins and the differential fuzzer).
            stats = limiter.stats
            arrived_packets = stats.arrived_packets
            arrived_bytes = stats.arrived_bytes
            batch_bytes = 0
            for packet in packets:
                batch_bytes += packet.size
                wrapped_receive(packet)
            # Batch-aware invariants: the whole batch (and nothing else)
            # was accounted across this deliver_batch() hand-off...
            self._ensure(
                stats.arrived_packets - arrived_packets == len(packets),
                f"{limiter.name}: batch packet accounting broken: "
                f"{stats.arrived_packets - arrived_packets} arrivals "
                f"recorded for a {len(packets)}-packet batch",
            )
            self._ensure(
                stats.arrived_bytes - arrived_bytes == batch_bytes,
                f"{limiter.name}: batch byte accounting broken: "
                f"{stats.arrived_bytes - arrived_bytes} bytes recorded "
                f"for a {batch_bytes}-byte batch",
            )
            # ... and the engine's live/cancelled tiling of the heap
            # still holds *mid-drain*, while the delivery event that
            # carried this batch is popped but its successors are not
            # yet re-armed.
            sim = getattr(limiter, "_sim", None)
            if sim is not None and sim in self._simulators:
                self._check_simulator(sim)

        limiter.receive_batch = wrapped_receive_batch

        original_apply = limiter.apply_update

        def wrapped_apply(update: Any) -> None:
            # Epoch-seam probe: run the full limiter check at the exact
            # commit instant — after state migration, before any further
            # event — so "occupancy <= the new capacities immediately
            # after a resize" is asserted at the seam itself, not at the
            # next packet.  A rejected update raises before the probe;
            # the staging contract guarantees it mutated nothing, and the
            # next regular check re-verifies that.
            if not state["ready"]:
                self._init_limiter(limiter, state)
            original_apply(update)
            self._check_limiter(limiter, state, None)

        limiter.apply_update = wrapped_apply

        sweep = getattr(type(limiter), "_on_window_sweep", None)
        if sweep is not None:
            original_sweep = sweep.__get__(limiter)

            def wrapped_sweep() -> None:
                if not state["ready"]:
                    self._init_limiter(limiter, state)
                original_sweep()
                self._check_limiter(limiter, state, None)
                self._check_post_sweep(limiter)

            limiter._on_window_sweep = wrapped_sweep

    def attach_simulator(self, sim: Any) -> None:
        """Register the simulator itself for engine-counter probing.

        Called from ``Simulator.__init__`` when constructed with
        ``validate=``.  Nothing is wrapped — the engine counters are
        plain attributes — so the event loop stays untouched; the probes
        run piggybacked on every limiter check and once at finalize.
        """
        self._simulators.append(sim)

    def attach_sender(self, sender: Any) -> None:
        """Wrap a TCP sender's ACK entry point for per-ACK checking."""
        self._senders.append(sender)
        original_receive = sender.receive

        def wrapped_receive(packet: Any) -> None:
            original_receive(packet)
            self._check_sender(sender)

        sender.receive = wrapped_receive

        def wrapped_receive_batch(packets: Any) -> None:
            for packet in packets:
                wrapped_receive(packet)

        sender.receive_batch = wrapped_receive_batch

    def attach_middlebox(self, middlebox: Any) -> None:
        """Wrap dispatch accounting.  Assumes registered limiters receive
        traffic only through this middlebox (the repo's wiring)."""
        state: dict[str, Any] = {
            "packets": 0,
            "bytes": 0,
            "unmatched_bytes": 0,
            "baselines": {},
        }
        self._middleboxes.append((middlebox, state))

        original_add = middlebox.add_aggregate

        def wrapped_add(aggregate: int, limiter: Any) -> None:
            original_add(aggregate, limiter)
            state["baselines"][aggregate] = (
                limiter,
                limiter.stats.arrived_packets,
                limiter.stats.arrived_bytes,
            )

        middlebox.add_aggregate = wrapped_add

        original_receive = middlebox.receive

        def wrapped_receive(packet: Any) -> None:
            state["packets"] += 1
            state["bytes"] += packet.size
            if packet.flow.aggregate not in middlebox._limiters:
                state["unmatched_bytes"] += packet.size
            original_receive(packet)
            self._check_middlebox(middlebox, state)

        middlebox.receive = wrapped_receive

        def wrapped_receive_batch(packets: Any) -> None:
            for packet in packets:
                wrapped_receive(packet)

        middlebox.receive_batch = wrapped_receive_batch

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _fail(self, message: str) -> None:
        self.violations.append(message)
        if self.fail_fast:
            raise InvariantViolation(message)

    def _ensure(self, condition: bool, message: str) -> None:
        self.checks += 1
        if not condition:
            self._fail(message)

    def finalize(self, *, traces: tuple[Any, ...] = ()) -> None:
        """Run end-of-simulation checks.

        Re-checks every attached component once more and flags empty
        receiver traces (a run whose receiver saw nothing almost always
        means mis-wired topology, not a quiet workload).
        """
        for limiter, state in self._limiters:
            if state["ready"]:
                self._check_limiter(limiter, state, None)
        for sender in self._senders:
            self._check_sender(sender)
        for middlebox, state in self._middleboxes:
            self._check_middlebox(middlebox, state)
        for sim in self._simulators:
            self._check_simulator(sim)
        for trace in traces:
            self._ensure(
                len(trace.times) > 0,
                f"trace {getattr(trace, 'name', '?')!r}: no records at end "
                "of run (empty receiver trace)",
            )
        self._check_packet_pools()

    def _check_packet_pools(self) -> None:
        """Free-list integrity: every drop point that recycles must leave
        the pools bounded, duplicate-free and correctly latched."""
        from repro.net.packet import Packet, PacketKind

        for label, pool, limit, kind in (
            ("ack", Packet._ack_pool, Packet._ACK_POOL_MAX, PacketKind.ACK),
            ("data", Packet._data_pool, Packet._DATA_POOL_MAX,
             PacketKind.DATA),
        ):
            self._ensure(
                len(pool) <= limit,
                f"packet pool {label}: {len(pool)} entries exceed the "
                f"{limit} bound",
            )
            self._ensure(
                len({id(p) for p in pool}) == len(pool),
                f"packet pool {label}: duplicate object pooled "
                "(double recycle slipped past the latch)",
            )
            for packet in pool:
                if not packet._in_pool:
                    self._fail(
                        f"packet pool {label}: pooled packet "
                        f"uid={packet.uid} has _in_pool unset"
                    )
                    break
                if packet.kind is not kind:
                    self._fail(
                        f"packet pool {label}: pooled packet "
                        f"uid={packet.uid} has kind {packet.kind}"
                    )
                    break
            else:
                self.checks += 2


    # ------------------------------------------------------------------
    # Limiter checks
    # ------------------------------------------------------------------

    def _init_limiter(self, limiter: Any, state: dict[str, Any]) -> None:
        """Type-specific setup, deferred to the first wrapped call so the
        subclass ``__init__`` has finished."""
        state["ready"] = True
        if isinstance(limiter, PQP):
            queues = limiter.queues
            name = limiter.name
            state["ledger_in"] = 0.0
            state["ledger_reclaimed"] = 0.0
            state["drained_base"] = queues.drained_bytes
            state["evicted_base"] = queues.evicted_bytes
            state["recompute_base"] = queues.drain_recomputes
            state["prev_drained"] = queues.drained_bytes
            state["prev_evicted"] = queues.evicted_bytes
            state["prev_epoch"] = queues.epoch
            state["prev_recomputes"] = queues.drain_recomputes
            state["prev_vtimes"] = queues.gps_virtual_times()

            def check_queue(queue: int) -> None:
                # Removed-queue events must never fire: after a shrink,
                # nothing may enqueue/fill/reclaim past the new count.
                self._ensure(
                    0 <= queue < queues.num_queues,
                    f"{name}: phantom event on queue {queue} outside the "
                    f"current {queues.num_queues}-queue set "
                    "(removed-queue event fired after reconfiguration)",
                )

            original_enqueue = queues.try_enqueue

            def wrapped_enqueue(queue: int, size: float) -> bool:
                check_queue(queue)
                accepted = original_enqueue(queue, size)
                if accepted:
                    state["ledger_in"] += size
                return accepted

            queues.try_enqueue = wrapped_enqueue

            original_fill = queues.fill_with_magic

            def wrapped_fill(queue: int) -> float:
                check_queue(queue)
                added = original_fill(queue)
                state["ledger_in"] += added
                return added

            queues.fill_with_magic = wrapped_fill

            original_reclaim = queues.reclaim_magic

            def wrapped_reclaim(queue: int) -> float:
                check_queue(queue)
                reclaimed = original_reclaim(queue)
                state["ledger_reclaimed"] += reclaimed
                return reclaimed

            queues.reclaim_magic = wrapped_reclaim

    def _check_simulator(self, sim: Any) -> None:
        """Engine-counter probes (satellite of the event-engine overhaul):
        the live/cancelled split introduced for ``Simulator.pending`` must
        always tile the raw heap exactly."""
        self._ensure(
            sim.pending >= 0,
            f"simulator: negative live-event count {sim.pending}",
        )
        self._ensure(
            sim.cancelled_backlog >= 0,
            f"simulator: negative cancelled backlog {sim.cancelled_backlog}",
        )
        self._ensure(
            sim.heap_size == sim.pending + sim.cancelled_backlog,
            f"simulator: heap accounting broken: heap_size={sim.heap_size}"
            f" != pending={sim.pending} + "
            f"cancelled_backlog={sim.cancelled_backlog}",
        )
        self._ensure(
            sim.cancelled_backlog_hwm >= sim.cancelled_backlog,
            f"simulator: backlog HWM {sim.cancelled_backlog_hwm} below "
            f"current backlog {sim.cancelled_backlog}",
        )
        self._ensure(
            sim.peak_heap_size >= sim.heap_size,
            f"simulator: peak heap {sim.peak_heap_size} below current "
            f"heap size {sim.heap_size}",
        )

    def _check_limiter(
        self, limiter: Any, state: dict[str, Any], packet: Any
    ) -> None:
        sim = getattr(limiter, "_sim", None)
        if sim is not None and sim in self._simulators:
            self._check_simulator(sim)
        stats = limiter.stats
        name = limiter.name

        self._ensure(
            sum(stats.per_queue_drops.values()) == stats.dropped_packets,
            f"{name}: per_queue_drops sums to "
            f"{sum(stats.per_queue_drops.values())}, not "
            f"dropped_packets={stats.dropped_packets}",
        )
        for op, count in limiter.cost.snapshot().items():
            self._ensure(
                count >= 0,
                f"{name}: negative op count {op}={count}",
            )

        if isinstance(limiter, Shaper):
            self._check_shaper(limiter)
        else:
            # Policers never buffer: conservation is exact, in packets
            # and in bytes.
            self._ensure(
                stats.arrived_packets
                == stats.forwarded_packets + stats.dropped_packets,
                f"{name}: packet conservation broken: arrived="
                f"{stats.arrived_packets} != forwarded="
                f"{stats.forwarded_packets} + dropped={stats.dropped_packets}",
            )
            self._ensure(
                stats.arrived_bytes
                == stats.forwarded_bytes + stats.dropped_bytes,
                f"{name}: byte conservation broken: arrived="
                f"{stats.arrived_bytes} != forwarded={stats.forwarded_bytes}"
                f" + dropped={stats.dropped_bytes}",
            )

        if isinstance(limiter, TokenBucketPolicer):
            tokens = limiter._tokens
            self._ensure(
                -_EPS <= tokens <= limiter._bucket + _EPS,
                f"{name}: tokens {tokens!r} outside "
                f"[0, {limiter._bucket!r}]",
            )
        elif isinstance(limiter, FairPolicer):
            bucket = limiter._bucket
            for i, flow_tokens in enumerate(limiter._flow_tokens):
                self._ensure(
                    -_EPS <= flow_tokens <= bucket + _EPS,
                    f"{name}: flow {i} tokens {flow_tokens!r} outside "
                    f"[0, {bucket!r}]",
                )
            self._ensure(
                -_EPS <= limiter._spare <= bucket + _EPS,
                f"{name}: spare {limiter._spare!r} outside [0, {bucket!r}]",
            )
        elif isinstance(limiter, PQP):
            self._check_phantom(limiter, state)
            if isinstance(limiter, BCPQP):
                self._check_bcpqp(limiter, packet)

    def _check_shaper(self, shaper: Shaper) -> None:
        stats = shaper.stats
        buffered = sum(len(q) for q in shaper._queues)
        in_service = 1 if shaper._busy else 0
        self._ensure(
            stats.arrived_packets
            == stats.forwarded_packets
            + stats.dropped_packets
            + buffered
            + in_service,
            f"{shaper.name}: packet conservation broken: arrived="
            f"{stats.arrived_packets}, forwarded={stats.forwarded_packets},"
            f" dropped={stats.dropped_packets}, buffered={buffered},"
            f" in_service={in_service}",
        )
        # The in-service packet's bytes are in neither the backlog nor the
        # forwarded count while it serializes, so the byte slack is one
        # packet at most (zero when idle).
        slack = (
            stats.arrived_bytes
            - stats.forwarded_bytes
            - stats.dropped_bytes
            - shaper.backlog_bytes()
        )
        self._ensure(
            slack >= -_EPS and (shaper._busy or slack <= _EPS),
            f"{shaper.name}: byte conservation broken: unaccounted "
            f"slack {slack!r} (busy={shaper._busy})",
        )

    def _check_phantom(self, limiter: PQP, state: dict[str, Any]) -> None:
        queues = limiter.queues
        name = limiter.name
        total_peeked = 0.0
        for qi in range(queues.num_queues):
            length = queues.peek_length(qi)
            capacity = queues.capacity(qi)
            self._ensure(
                -_EPS <= length <= capacity + _EPS + _REL * capacity,
                f"{name}: phantom queue {qi} occupancy {length!r} outside "
                f"[0, capacity={capacity!r}]",
            )
            self._ensure(
                queues.raw_magic(qi) >= 0.0,
                f"{name}: phantom queue {qi} magic watermark "
                f"{queues.raw_magic(qi)!r} negative",
            )
            total_peeked += length

        drained = queues.drained_bytes - state["drained_base"]
        evicted = queues.evicted_bytes - state["evicted_base"]
        recomputes = queues.drain_recomputes - state["recompute_base"]
        # Lazy engines shed sub-epsilon "crumbs" when a queue empties
        # (fluid additionally zeroes them without crediting drained_bytes),
        # so conservation holds to a tolerance scaled by how many linear
        # pieces / phantom dequeues have run.
        tolerance = _EPS * (recomputes + 10) + _REL * state["ledger_in"]
        ledger_total = (
            state["ledger_in"] - state["ledger_reclaimed"] - drained - evicted
        )
        running_total = queues.total_length()
        self._ensure(
            abs(ledger_total - running_total) <= tolerance,
            f"{name}: phantom ledger broken: in={state['ledger_in']!r} - "
            f"reclaimed={state['ledger_reclaimed']!r} - drained={drained!r}"
            f" - evicted={evicted!r} = {ledger_total!r}, but "
            f"total_length()={running_total!r} (tolerance {tolerance!r})",
        )
        self._ensure(
            abs(running_total - total_peeked) <= tolerance,
            f"{name}: total_length()={running_total!r} disagrees with "
            f"sum of per-queue occupancies {total_peeked!r} "
            f"(tolerance {tolerance!r})",
        )
        self._ensure(
            queues.drained_bytes >= state["prev_drained"],
            f"{name}: drained_bytes went backwards: "
            f"{queues.drained_bytes!r} < {state['prev_drained']!r}",
        )
        self._ensure(
            queues.drain_recomputes >= state["prev_recomputes"],
            f"{name}: drain_recomputes went backwards: "
            f"{queues.drain_recomputes} < {state['prev_recomputes']}",
        )
        self._ensure(
            queues.evicted_bytes >= state["prev_evicted"] - _EPS,
            f"{name}: evicted_bytes went backwards: "
            f"{queues.evicted_bytes!r} < {state['prev_evicted']!r}",
        )
        self._ensure(
            queues.epoch >= state["prev_epoch"],
            f"{name}: mutation epoch went backwards: "
            f"{queues.epoch} < {state['prev_epoch']}",
        )
        epoch_changed = queues.epoch != state["prev_epoch"]
        state["prev_drained"] = queues.drained_bytes
        state["prev_evicted"] = queues.evicted_bytes
        state["prev_epoch"] = queues.epoch
        state["prev_recomputes"] = queues.drain_recomputes

        # No stale-mask cache hits: every memo key must carry the live
        # tree version (``Policy.invalidate`` bumps it and clears both
        # caches; a key from an older version means some path computed
        # shares against a replaced tree).
        policy = queues.policy
        version = policy.version
        stale = [k for k in policy._share_cache if k[0] != version] + [
            k for k in policy._flat_cache if k[0] != version
        ]
        self._ensure(
            not stale,
            f"{name}: stale policy memo keys {stale[:4]!r} survive at "
            f"tree version {version} (cache not invalidated)",
        )

        virtual_times = queues.gps_virtual_times()
        if virtual_times is not None:
            previous = state["prev_vtimes"]
            if epoch_changed or previous is None:
                # A committed reconfiguration rebuilds the GPS engine:
                # group count and virtual clocks re-seed, so monotonicity
                # restarts from the fresh baseline.
                state["prev_vtimes"] = virtual_times
            else:
                for gi, (v_now, v_prev) in enumerate(
                    zip(virtual_times, previous)
                ):
                    self._ensure(
                        v_now >= v_prev,
                        f"{name}: GPS virtual time of group {gi} went "
                        f"backwards: {v_now!r} < {v_prev!r}",
                    )
                state["prev_vtimes"] = virtual_times

    def _check_bcpqp(self, limiter: BCPQP, packet: Any) -> None:
        name = limiter.name
        self._ensure(
            len(limiter._accepted_window) == limiter.num_queues
            and len(limiter._arrived_window) == limiter.num_queues
            and len(limiter._window_start) == limiter.num_queues,
            f"{name}: window arrays sized "
            f"({len(limiter._accepted_window)}, "
            f"{len(limiter._arrived_window)}, "
            f"{len(limiter._window_start)}) for {limiter.num_queues} queues "
            "(accounting windows not migrated at the epoch seam)",
        )
        for qi in range(limiter.num_queues):
            accepted = limiter.accepted_window_bytes(qi)
            arrived = limiter.arrived_window_bytes(qi)
            self._ensure(
                accepted <= arrived + _EPS,
                f"{name}: window accounting broken on queue {qi}: "
                f"accepted={accepted!r} > arrived={arrived!r}",
            )
            self._ensure(
                accepted >= 0.0 and arrived >= 0.0,
                f"{name}: negative window counter on queue {qi}: "
                f"accepted={accepted!r}, arrived={arrived!r}",
            )
        self._ensure(
            limiter.magic_fills >= 0 and limiter.magic_reclaims >= 0,
            f"{name}: negative magic counter: fills={limiter.magic_fills},"
            f" reclaims={limiter.magic_reclaims}",
        )
        if packet is not None:
            # The arrival hook rolled (or reset) this packet's window, so
            # post-packet the arriving queue's window is younger than T.
            qi = limiter._classifier.queue_of(packet.flow)
            age = limiter.window_age(qi, limiter._sim.now)
            self._ensure(
                age < limiter.period + _EPS,
                f"{name}: queue {qi} window age {age!r} >= period "
                f"{limiter.period!r} after an arrival",
            )

    def _check_post_sweep(self, limiter: Any) -> None:
        """After a window sweep every queue's window was rolled if stale."""
        if not isinstance(limiter, BCPQP):
            return
        now = limiter._sim.now
        for qi in range(limiter.num_queues):
            age = limiter.window_age(qi, now)
            self._ensure(
                age < limiter.period + _EPS,
                f"{limiter.name}: queue {qi} window age {age!r} >= period "
                f"{limiter.period!r} after the sweep",
            )

    # ------------------------------------------------------------------
    # Sender checks
    # ------------------------------------------------------------------

    def _check_sender(self, sender: Any) -> None:
        name = getattr(sender, "name", "sender")
        self._ensure(
            sender.snd_una <= sender.snd_nxt,
            f"{name}: snd_una={sender.snd_una} > snd_nxt={sender.snd_nxt}",
        )
        pipe = (
            (sender.snd_nxt - sender.snd_una)
            - len(sender._sacked)
            - len(sender._lost_set)
            + len(sender._retx_out)
        )
        self._ensure(
            pipe >= 0,
            f"{name}: negative scoreboard pipe {pipe} "
            f"(snd_nxt={sender.snd_nxt}, snd_una={sender.snd_una}, "
            f"sacked={len(sender._sacked)}, lost={len(sender._lost_set)}, "
            f"retx={len(sender._retx_out)})",
        )
        cc = sender.cc
        self._ensure(
            cc.cwnd >= 1.0 - _EPS,
            f"{name}: cwnd {cc.cwnd!r} below 1 MSS",
        )
        self._ensure(
            cc.ssthresh >= 1.0 - _EPS,
            f"{name}: ssthresh {cc.ssthresh!r} below 1 MSS",
        )
        self._ensure(
            _endpoint._MIN_RTO - _EPS
            <= sender.rto
            <= _endpoint._MAX_RTO + _EPS,
            f"{name}: RTO {sender.rto!r} outside "
            f"[{_endpoint._MIN_RTO}, {_endpoint._MAX_RTO}]",
        )
        if sender.srtt is not None:
            self._ensure(
                sender.srtt > 0.0,
                f"{name}: non-positive srtt {sender.srtt!r}",
            )
            self._ensure(
                sender._rttvar >= 0.0,
                f"{name}: negative rttvar {sender._rttvar!r}",
            )

    # ------------------------------------------------------------------
    # Middlebox checks
    # ------------------------------------------------------------------

    def _check_middlebox(self, middlebox: Any, state: dict[str, Any]) -> None:
        name = middlebox.name
        delivered_packets = 0
        delivered_bytes = 0
        for _agg, (limiter, base_packets, base_bytes) in state[
            "baselines"
        ].items():
            delivered_packets += limiter.stats.arrived_packets - base_packets
            delivered_bytes += limiter.stats.arrived_bytes - base_bytes
        self._ensure(
            state["packets"]
            == middlebox.unmatched_packets + delivered_packets,
            f"{name}: dispatch conservation broken: received="
            f"{state['packets']} packets, unmatched="
            f"{middlebox.unmatched_packets}, delivered={delivered_packets}",
        )
        self._ensure(
            state["bytes"] == state["unmatched_bytes"] + delivered_bytes,
            f"{name}: dispatch byte conservation broken: received="
            f"{state['bytes']}, unmatched={state['unmatched_bytes']}, "
            f"delivered={delivered_bytes}",
        )
