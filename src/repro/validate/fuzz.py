"""Cross-engine differential fuzzer.

Draws seeded random scenarios (flow count, CC algorithm mix, RTTs in
2-100 ms, enforced rates, policy trees) and runs each under the phantom
schemes (pqp, bcpqp) x every phantom service discipline ({fluid,
fluid-ref, quantum}), plus one rotating baseline scheme, all with the
:class:`~repro.validate.checker.InvariantChecker` attached.

Two comparison tiers:

* **strict** — ``fluid`` vs ``fluid-ref`` are the same GPS process
  computed two ways (the optimized virtual-time engine vs the reference
  piecewise loop), so every *decision* must agree exactly: forwarded /
  dropped packet and byte counts, per-queue drop maps, magic fills and
  reclaims, goodput.  Only ``drained_bytes`` (a pure float accumulator)
  gets a rounding tolerance.
* **loose** — ``quantum`` batches MSS-sized phantom dequeues through a
  DRR scheduler, so individual drop decisions legitimately differ from
  the fluid idealization; only aggregate outcomes (goodput, forwarded
  bytes) must land in a band around the fluid result.

A third differential tier covers fleet sharding: each case draws a
shard count, runs a small generatively-seeded fleet (:mod:`repro.fleet`)
both unsharded and partitioned into that many shards, and requires the
merged metrics to be byte-identical (``shards=1`` skips the tier).  The
shard count rides along in the ``--case`` JSON like every other field.

Any invariant violation or cross-engine divergence is reported with a
minimized single-line repro::

    python -m repro.validate --case '<json>'
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Callable

from repro.churn import ChurnPlan, draw_plan
from repro.net.impair import ImpairmentSpec
from repro.policy.tree import Policy
from repro.runner.aggregate import AggregateConfig, build_scenario
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator
from repro.units import MSS, mbps
from repro.validate.checker import InvariantChecker
from repro.workload.spec import FlowSpec

#: Phantom service disciplines compared per scheme.
ENGINES = ("fluid", "fluid-ref", "quantum")
#: Schemes that have a phantom engine to differentiate.
PHANTOM_SCHEMES = ("pqp", "bcpqp")
#: Non-phantom schemes, rotated one per case (invariants only).
BASELINES = ("shaper", "policer", "policer+", "fairpolicer", "shaper-fifo")
#: CC algorithms drawn for fuzzed flows.
CC_ALGOS = ("reno", "newreno", "cubic", "bbr", "vegas")

#: Exact-comparison keys for the strict (fluid vs fluid-ref) tier.
_STRICT_KEYS = (
    "forwarded_packets",
    "dropped_packets",
    "forwarded_bytes",
    "dropped_bytes",
    "per_queue_drops",
    "magic_fills",
    "magic_reclaims",
    "goodput_bytes",
)
#: drained_bytes tolerance (strict tier): rounding only.
_DRAINED_REL = 1e-6
_DRAINED_ABS = 1.0
#: Loose-tier band: |quantum - fluid| <= REL * max + ABS, for goodput and
#: forwarded bytes.  The quantum engine really does drop different
#: packets (MSS-granular DRR vs the fluid idealization), which CC
#: feedback then amplifies; the band only catches gross divergence
#: (an engine starving or over-admitting a workload).
_LOOSE_REL = 0.35
_LOOSE_ABS = 50.0 * MSS


@dataclass(frozen=True)
class FuzzCase:
    """One fuzzed scenario, as JSON-friendly primitives (picklable)."""

    index: int
    seed: int
    ccs: tuple[str, ...]
    rtts: tuple[float, ...]
    starts: tuple[float, ...]
    rate: float
    horizon: float
    warmup: float
    policy_kind: str  # "fair" | "weighted" | "prioritized"
    weights: tuple[float, ...] | None
    priorities: tuple[int, ...] | None
    baseline: str
    #: Delivery batch limit for the case's primary runs (``None`` =
    #: unbounded batched engine, ``1`` = legacy per-packet, ``K`` = cap).
    #: Corpus JSON predating the field deserializes to the batched
    #: default.  Every case is additionally re-run at the *opposite*
    #: granularity and diffed bit-for-bit (:func:`_diff_batch`).
    batch: int | None = None
    #: Fleet shard count for the shard-invariance tier: a small
    #: generatively-seeded fleet is run unsharded and partitioned into
    #: ``shards`` shards, and the merged metrics must be byte-identical
    #: (:mod:`repro.fleet`).  ``1`` skips the tier; corpus JSON predating
    #: the field deserializes to 1.
    shards: int = 1
    #: Impairment channels applied to every run of the case (same spec,
    #: same per-flow derived seeds, so impaired engines stay perfectly
    #: comparable).  ``None`` = clean case; corpus JSON predating the
    #: field deserializes to clean.  Impaired cases skip the loose
    #: (quantum-vs-fluid band) tier — impairment loss amplified through
    #: CC feedback swamps the band — but keep the strict, batch and
    #: fleet tiers, which demand bit-equality regardless.
    impair: ImpairmentSpec | None = None
    #: Live-reconfiguration plan applied to every run of the case (same
    #: plan for every engine/batch/shard leg, so churned engines stay
    #: perfectly comparable).  ``None`` = churn-free case; corpus JSON
    #: predating the field deserializes to churn-free.  Churned cases —
    #: like impaired ones — skip the loose band (a mid-run rate or tree
    #: change amplified through CC feedback swamps it) but keep every
    #: bit-exact tier, now exercising the epoch-seam migration paths.
    churn: ChurnPlan | None = None

    def __post_init__(self) -> None:
        # JSON round-trips tuples as lists; normalize back.
        for name in ("ccs", "rtts", "starts", "weights", "priorities"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if self.impair is not None and not isinstance(
            self.impair, ImpairmentSpec
        ):
            object.__setattr__(self, "impair", ImpairmentSpec(**self.impair))
        if self.churn is not None and not isinstance(self.churn, ChurnPlan):
            object.__setattr__(self, "churn", ChurnPlan(**self.churn))

    @property
    def num_flows(self) -> int:
        return len(self.ccs)

    def policy(self) -> Policy:
        if self.policy_kind == "weighted":
            return Policy.weighted(list(self.weights))
        if self.policy_kind == "prioritized":
            return Policy.prioritized(
                list(self.priorities), list(self.weights)
            )
        return Policy.fair(self.num_flows)

    def specs(self) -> tuple[FlowSpec, ...]:
        return tuple(
            FlowSpec(slot=i, cc=cc, rtt=rtt, start=start)
            for i, (cc, rtt, start) in enumerate(
                zip(self.ccs, self.rtts, self.starts)
            )
        )

    def config(self, scheme: str, service: str) -> AggregateConfig:
        return AggregateConfig(
            scheme=scheme,
            specs=self.specs(),
            rate=self.rate,
            max_rtt=max(self.rtts),
            horizon=self.horizon,
            warmup=self.warmup,
            seed=self.seed,
            policy=self.policy(),
            phantom_service=service,
            impair=self.impair,
            churn=self.churn,
        )

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), separators=(",", ":"))

    @staticmethod
    def from_json(text: str) -> "FuzzCase":
        data = json.loads(text)
        return FuzzCase(**data)

    # -- minimization edits -------------------------------------------

    def drop_flow(self, index: int) -> "FuzzCase":
        """Remove flow ``index`` (slots re-number to stay dense)."""
        keep = [i for i in range(self.num_flows) if i != index]
        take = lambda xs: tuple(xs[i] for i in keep) if xs else None
        return dataclasses.replace(
            self,
            ccs=take(self.ccs),
            rtts=take(self.rtts),
            starts=take(self.starts),
            weights=take(self.weights),
            priorities=take(self.priorities),
        )

    def with_horizon(self, horizon: float) -> "FuzzCase":
        return dataclasses.replace(self, horizon=horizon)

    def without_impair(self) -> "FuzzCase":
        return dataclasses.replace(self, impair=None)

    def without_churn(self) -> "FuzzCase":
        return dataclasses.replace(self, churn=None)


def _draw_impairment(rng) -> ImpairmentSpec | None:
    """Draw one impairment mix for a fuzz case.

    Severities stay moderate — an i.i.d. loss rate past ~5% or a long
    near-deterministic Gilbert-Elliott bad period phase-locks flows into
    backed-off RTO chains, which stops exercising the recovery machinery
    and just stalls the run.  Bad periods are short (mean
    ``1/p_bg <= 10`` packets) with high in-state loss, which is the
    burst shape RACK/TLP care about.
    """
    kinds = []
    if rng.random() < 0.55:
        kinds.append("loss" if rng.random() < 0.6 else "ge")
    if rng.random() < 0.35:
        kinds.append("jitter")
    if rng.random() < 0.25:
        kinds.append("ack_loss")
    if rng.random() < 0.2:
        kinds.append("duplicate")
    if rng.random() < 0.2:
        kinds.append("corrupt")
    if not kinds:
        kinds.append(("loss", "ge", "jitter")[rng.randint(0, 2)])
    fields: dict = {}
    if "loss" in kinds:
        fields["loss"] = rng.uniform(0.002, 0.05)
    if "ge" in kinds:
        fields["ge"] = (
            rng.uniform(0.002, 0.02),   # p_gb: rare entry into bad
            rng.uniform(0.1, 0.5),      # p_bg: short bad periods
            rng.uniform(0.0, 0.005),    # loss_good
            rng.uniform(0.3, 0.8),      # loss_bad
        )
    if "jitter" in kinds:
        fields["jitter"] = rng.uniform(0.0005, 0.01)
        if rng.random() < 0.5:
            fields["reorder"] = rng.uniform(0.01, 0.1)
            fields["reorder_extra"] = rng.uniform(0.001, 0.01)
    if "ack_loss" in kinds:
        fields["ack_loss"] = rng.uniform(0.002, 0.05)
    if "duplicate" in kinds:
        fields["duplicate"] = rng.uniform(0.005, 0.05)
    if "corrupt" in kinds:
        fields["corrupt"] = rng.uniform(0.002, 0.03)
    return ImpairmentSpec(**fields)


def generate_case(
    seed: int, index: int, *, impair: bool = False, churn: bool = False
) -> FuzzCase:
    """Deterministically draw case ``index`` of the root-``seed`` corpus.

    ``impair=True`` appends an impairment draw *after* every other field
    (and from the same stream), so the impaired corpus shares scenario
    bodies with the clean corpus at equal (seed, index) — and with the
    flag off no extra draw happens, keeping the historical corpus stable.
    ``churn=True`` appends a small :class:`~repro.churn.ChurnPlan` draw
    strictly after *all* existing fields (including the impairment draw)
    under the same rule: churned corpora share scenario bodies — and,
    when both flags are set, impairment mixes — with their churn-free
    counterparts at equal (seed, index).
    """
    rng = RngFactory(seed).stream("fuzz-case", index)
    n = rng.randint(1, 5)
    ccs = tuple(rng.choice(CC_ALGOS) for _ in range(n))
    # §2 workloads: RTTs anywhere between datacenter-ish and long-haul.
    rtts = tuple(rng.uniform(0.002, 0.1) for _ in range(n))
    starts = tuple(rng.uniform(0.0, 0.2) for _ in range(n))
    policy_kind = rng.choice(("fair", "weighted", "prioritized"))
    weights = None
    priorities = None
    if policy_kind in ("weighted", "prioritized"):
        weights = tuple(float(rng.randint(1, 4)) for _ in range(n))
    if policy_kind == "prioritized":
        # Mostly priority 0 so lower classes aren't always fully starved.
        priorities = tuple(rng.choice((0, 0, 1)) for _ in range(n))
    # Batch-limit draw (last, so earlier draws match the pre-batching
    # corpus): the interesting sizes are the two engines' endpoints
    # (1 = per-packet, None = unbounded) plus tiny and mid-size caps
    # that force batch boundaries at awkward places.
    batch = rng.choice((1, 2, rng.randint(2, 32), None))
    # Shard-count draw (after batch, same reason: earlier draws keep
    # matching the pre-fleet corpus).  Small counts: the tier's job is
    # partition boundaries, not population size — uneven splits (3, 5)
    # exercise the remainder-distribution path of ``shard_bounds``.
    shards = rng.choice((1, 2, 3, 5))
    # The remaining scalar draws stay in their historical order (seed,
    # rate, horizon — previously consumed inside the constructor call);
    # the impairment draw comes strictly after ALL of them so impaired
    # and clean corpora share scenario bodies at equal (seed, index).
    case_seed = rng.randint(1, 2**31)
    rate = mbps(rng.uniform(1.0, 15.0))
    horizon = rng.uniform(0.8, 1.5)
    impairment = _draw_impairment(rng) if impair else None
    churn_plan = (
        draw_plan(
            rng,
            num_queues=n,
            rate=rate,
            horizon=horizon,
            actions=rng.randint(1, 5),
        )
        if churn
        else None
    )
    return FuzzCase(
        index=index,
        seed=case_seed,
        ccs=ccs,
        rtts=rtts,
        starts=starts,
        rate=rate,
        horizon=horizon,
        warmup=0.25,
        policy_kind=policy_kind,
        weights=weights,
        priorities=priorities,
        baseline=BASELINES[index % len(BASELINES)],
        batch=batch,
        shards=shards,
        impair=impairment,
        churn=churn_plan,
    )


@dataclass
class CaseReport:
    """Outcome of one fuzz case across all engines."""

    case: FuzzCase
    simulations: int
    violations: list[str]
    divergences: list[str]
    #: Infrastructure failure while running the case (worker killed by a
    #: segfault/OOM, or hung past the task timeout) — itself a finding:
    #: a scenario that crashes an engine is at least as interesting as
    #: one that diverges.
    crash: str | None = None

    @property
    def failed(self) -> bool:
        return bool(self.violations or self.divergences or self.crash)


def _run_engine(
    case: FuzzCase, scheme: str, service: str, batch: int | None = None
) -> dict:
    """One simulation with the checker attached; returns comparable
    outcome numbers plus any invariant violations."""
    checker = InvariantChecker(fail_fast=False)
    sim = Simulator(validate=checker, batch_limit=batch)
    limiter, scenario = build_scenario(case.config(scheme, service), sim)
    scenario.run()
    checker.finalize(traces=(scenario.trace,))
    trace = scenario.trace
    goodput = sum(
        size
        for time, size in zip(trace.times, trace.sizes)
        if time >= case.warmup
    )
    stats = limiter.stats
    outcome = {
        "forwarded_packets": stats.forwarded_packets,
        "dropped_packets": stats.dropped_packets,
        "forwarded_bytes": stats.forwarded_bytes,
        "dropped_bytes": stats.dropped_bytes,
        "per_queue_drops": dict(sorted(stats.per_queue_drops.items())),
        "magic_fills": getattr(limiter, "magic_fills", 0),
        "magic_reclaims": getattr(limiter, "magic_reclaims", 0),
        "goodput_bytes": goodput,
        "drained_bytes": (
            limiter.queues.drained_bytes
            if hasattr(limiter, "queues")
            else 0.0
        ),
        "violations": list(checker.violations),
    }
    return outcome


def _diff_strict(
    scheme: str, ref: dict, opt: dict, divergences: list[str]
) -> None:
    """fluid-ref vs fluid: decisions must agree exactly."""
    for key in _STRICT_KEYS:
        if ref[key] != opt[key]:
            divergences.append(
                f"{scheme}: fluid vs fluid-ref diverge on {key}: "
                f"{opt[key]!r} != {ref[key]!r}"
            )
    drained_ref, drained_opt = ref["drained_bytes"], opt["drained_bytes"]
    bound = _DRAINED_ABS + _DRAINED_REL * max(drained_ref, drained_opt)
    if abs(drained_ref - drained_opt) > bound:
        divergences.append(
            f"{scheme}: fluid vs fluid-ref drained_bytes diverge: "
            f"{drained_opt!r} != {drained_ref!r} (bound {bound!r})"
        )


def _diff_loose(
    scheme: str, fluid: dict, quantum: dict, divergences: list[str]
) -> None:
    """quantum vs fluid: aggregate outcomes must land in a band."""
    for key in ("goodput_bytes", "forwarded_bytes"):
        a, b = fluid[key], quantum[key]
        bound = _LOOSE_ABS + _LOOSE_REL * max(a, b)
        if abs(a - b) > bound:
            divergences.append(
                f"{scheme}: quantum vs fluid diverge on {key}: "
                f"{b!r} vs {a!r} (bound {bound!r})"
            )


def _diff_batch(
    scheme: str,
    batch_a: int | None,
    batch_b: int | None,
    a: dict,
    b: dict,
    divergences: list[str],
) -> None:
    """Batched vs unbatched engines are the *same* simulation computed at
    different delivery granularities: every outcome — including the pure
    float ``drained_bytes`` accumulator — must be bit-for-bit equal."""
    for key in _STRICT_KEYS + ("drained_bytes",):
        if a[key] != b[key]:
            divergences.append(
                f"{scheme}: batch={batch_a} vs batch={batch_b} diverge "
                f"on {key}: {a[key]!r} != {b[key]!r}"
            )


def _diff_fleet(case: FuzzCase, divergences: list[str]) -> int:
    """Fleet shard-invariance tier; returns simulations run.

    A small generatively-seeded fleet (its per-aggregate workloads derive
    from ``case.seed``, not the case's flow list) is run unsharded and
    partitioned into ``case.shards`` shards.  Merged
    :class:`~repro.metrics.merge.FleetMetrics` must be byte-identical —
    the digest covers every per-aggregate column, so any divergence in
    partitioning, per-shard seeding or the merge's reduction order is a
    finding.  ``shards=1`` skips the tier (nothing to diff).
    """
    if case.shards <= 1:
        return 0
    from repro.fleet import FleetSpec, run_fleet

    scheme = PHANTOM_SCHEMES[case.index % len(PHANTOM_SCHEMES)]
    spec = FleetSpec(
        aggregates=case.shards + 2,
        seed=case.seed,
        scheme=scheme,
        horizon=case.horizon,
        warmup=case.warmup,
        batch=case.batch,
        impair=case.impair,
        # Churned cases churn the fleet too: each aggregate draws its own
        # per-aggregate plan (as many actions as the case's plan) from
        # the fleet seed, so the tier proves the *reconfiguration* paths
        # are shard-layout invariant, not just the steady-state ones.
        churn_actions=(
            len(case.churn.actions) if case.churn is not None else 0
        ),
    )
    single = run_fleet(spec, shards=1)
    sharded = run_fleet(spec, shards=case.shards)
    if single.metrics != sharded.metrics:
        divergences.append(
            f"fleet/{scheme}: shards={case.shards} merge diverges from "
            f"single-process: digest {sharded.metrics.digest[:16]} != "
            f"{single.metrics.digest[:16]}"
        )
    return 1 + case.shards


def run_case(case: FuzzCase) -> CaseReport:
    """Run one case under every engine combination and diff the results."""
    violations: list[str] = []
    divergences: list[str] = []
    simulations = 0
    other_batch = 1 if case.batch != 1 else None
    for scheme in PHANTOM_SCHEMES:
        outcomes: dict[str, dict] = {}
        for service in ENGINES:
            outcome = _run_engine(case, scheme, service, batch=case.batch)
            simulations += 1
            outcomes[service] = outcome
            for message in outcome["violations"]:
                violations.append(f"{scheme}/{service}: {message}")
        _diff_strict(scheme, outcomes["fluid-ref"], outcomes["fluid"], divergences)
        # The loose band assumes CC feedback amplifies only the engines'
        # *own* decision differences; impairment loss — or a mid-run
        # rate/tree change — multiplies that amplification past any
        # useful band, so impaired and churned cases rely on the
        # bit-exact tiers instead.
        if case.impair is None and case.churn is None:
            _diff_loose(
                scheme, outcomes["fluid"], outcomes["quantum"], divergences
            )
        # Differential batching tier: the same scheme/service at the
        # opposite delivery granularity must match bit for bit.
        alt = _run_engine(case, scheme, "fluid", batch=other_batch)
        simulations += 1
        for message in alt["violations"]:
            violations.append(f"{scheme}/fluid/batch={other_batch}: {message}")
        _diff_batch(
            scheme, case.batch, other_batch, outcomes["fluid"], alt, divergences
        )
    baseline_outcome = _run_engine(case, case.baseline, "fluid", batch=case.batch)
    simulations += 1
    for message in baseline_outcome["violations"]:
        violations.append(f"{case.baseline}: {message}")
    simulations += _diff_fleet(case, divergences)
    return CaseReport(
        case=case,
        simulations=simulations,
        violations=violations,
        divergences=divergences,
    )


def run_case_supervised(
    case: FuzzCase, *, task_timeout: float | None = None
) -> CaseReport:
    """Run one case in a disposable supervised worker process.

    A case that SIGKILLs its worker (segfault, OOM) or hangs past
    ``task_timeout`` comes back as a :class:`CaseReport` with ``crash``
    set instead of killing the calling process — this is what lets the
    CLI *minimize* a crashing case safely.
    """
    from repro.runner.supervisor import RetryPolicy, run_supervised

    report = run_supervised(
        run_case,
        [case],
        jobs=1,
        policy=RetryPolicy(retries=0),
        task_timeout=task_timeout,
    )
    if report.results[0] is not None:
        return report.results[0]
    failure = report.failures[0]
    return CaseReport(
        case=case,
        simulations=0,
        violations=[],
        divergences=[],
        crash=f"{failure.kind}: {failure.detail}",
    )


def minimize(
    case: FuzzCase,
    runner: Callable[[FuzzCase], CaseReport] | None = None,
) -> FuzzCase:
    """Shrink a failing case: drop flows, then halve the horizon, keeping
    it failing at every step.

    ``runner`` evaluates candidates (default: in-process
    :func:`run_case`); pass :func:`run_case_supervised` to shrink a case
    that crashes its worker.
    """
    if runner is None:
        runner = run_case

    def fails(candidate: FuzzCase) -> bool:
        return runner(candidate).failed

    current = case
    # Cheapest shrinks first: a failure that reproduces without its churn
    # plan isn't a churn bug, and one that reproduces clean isn't an
    # impairment bug at all.
    if current.churn is not None:
        trial = current.without_churn()
        if fails(trial):
            current = trial
    if current.impair is not None:
        trial = current.without_impair()
        if fails(trial):
            current = trial
    shrunk = True
    while shrunk and current.num_flows > 1:
        shrunk = False
        for i in range(current.num_flows):
            trial = current.drop_flow(i)
            if fails(trial):
                current = trial
                shrunk = True
                break
    for _ in range(3):
        trial = current.with_horizon(current.horizon / 2.0)
        if trial.horizon >= 2.0 * trial.warmup and fails(trial):
            current = trial
        else:
            break
    return current


def fuzz(
    count: int,
    seed: int,
    *,
    jobs: int | None = None,
    retries: int = 1,
    task_timeout: float | None = None,
    impair: bool = False,
    churn: bool = False,
) -> tuple[list[CaseReport], int]:
    """Run ``count`` cases; returns (failing reports, total simulations).

    ``jobs`` fans cases out over the **supervised** pool (cases and
    reports are plain picklable dataclasses): a case that crashes its
    worker (segfault/OOM) or hangs past ``task_timeout`` is retried
    ``retries`` times and, if it keeps failing, reported as a *finding*
    (a ``CaseReport`` with ``crash`` set) rather than killing the whole
    campaign.
    """
    cases = [
        generate_case(seed, i, impair=impair, churn=churn)
        for i in range(count)
    ]
    if jobs is not None and jobs > 1:
        from repro.runner.supervisor import RetryPolicy, run_supervised

        sweep = run_supervised(
            run_case,
            cases,
            jobs=jobs,
            policy=RetryPolicy(retries=retries, backoff_base=0.1),
            task_timeout=task_timeout,
        )
        failed_by_index = {f.index: f for f in sweep.failures}
        reports = []
        for i, report in enumerate(sweep.results):
            if report is None:
                failure = failed_by_index.get(i)
                detail = (
                    f"{failure.kind}: {failure.detail}"
                    if failure is not None
                    else "worker failed without detail"
                )
                report = CaseReport(
                    case=cases[i],
                    simulations=0,
                    violations=[],
                    divergences=[],
                    crash=detail,
                )
            reports.append(report)
    else:
        reports = [run_case(case) for case in cases]
    failures = [report for report in reports if report.failed]
    simulations = sum(report.simulations for report in reports)
    return failures, simulations
