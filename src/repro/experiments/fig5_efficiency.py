"""Figure 5: CPU cycles spent per packet by each scheme (§6.2).

The paper measures DPDK cycles; we report the operation-level cost model
(see :mod:`repro.limiters.costs`) accumulated over a §6.1-style run, and
the reproduction's benchmark suite cross-checks the ranking with real
wall-clock microbenchmarks of each limiter's hot path
(``benchmarks/bench_fig5_efficiency.py``).

Expected shape: shaper >> fairpolicer > bcpqp ~ pqp > policer, with the
shaper 5-7x BC-PQP and BC-PQP within ~2x of the plain policer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    AggregateConfig,
    ResultCache,
    print_table,
    run_aggregates,
)
from repro.units import mbps, ms
from repro.workload.spec import FlowSpec

SCHEMES = ("shaper", "fairpolicer", "pqp", "bcpqp", "policer")


@dataclass
class Config:
    """One busy aggregate is enough to exercise every hot path."""

    rate: float = mbps(25)
    ccs: tuple[str, ...] = ("reno", "cubic", "bbr", "vegas")
    rtts: tuple[float, ...] = (ms(10), ms(20), ms(30), ms(40))
    horizon: float = 12.0
    warmup: float = 2.0
    schemes: tuple[str, ...] = SCHEMES
    seed: int = 1


@dataclass
class Result:
    """Modeled cycles per packet, per scheme."""

    cycles_per_packet: dict[str, float] = field(default_factory=dict)
    packets: dict[str, int] = field(default_factory=dict)

    def ratio_to(self, baseline: str) -> dict[str, float]:
        """Each scheme's cost relative to ``baseline``."""
        base = self.cycles_per_packet[baseline]
        return {s: c / base for s, c in self.cycles_per_packet.items()}


def grid(config: Config) -> list[AggregateConfig]:
    """One busy aggregate per scheme."""
    specs = tuple(
        FlowSpec(slot=i, cc=cc, rtt=rtt)
        for i, (cc, rtt) in enumerate(zip(config.ccs, config.rtts))
    )
    return [
        AggregateConfig(
            scheme=scheme,
            specs=specs,
            rate=config.rate,
            max_rtt=max(config.rtts),
            horizon=config.horizon,
            warmup=config.warmup,
            seed=config.seed,
        )
        for scheme in config.schemes
    ]


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Accumulate the cost model over one aggregate per scheme."""
    config = config or Config()
    result = Result()
    outcomes = run_aggregates(grid(config), jobs=jobs, cache=cache)
    for scheme, agg in zip(config.schemes, outcomes):
        result.cycles_per_packet[scheme] = agg.cycles_per_packet
        result.packets[scheme] = agg.arrived_packets
    return result


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Print the Figure 5 table."""
    result = run(config, jobs=jobs, cache=cache)
    ratios = result.ratio_to("policer")
    print("Figure 5: modeled CPU cycles per packet")
    print_table(
        ["scheme", "cycles/pkt", "x policer", "packets"],
        [
            [s, f"{c:.1f}", f"{ratios[s]:.2f}", str(result.packets[s])]
            for s, c in sorted(
                result.cycles_per_packet.items(), key=lambda kv: -kv[1]
            )
        ],
    )
    return result


if __name__ == "__main__":
    main()
