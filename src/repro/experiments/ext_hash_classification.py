"""Extension study: hashed flow classification (§3.2).

The paper's per-flow fairness can use exact per-flow queues or
"approximate it by hashing the flow identifiers in the packet header
fields into one of the N queues".  Hashing trades state for collisions:
flows sharing a queue split that queue's share.  This study quantifies
the fairness cost of hashing F flows into N < F queues under BC-PQP.

Note the outcome is not monotone in N: flow-level fairness is dominated
by the single worst collision bucket, so an unlucky hash at a middling N
can be worse than heavy-but-even collisions at a small N — the reason
operators provision hash tables several times larger than the expected
flow count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.classify.classifier import HashClassifier
from repro.core.bcpqp import BCPQP
from repro.experiments.common import (
    MEASUREMENT_WINDOW,
    ResultCache,
    print_table,
    run_cells,
)
from repro.metrics.fairness import jain_index
from repro.metrics.throughput import per_slot_throughput_series
from repro.net.packet import FlowId
from repro.policy.tree import Policy
from repro.scenario import AggregateScenario
from repro.sim.simulator import Simulator
from repro.units import mbps, ms
from repro.workload.spec import FlowSpec


@dataclass
class Config:
    """Hash-classification study parameters."""

    rate: float = mbps(20)
    num_flows: int = 12
    queue_counts: tuple[int, ...] = (2, 4, 8, 16, 32)
    cc: str = "cubic"
    horizon: float = 15.0
    warmup: float = 5.0
    seed: int = 1


@dataclass
class Result:
    """Per-queue-count fairness across *flows* (not queues)."""

    fairness_by_queues: dict[int, float] = field(default_factory=dict)
    collisions_by_queues: dict[int, int] = field(default_factory=dict)


@dataclass(frozen=True)
class HashCell:
    """One hash-table size; RTTs are pre-drawn so the cell is a pure
    function of its fields (and hence cacheable/fork-safe)."""

    n_queues: int
    rtts: tuple[float, ...]
    config: Config


def simulate_hash_cell(cell: HashCell) -> tuple[float, int]:
    """Worker entry: (flow-level Jain index, colliding flows)."""
    config = cell.config
    n_queues = cell.n_queues
    sim = Simulator()
    classifier = HashClassifier(n_queues, salt=config.seed)
    limiter = BCPQP(
        sim,
        rate=config.rate,
        policy=Policy.fair(n_queues),
        classifier=classifier,
        queue_bytes=500_000.0,
    )
    specs = [
        FlowSpec(slot=i, cc=config.cc, rtt=cell.rtts[i])
        for i in range(config.num_flows)
    ]
    scenario = AggregateScenario(
        sim, limiter=limiter, specs=specs,
        rng=random.Random(config.seed), horizon=config.horizon)
    scenario.run()
    slots = per_slot_throughput_series(
        scenario.trace, window=MEASUREMENT_WINDOW,
        start=config.warmup, end=config.horizon)
    shares = [
        slots[i].mean() if i in slots else 0.0
        for i in range(config.num_flows)
    ]
    occupancy = [0] * n_queues
    for i in range(config.num_flows):
        occupancy[classifier.queue_of(FlowId(0, i))] += 1
    collisions = sum(c - 1 for c in occupancy if c > 1)
    return jain_index(shares), collisions


def grid(config: Config) -> list[HashCell]:
    """One cell per hash-table size, sharing one pre-drawn RTT vector."""
    rng = random.Random(config.seed)
    rtts = tuple(ms(rng.uniform(10, 40)) for _ in range(config.num_flows))
    return [
        HashCell(n_queues=n, rtts=rtts, config=config)
        for n in config.queue_counts
    ]


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Measure flow-level fairness as the hash table grows."""
    config = config or Config()
    result = Result()
    cells = grid(config)
    outcomes = run_cells(simulate_hash_cell, cells, jobs=jobs, cache=cache)
    for cell, (jain, collisions) in zip(cells, outcomes):
        result.fairness_by_queues[cell.n_queues] = jain
        result.collisions_by_queues[cell.n_queues] = collisions
    return result


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Print the hash-classification table."""
    config = config or Config()
    result = run(config, jobs=jobs, cache=cache)
    print(f"Hashed classification: {config.num_flows} flows into N queues "
          "(BC-PQP, per-flow fairness goal)")
    print_table(
        ["queues", "colliding flows", "flow-level jain"],
        [
            [str(n), str(result.collisions_by_queues[n]),
             f"{result.fairness_by_queues[n]:.3f}"]
            for n in sorted(result.fairness_by_queues)
        ],
    )
    return result


if __name__ == "__main__":
    main()
