"""Figure 6: policy enforcement within an aggregate (§6.3).

* **6a** — CDF of Jain's per-flow fairness index over the §6.1 workload:
  shaper ≈ BC-PQP > FairPolicer > policers.
* **6b/6c** — weighted fairness: 7 flows with weights 1..7 and sizes
  proportional to their weights should all complete together.  BC-PQP
  achieves this; FairPolicer's equal per-flow caps do not.
* **6d** — a nested policy: a high-priority group (3 on-off flows sharing
  by weight 1:2:3) over a low-priority backlogged flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    AggregateConfig,
    ResultCache,
    print_table,
    run_aggregates,
)
from repro.metrics.fairness import weighted_jain_index
from repro.metrics.stats import percentile
from repro.policy.tree import Policy
from repro.units import mbps, ms, to_mbps
from repro.workload.aggregates import Section61Config, make_section61_aggregates
from repro.workload.spec import FlowSpec, OnOffSpec


@dataclass
class Config:
    """Scaled-down §6.3 parameters."""

    workload: Section61Config = field(default_factory=lambda: Section61Config(
        num_aggregates=6,
        rates=(mbps(7.5), mbps(25.0)),
        flows_per_aggregate=4,
        horizon=12.0,
        seed=11,
    ))
    warmup: float = 3.0
    fairness_schemes: tuple[str, ...] = (
        "shaper", "bcpqp", "fairpolicer", "policer")

    # 6b/6c: weighted fairness microbenchmark.
    weighted_rate: float = mbps(50)
    weights: tuple[float, ...] = (1, 2, 3, 4, 5, 6, 7)
    #: Flow sizes proportional to weights: this many packets per weight unit.
    packets_per_weight: int = 700
    weighted_rtt: float = ms(20)
    weighted_horizon: float = 40.0

    # 6d: nested policy microbenchmark.
    nested_rate: float = mbps(10)
    nested_horizon: float = 20.0


@dataclass
class Result:
    """Figure 6 outputs."""

    # 6a: scheme -> (p10, p50, mean) of Jain's index across aggregates.
    fairness_cdf: dict[str, tuple[float, float, float]] = field(
        default_factory=dict
    )
    # 6b/6c: scheme -> (completion spread, weighted Jain index).
    weighted: dict[str, tuple[float, float]] = field(default_factory=dict)
    # 6d: throughput shares during/after the high-priority phase.
    nested_high_share: float = 0.0
    nested_low_share_when_high_active: float = 0.0
    nested_weighted_jain: float = 0.0


def fairness_cdf_grid(config: Config) -> list[AggregateConfig]:
    """6a cells: scheme x §6.1 aggregate."""
    aggregates = make_section61_aggregates(config.workload)
    return [
        AggregateConfig(
            scheme=scheme,
            specs=tuple(agg_spec.flows),
            rate=agg_spec.rate,
            max_rtt=agg_spec.max_rtt,
            horizon=config.workload.horizon,
            warmup=config.warmup,
            seed=config.workload.seed + agg_spec.aggregate_id,
        )
        for scheme in config.fairness_schemes
        for agg_spec in aggregates
    ]


def run_fairness_cdf(
    config: Config,
    result: Result,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> None:
    """6a: per-flow fairness across the §6.1 workload."""
    aggregates = make_section61_aggregates(config.workload)
    outcomes = iter(
        run_aggregates(fairness_cdf_grid(config), jobs=jobs, cache=cache)
    )
    for scheme in config.fairness_schemes:
        samples = []
        for _agg_spec in aggregates:
            agg = next(outcomes)
            samples.append(agg.fairness)
        result.fairness_cdf[scheme] = (
            percentile(samples, 10),
            percentile(samples, 50),
            sum(samples) / len(samples),
        )


_WEIGHTED_SCHEMES = ("fairpolicer", "bcpqp")


def weighted_grid(config: Config) -> list[AggregateConfig]:
    """6b/6c cells: two schemes over the weight-proportional workload."""
    weights = tuple(config.weights)
    specs = tuple(
        FlowSpec(
            slot=i,
            cc="cubic",
            rtt=config.weighted_rtt,
            packets=config.packets_per_weight * int(w),
            weight=w,
        )
        for i, w in enumerate(weights)
    )
    return [
        AggregateConfig(
            scheme=scheme,
            specs=specs,
            rate=config.weighted_rate,
            max_rtt=config.weighted_rtt,
            horizon=config.weighted_horizon,
            warmup=1.0,
            weights=weights,
        )
        for scheme in _WEIGHTED_SCHEMES
    ]


def run_weighted(
    config: Config,
    result: Result,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> None:
    """6b/6c: weight-proportional flows should finish together."""
    weights = list(config.weights)
    outcomes = run_aggregates(weighted_grid(config), jobs=jobs, cache=cache)
    for scheme, agg in zip(_WEIGHTED_SCHEMES, outcomes):
        ends = {r.slot: r.end for r in agg.flow_records}
        if len(ends) == len(weights):
            spread = max(ends.values()) - min(ends.values())
        else:
            spread = float("inf")  # some flows never finished
        shares = [s.mean() for _, s in sorted(agg.slot_series.items())]
        wj = weighted_jain_index(shares, weights[: len(shares)]) \
            if len(shares) == len(weights) else 0.0
        result.weighted[scheme] = (spread, wj)


def nested_grid(config: Config) -> list[AggregateConfig]:
    """6d cell: one BC-PQP run under the nested priority policy."""
    policy = Policy.nested(
        [[1.0, 2.0, 3.0], [1.0]], group_priorities=[0, 1]
    )
    specs = tuple(
        FlowSpec(slot=i, cc="cubic", rtt=ms(20), weight=float(i + 1),
                 on_off=OnOffSpec(burst_packets_mean=500, off_time_mean=1.0))
        for i in range(3)
    ) + (FlowSpec(slot=3, cc="cubic", rtt=ms(20)),)
    return [
        AggregateConfig(
            scheme="bcpqp",
            specs=specs,
            rate=config.nested_rate,
            max_rtt=ms(50),
            horizon=config.nested_horizon,
            warmup=2.0,
            policy=policy,
        )
    ]


def run_nested(
    config: Config,
    result: Result,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> None:
    """6d: prioritization + weighted fairness, BC-PQP only."""
    (agg,) = run_aggregates(nested_grid(config), jobs=jobs, cache=cache)
    # Classify measurement windows by whether the high-prio group was busy.
    high = [agg.slot_series[i] for i in range(3) if i in agg.slot_series]
    low = agg.slot_series.get(3)
    high_active_windows = low_share_sum = high_share_sum = 0.0
    n_windows = len(low.values) if low else 0
    for w in range(n_windows):
        high_rate = sum(s.values[w] for s in high if w < len(s.values))
        low_rate = low.values[w] if low else 0.0
        total = high_rate + low_rate
        if total <= 0:
            continue
        if high_rate > 0.2 * config.nested_rate:
            high_active_windows += 1
            high_share_sum += high_rate / total
            low_share_sum += low_rate / total
    if high_active_windows:
        result.nested_high_share = high_share_sum / high_active_windows
        result.nested_low_share_when_high_active = (
            low_share_sum / high_active_windows
        )
    shares = [s.mean() for s in high]
    if len(shares) == 3:
        result.nested_weighted_jain = weighted_jain_index(
            shares, [1.0, 2.0, 3.0]
        )


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Run all three §6.3 experiments."""
    config = config or Config()
    result = Result()
    run_fairness_cdf(config, result, jobs=jobs, cache=cache)
    run_weighted(config, result, jobs=jobs, cache=cache)
    run_nested(config, result, jobs=jobs, cache=cache)
    return result


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Print the Figure 6 tables."""
    config = config or Config()
    result = run(config, jobs=jobs, cache=cache)
    print("Figure 6a: Jain's fairness index across aggregates")
    print_table(
        ["scheme", "p10", "p50", "mean"],
        [
            [s, f"{p10:.3f}", f"{p50:.3f}", f"{m:.3f}"]
            for s, (p10, p50, m) in result.fairness_cdf.items()
        ],
    )
    print()
    print(f"Figure 6b/6c: weighted sharing of "
          f"{to_mbps(config.weighted_rate):.0f} Mbps, weights 1..7, sizes "
          f"proportional to weights")
    print_table(
        ["scheme", "completion spread (s)", "weighted jain"],
        [
            [s, "unfinished" if spread == float("inf") else f"{spread:.2f}",
             f"{wj:.3f}"]
            for s, (spread, wj) in result.weighted.items()
        ],
    )
    print()
    print("Figure 6d: nested policy (priority group with 1:2:3 weights "
          "over a backlogged background flow)")
    print(f"  high-priority group share when active: "
          f"{result.nested_high_share:.3f}")
    print(f"  background share while high-prio active: "
          f"{result.nested_low_share_when_high_active:.3f}")
    print(f"  weighted Jain within the group: "
          f"{result.nested_weighted_jain:.3f}")
    return result


if __name__ == "__main__":
    main()
