"""Figure 2: a Reno flow through differently sized phantom queues.

Paper setup: one backlogged Reno flow, RTT 100 ms, enforced rate 10 Mbps.
Too-small phantom buffers let the queue hit zero (under-enforcement);
buffers at or above the Appendix-A minimum (BDP^2/18 x MSS ≈ 579 KB; the
paper quotes ~1000 KB with margin) enforce the rate exactly, and further
size increases only add burst and drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sizing import reno_min_phantom_buffer
from repro.experiments.common import (
    AggregateConfig,
    ResultCache,
    print_table,
    run_aggregates,
)
from repro.units import kilobytes, mbps, ms, to_mbps
from repro.workload.spec import FlowSpec


@dataclass
class Config:
    """Paper's Figure 2 parameters (these are already laptop-scale)."""

    rate: float = mbps(10)
    rtt: float = ms(100)
    buffer_kb: tuple[float, ...] = (100, 250, 500, 1000, 2000, 4000)
    horizon: float = 40.0
    warmup: float = 10.0
    seed: int = 1


@dataclass
class Result:
    """Per-buffer-size outcomes."""

    analytic_min_bytes: float = 0.0
    # buffer KB -> (avg Mbps, peak Mbps, drop rate)
    by_buffer: dict[float, tuple[float, float, float]] = field(
        default_factory=dict
    )


def grid(config: Config) -> list[AggregateConfig]:
    """One PQP run per phantom-buffer size."""
    specs = (FlowSpec(slot=0, cc="reno", rtt=config.rtt),)
    return [
        AggregateConfig(
            scheme="pqp",
            specs=specs,
            rate=config.rate,
            max_rtt=config.rtt,
            horizon=config.horizon,
            warmup=config.warmup,
            seed=config.seed,
            queue_bytes=kilobytes(kb),
        )
        for kb in config.buffer_kb
    ]


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Sweep the phantom buffer size for a single Reno flow."""
    config = config or Config()
    result = Result(
        analytic_min_bytes=reno_min_phantom_buffer(config.rate, config.rtt)
    )
    outcomes = run_aggregates(grid(config), jobs=jobs, cache=cache)
    for kb, agg in zip(config.buffer_kb, outcomes):
        result.by_buffer[kb] = (
            to_mbps(agg.aggregate_series.mean()),
            to_mbps(agg.aggregate_series.max()),
            agg.drop_rate,
        )
    return result


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Print the Figure 2 table."""
    config = config or Config()
    result = run(config, jobs=jobs, cache=cache)
    print(f"Figure 2: Reno flow, RTT {config.rtt * 1e3:.0f} ms, enforcing "
          f"{to_mbps(config.rate):.0f} Mbps")
    print(f"Appendix A minimum buffer: "
          f"{result.analytic_min_bytes / 1e3:.0f} KB")
    print_table(
        ["B (KB)", "avg Mbps", "peak Mbps", "drop rate"],
        [
            [f"{kb:g}", f"{avg:.2f}", f"{peak:.2f}", f"{drop:.4f}"]
            for kb, (avg, peak, drop) in sorted(result.by_buffer.items())
        ],
    )
    return result


if __name__ == "__main__":
    main()
