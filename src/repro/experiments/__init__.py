"""Experiment harness: one module per figure of the paper's evaluation.

Every module exposes a ``Config`` dataclass (with a scaled-down default
that completes in seconds-to-minutes on one core and a ``scale`` knob to
approach the paper's full configuration), a ``run(config)`` function
returning structured results, and a ``main()`` that prints the table/series
the paper's figure reports.  Run any of them directly::

    python -m repro.experiments.fig2_sizing
    python -m repro.experiments.fig4_rate_enforcement --scale 2

The per-figure index lives in DESIGN.md; measured-vs-paper numbers are
recorded in EXPERIMENTS.md.
"""
