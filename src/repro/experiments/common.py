"""Shared plumbing for the per-figure experiments."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.limiters.base import RateLimiter
from repro.metrics.fairness import jain_index
from repro.metrics.series import TimeSeries
from repro.metrics.throughput import (
    aggregate_throughput_series,
    per_slot_throughput_series,
)
from repro.policy.tree import Policy
from repro.scenario import AggregateScenario, BottleneckSpec
from repro.schemes import make_limiter
from repro.sim.simulator import Simulator
from repro.units import to_mbps
from repro.workload.spec import FlowSpec

#: Measurement window used throughout the paper's evaluation (250 ms).
MEASUREMENT_WINDOW = 0.25


@dataclass
class AggregateResult:
    """Everything measured from one aggregate under one scheme."""

    scheme: str
    rate: float
    aggregate_series: TimeSeries
    slot_series: dict[int, TimeSeries]
    drop_rate: float
    cycles_per_packet: float
    arrived_packets: int
    limiter: RateLimiter = field(repr=False)
    scenario: AggregateScenario = field(repr=False)

    @property
    def normalized_series(self) -> list[float]:
        """Windowed aggregate throughput normalized by the enforced rate."""
        return [v / self.rate for v in self.aggregate_series.values]

    @property
    def mean_normalized_throughput(self) -> float:
        """Mean of non-zero normalized windows (Figure 4c's metric)."""
        values = [v for v in self.normalized_series if v > 0]
        if not values:
            return 0.0
        return sum(values) / len(values)

    @property
    def peak_normalized_throughput(self) -> float:
        """Max windowed throughput over the enforced rate (burst)."""
        if not self.aggregate_series.values:
            return 0.0
        return self.aggregate_series.max() / self.rate

    @property
    def fairness(self) -> float:
        """Jain's index over mean per-slot throughputs."""
        return jain_index([s.mean() for s in self.slot_series.values()])


def run_aggregate(
    scheme: str,
    specs: Sequence[FlowSpec],
    *,
    rate: float,
    max_rtt: float,
    horizon: float,
    warmup: float,
    seed: int = 1,
    bottleneck: BottleneckSpec | None = None,
    weights: list[float] | None = None,
    policy: Policy | None = None,
    queue_bytes: float | None = None,
) -> AggregateResult:
    """Simulate one aggregate under ``scheme`` and measure it."""
    sim = Simulator()
    num_queues = max(s.slot for s in specs) + 1
    limiter = make_limiter(
        sim,
        scheme,
        rate=rate,
        num_queues=num_queues,
        max_rtt=max_rtt,
        weights=weights,
        policy=policy,
        queue_bytes=queue_bytes,
    )
    scenario = AggregateScenario(
        sim,
        limiter=limiter,
        specs=specs,
        rng=random.Random(seed),
        horizon=horizon,
        bottleneck=bottleneck,
    )
    scenario.run()
    records = scenario.trace.records
    return AggregateResult(
        scheme=scheme,
        rate=rate,
        aggregate_series=aggregate_throughput_series(
            records, window=MEASUREMENT_WINDOW, start=warmup, end=horizon
        ),
        slot_series=per_slot_throughput_series(
            records, window=MEASUREMENT_WINDOW, start=warmup, end=horizon
        ),
        drop_rate=limiter.stats.drop_rate,
        cycles_per_packet=limiter.cost.cycles_per_packet(
            limiter.stats.arrived_packets
        ),
        arrived_packets=limiter.stats.arrived_packets,
        limiter=limiter,
        scenario=scenario,
    )


def fmt_mbps(rate_bytes: float) -> str:
    """Format a bytes/s rate as Mbit/s."""
    return f"{to_mbps(rate_bytes):6.2f}"


def print_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a plain aligned table (the harness's figure output format)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
