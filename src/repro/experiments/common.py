"""Shared plumbing for the per-figure experiments.

Figure grids are expressed as lists of picklable
:class:`~repro.runner.AggregateConfig` cells and submitted through
:func:`run_aggregates`, which fans out over the process-pool sweep runner
(``jobs > 1``) or falls back to bit-for-bit serial execution.  The
original in-process :func:`run_aggregate` entry point is kept for tests,
examples and one-off cells that want the live limiter/scenario objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence, TypeVar

from repro.limiters.base import RateLimiter
from repro.policy.tree import Policy
from repro.runner import (
    MEASUREMENT_WINDOW,
    AggregateConfig,
    AggregateOutcome,
    ResultCache,
    SweepJournal,
    run_tasks,
    simulate_aggregate,
)
from repro.runner.aggregate import build_scenario, measure
from repro.runner.journal import grid_hash
from repro.runner.pool import _task_name
from repro.scenario import AggregateScenario, BottleneckSpec
from repro.sim.simulator import Simulator
from repro.units import to_mbps
from repro.workload.spec import FlowSpec

C = TypeVar("C")
R = TypeVar("R")

__all__ = [
    "MEASUREMENT_WINDOW",
    "AggregateConfig",
    "AggregateOutcome",
    "AggregateResult",
    "ExecutionOptions",
    "ResultCache",
    "fmt_mbps",
    "print_table",
    "run_aggregate",
    "run_aggregates",
    "run_cells",
    "set_batch",
    "set_execution",
    "set_validate",
]

#: Session-wide validation toggle (the experiments CLI's ``--validate``).
#: When True every config submitted through :func:`run_aggregates` runs
#: with the invariant checker attached.
_FORCE_VALIDATE = False


def set_validate(enabled: bool) -> None:
    """Force invariant checking on (or off) for subsequent sweeps."""
    global _FORCE_VALIDATE
    _FORCE_VALIDATE = bool(enabled)


#: Session-wide batching toggle (the experiments CLI's ``--batch`` /
#: ``--no-batch``).  ``None`` = unbounded batches (the default engine),
#: ``1`` = the legacy per-packet path.  Outcomes are byte-identical
#: either way; the knob exists for benchmarking and bisection.
_FORCE_BATCH: int | None = None


def set_batch(batch: int | None) -> None:
    """Set the delivery batch limit for subsequent sweeps (``None`` =
    unbounded, ``1`` = unbatched legacy engine, ``K`` = cap)."""
    global _FORCE_BATCH
    _FORCE_BATCH = batch


@dataclass(frozen=True)
class ExecutionOptions:
    """Session-wide fault-tolerance knobs (the CLI's ``--retries``,
    ``--task-timeout``, ``--resume``, ``--fail-fast``).

    With everything at its default the sweeps run through the plain
    pool, byte-identical to the pre-supervisor implementation; setting
    any knob routes every figure's cell sweep through the supervised
    pool (:mod:`repro.runner.supervisor`).
    """

    retries: int | None = None
    task_timeout: float | None = None
    fail_fast: bool = False
    #: Directory holding one write-ahead journal per sweep grid
    #: (``--resume DIR``); interrupted sweeps replay completed cells.
    journal_root: Path | None = None

    @property
    def supervised(self) -> bool:
        return (
            self.retries is not None
            or self.task_timeout is not None
            or self.fail_fast
            or self.journal_root is not None
        )


_EXECUTION = ExecutionOptions()


def set_execution(
    *,
    retries: int | None = None,
    task_timeout: float | None = None,
    fail_fast: bool = False,
    journal_root: str | Path | None = None,
) -> None:
    """Configure fault-tolerant execution for subsequent sweeps."""
    global _EXECUTION
    _EXECUTION = ExecutionOptions(
        retries=retries,
        task_timeout=task_timeout,
        fail_fast=fail_fast,
        journal_root=Path(journal_root) if journal_root else None,
    )


def run_cells(
    fn: Callable[[C], R],
    cells: Sequence[C],
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    fingerprint: str | Callable[[C], str] | None = None,
) -> list[R]:
    """Run any figure's cell sweep under the session execution options.

    The figure modules route every grid through here so the CLI's
    fault-tolerance knobs apply uniformly.  When a journal root is set,
    each distinct grid gets its own journal file (named by the grid
    hash), so ``--resume`` never mixes results across figures or
    configurations.
    """
    options = _EXECUTION
    if not options.supervised:
        return run_tasks(fn, cells, jobs=jobs, cache=cache,
                         fingerprint=fingerprint)
    journal = None
    if options.journal_root is not None:
        digest = grid_hash(_task_name(fn), [repr(cell) for cell in cells])
        journal = SweepJournal(
            options.journal_root / f"sweep-{digest[:16]}.jsonl"
        )
    return run_tasks(
        fn,
        cells,
        jobs=jobs,
        cache=cache,
        fingerprint=fingerprint,
        retries=options.retries if options.retries is not None else 2,
        task_timeout=options.task_timeout,
        journal=journal,
        fail_fast=options.fail_fast,
    )


@dataclass
class AggregateResult(AggregateOutcome):
    """An :class:`~repro.runner.AggregateOutcome` that also exposes the live
    limiter and scenario (serial in-process runs only)."""

    limiter: RateLimiter = field(default=None, repr=False)  # type: ignore[assignment]
    scenario: AggregateScenario = field(default=None, repr=False)  # type: ignore[assignment]


def run_aggregate(
    scheme: str,
    specs: Sequence[FlowSpec],
    *,
    rate: float,
    max_rtt: float,
    horizon: float,
    warmup: float,
    seed: int = 1,
    bottleneck: BottleneckSpec | None = None,
    weights: list[float] | None = None,
    policy: Policy | None = None,
    queue_bytes: float | None = None,
    batch: int | None = None,
) -> AggregateResult:
    """Simulate one aggregate under ``scheme`` and measure it (in-process)."""
    config = AggregateConfig(
        scheme=scheme,
        specs=tuple(specs),
        rate=rate,
        max_rtt=max_rtt,
        horizon=horizon,
        warmup=warmup,
        seed=seed,
        bottleneck=bottleneck,
        weights=tuple(weights) if weights else None,
        policy=policy,
        queue_bytes=queue_bytes,
        batch=batch,
    )
    sim = Simulator(batch_limit=config.batch)
    limiter, scenario = build_scenario(config, sim)
    scenario.run()
    outcome = measure(config, limiter, scenario)
    return AggregateResult(
        **outcome.__dict__, limiter=limiter, scenario=scenario
    )


def run_aggregates(
    configs: Sequence[AggregateConfig],
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    validate: bool | None = None,
) -> list[AggregateOutcome]:
    """Run a grid of aggregate configs through the sweep runner.

    Results come back in input order.  ``jobs=None``/``1`` executes
    serially in-process and matches parallel output bit for bit; a cache
    keyed per-scheme skips cells whose config and scheme code are
    unchanged since a previous run.

    ``validate`` attaches the invariant checker to every cell
    (``None`` defers to the session toggle, :func:`set_validate`).
    Validated configs carry their own cache keys and a fingerprint that
    covers the checker sources, so flipping validation on never poisons
    cached unvalidated results.
    """
    if validate is None:
        validate = _FORCE_VALIDATE
    if validate:
        configs = [
            c if c.validate else replace(c, validate=True) for c in configs
        ]
    if _FORCE_BATCH is not None:
        configs = [
            c if c.batch == _FORCE_BATCH else replace(c, batch=_FORCE_BATCH)
            for c in configs
        ]
    return run_cells(
        simulate_aggregate,
        configs,
        jobs=jobs,
        cache=cache,
        fingerprint=AggregateConfig.code_fingerprint,
    )


def fmt_mbps(rate_bytes: float) -> str:
    """Format a bytes/s rate as Mbit/s."""
    return f"{to_mbps(rate_bytes):6.2f}"


def print_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a plain aligned table (the harness's figure output format)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
