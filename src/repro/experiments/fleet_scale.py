"""Fleet-scale enforcement: 10^4-10^6 aggregates, sharded (§6.1 scale).

The paper's deployment rate-limits ~100k subscriber aggregates on a
single machine.  This entry point runs that population shape through the
sharded fleet driver (:mod:`repro.fleet`): the aggregate id space is
split into contiguous shards, each shard simulates its block in its own
worker process, and the streamed columnar summaries are merged into one
:class:`~repro.metrics.merge.FleetMetrics` — whose digest is
byte-identical for every shard count.

Run via the experiments CLI (``python -m repro.experiments fleet``; it is
*not* part of the default all-figures run) or standalone with richer
knobs::

    PYTHONPATH=src python -m repro.experiments.fleet_scale \
        --aggregates 100000 --shards 100 --scheme bcpqp
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, replace

from repro.experiments import common
from repro.experiments.common import ResultCache, print_table
from repro.fleet import FleetResult, FleetSpec, run_fleet
from repro.runner.journal import SweepJournal, grid_hash

__all__ = ["Config", "main", "run"]


@dataclass
class Config:
    """Default demo fleet: big enough to exercise sharding, small enough
    to finish in seconds."""

    aggregates: int = 2000
    shards: int = 4
    scheme: str = "bcpqp"
    seed: int = 1
    horizon: float = 1.2
    warmup: float = 0.2
    isolate: bool = False

    def spec(self) -> FleetSpec:
        return FleetSpec(
            aggregates=self.aggregates,
            seed=self.seed,
            scheme=self.scheme,
            horizon=self.horizon,
            warmup=self.warmup,
        )


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> FleetResult:
    """Run the fleet under the session execution options."""
    config = config or Config()
    spec = config.spec()
    if common._FORCE_VALIDATE and not spec.validate:
        spec = replace(spec, validate=True)
    if common._FORCE_BATCH is not None and spec.batch != common._FORCE_BATCH:
        spec = replace(spec, batch=common._FORCE_BATCH)
    options = common._EXECUTION
    journal = None
    if options.journal_root is not None:
        digest = grid_hash(
            "repro.fleet.shard.simulate_shard",
            [repr(spec), str(config.shards)],
        )
        journal = SweepJournal(
            options.journal_root / f"fleet-{digest[:16]}.jsonl"
        )
    retries = options.retries
    if options.supervised and retries is None:
        retries = 2
    return run_fleet(
        spec,
        shards=config.shards,
        jobs=jobs,
        cache=cache,
        retries=retries,
        task_timeout=options.task_timeout,
        journal=journal,
        fail_fast=options.fail_fast,
        isolate=config.isolate,
    )


def _report(result: FleetResult) -> None:
    m = result.metrics
    print(
        f"Fleet: {m.aggregates} aggregates ({result.total_flows} flows), "
        f"{result.shards} shard(s), scheme={m.scheme}"
    )
    print_table(
        ["metric", "value"],
        [
            ["arrived packets", f"{m.arrived_packets}"],
            ["forwarded packets", f"{m.forwarded_packets}"],
            ["drop rate", f"{m.drop_rate:.3f}"],
            ["goodput (MB)", f"{m.goodput_bytes / 1e6:.2f}"],
            ["mean normalized goodput", f"{m.mean_normalized_goodput:.3f}"],
            ["fairness across aggregates",
             f"{m.fairness_across_aggregates:.4f}"],
            ["mean intra-aggregate fairness",
             f"{m.mean_intra_aggregate_fairness:.4f}"],
            ["modeled cycles/pkt", f"{m.cycles_per_packet:.1f}"],
            ["us/pkt (sum of shard run time)",
             f"{result.us_per_packet:.2f}"],
            ["setup s (summed)", f"{result.setup_seconds:.2f}"],
            ["run s (summed)", f"{result.run_seconds:.2f}"],
            ["wall s", f"{result.wall_seconds:.2f}"],
            ["peak shard RSS (MB)",
             f"{result.peak_rss_bytes / 1e6:.1f}"],
            ["digest", m.digest[:32]],
        ],
    )


def as_json(result: FleetResult) -> dict:
    """JSON-ready fleet summary (what ``--json`` and the benchmark
    harness emit)."""
    m = result.metrics
    return {
        "aggregates": m.aggregates,
        "shards": result.shards,
        "scheme": m.scheme,
        "flows": result.total_flows,
        "arrived_packets": m.arrived_packets,
        "forwarded_packets": m.forwarded_packets,
        "dropped_packets": m.dropped_packets,
        "drop_rate": m.drop_rate,
        "goodput_bytes": m.goodput_bytes,
        "mean_normalized_goodput": m.mean_normalized_goodput,
        "fairness_across_aggregates": m.fairness_across_aggregates,
        "mean_intra_aggregate_fairness": m.mean_intra_aggregate_fairness,
        "cycles_per_packet": m.cycles_per_packet,
        "us_per_packet": result.us_per_packet,
        "setup_seconds": result.setup_seconds,
        "run_seconds": result.run_seconds,
        "wall_seconds": result.wall_seconds,
        "peak_rss_bytes": result.peak_rss_bytes,
        "peak_rss_per_shard_bytes": [
            s.peak_rss_bytes for s in result.summaries
        ],
        "digest": m.digest,
    }


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> FleetResult:
    """Run the fleet demo and print its summary table."""
    result = run(config, jobs=jobs, cache=cache)
    _report(result)
    return result


def _cli(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fleet_scale",
        description="Sharded fleet-scale rate enforcement run.",
    )
    parser.add_argument("--aggregates", "-n", type=int, default=2000)
    parser.add_argument("--shards", "-k", type=int, default=4)
    parser.add_argument("--scheme", default="bcpqp")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--horizon", type=float, default=1.2)
    parser.add_argument("--warmup", type=float, default=0.2)
    parser.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes for the shard sweep (default: serial)",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="on-disk result cache for shard summaries",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="attach the invariant checker inside every shard",
    )
    parser.add_argument(
        "--isolate", action="store_true",
        help="run every shard in a disposable supervised process "
        "(exact per-shard RSS, crash isolation)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit a JSON summary instead of the table",
    )
    args = parser.parse_args(argv)
    if args.validate:
        common.set_validate(True)
    config = Config(
        aggregates=args.aggregates,
        shards=args.shards,
        scheme=args.scheme,
        seed=args.seed,
        horizon=args.horizon,
        warmup=args.warmup,
        isolate=args.isolate,
    )
    cache = ResultCache(args.cache) if args.cache else None
    result = run(config, jobs=args.jobs, cache=cache)
    if args.json:
        json.dump(as_json(result), sys.stdout, indent=2)
        print()
    else:
        _report(result)


if __name__ == "__main__":
    _cli()
