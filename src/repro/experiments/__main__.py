"""Run every experiment in sequence: ``python -m repro.experiments``.

Prints each figure's tables back to back — the full evaluation section of
the paper, regenerated (at the documented scaled-down defaults; individual
modules accept richer configs when run directly).
"""

from __future__ import annotations

import time

from repro.experiments import (
    appendix_a,
    ext_ecn,
    ext_hash_classification,
    fig1_motivation,
    fig2_sizing,
    fig3_secondary_bottleneck,
    fig4_rate_enforcement,
    fig5_efficiency,
    fig6_policy,
    fig7_applications,
    fig9_video_timeseries,
)

_MODULES = (
    ("Figure 1", fig1_motivation),
    ("Figure 2", fig2_sizing),
    ("Figure 3", fig3_secondary_bottleneck),
    ("Figure 4", fig4_rate_enforcement),
    ("Figure 5", fig5_efficiency),
    ("Figure 6", fig6_policy),
    ("Figure 7", fig7_applications),
    ("Figure 9", fig9_video_timeseries),
    ("Appendix A", appendix_a),
    ("Extension: ECN", ext_ecn),
    ("Extension: hashed classification", ext_hash_classification),
)


def main() -> None:
    """Run all experiments, timing each."""
    grand_start = time.time()
    for label, module in _MODULES:
        print("=" * 72)
        start = time.time()
        module.main()
        print(f"[{label} done in {time.time() - start:.1f} s]")
        print()
    print("=" * 72)
    print(f"All experiments completed in {time.time() - grand_start:.1f} s.")


if __name__ == "__main__":
    main()
