"""Run experiments from the command line: ``python -m repro.experiments``.

With no arguments, prints every figure's tables back to back — the full
evaluation section of the paper, regenerated (at the documented
scaled-down defaults; individual modules accept richer configs when run
directly).  Positional arguments select figures (``fig4 fig5`` …);
``--jobs N`` fans each figure's simulation grid over N worker processes,
and ``--cache DIR`` reuses results for unchanged (config, scheme-code)
cells across invocations.  Serial runs (the default) produce output
byte-identical to the pre-runner implementation.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    appendix_a,
    ext_ecn,
    ext_hash_classification,
    fig1_motivation,
    fig2_sizing,
    fig3_secondary_bottleneck,
    fig4_rate_enforcement,
    fig5_efficiency,
    fig6_policy,
    fig7_applications,
    fig9_video_timeseries,
)
from repro.runner import ResultCache, default_jobs

_MODULES = (
    ("Figure 1", "fig1", fig1_motivation),
    ("Figure 2", "fig2", fig2_sizing),
    ("Figure 3", "fig3", fig3_secondary_bottleneck),
    ("Figure 4", "fig4", fig4_rate_enforcement),
    ("Figure 5", "fig5", fig5_efficiency),
    ("Figure 6", "fig6", fig6_policy),
    ("Figure 7", "fig7", fig7_applications),
    ("Figure 9", "fig9", fig9_video_timeseries),
    ("Appendix A", "appendix_a", appendix_a),
    ("Extension: ECN", "ext_ecn", ext_ecn),
    ("Extension: hashed classification", "ext_hash", ext_hash_classification),
)

_NAMES = tuple(name for _, name, _ in _MODULES)


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        choices=[[], *_NAMES],  # empty selection = all figures
        metavar="FIGURE",
        help=f"figures to run (default: all). Choices: {', '.join(_NAMES)}",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="fan simulation grids over N worker processes "
        "(0 = one per CPU; default: serial)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="directory for the on-disk result cache (reuses results for "
        "unchanged config + scheme code)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="attach the runtime invariant checker to every simulation "
        "(figure output is unchanged; a broken invariant aborts the run)",
    )
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> None:
    """Run the selected experiments, timing each."""
    args = _parse_args(argv)
    if args.validate:
        from repro.experiments.common import set_validate

        set_validate(True)
    jobs = default_jobs() if args.jobs == 0 else args.jobs
    try:
        cache = ResultCache(args.cache) if args.cache else None
    except OSError as exc:
        raise SystemExit(f"error: cannot use cache dir {args.cache!r}: {exc}")
    selected = set(args.figures) or set(_NAMES)
    grand_start = time.time()
    for label, name, module in _MODULES:
        if name not in selected:
            continue
        print("=" * 72)
        start = time.time()
        module.main(jobs=jobs, cache=cache)
        print(f"[{label} done in {time.time() - start:.1f} s]")
        print()
    print("=" * 72)
    print(f"All experiments completed in {time.time() - grand_start:.1f} s.")
    if cache is not None:
        print(f"[cache: {cache.hits} hits, {cache.misses} misses]")


if __name__ == "__main__":
    main()
