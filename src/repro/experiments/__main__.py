"""Run experiments from the command line: ``python -m repro.experiments``.

With no arguments, prints every figure's tables back to back — the full
evaluation section of the paper, regenerated (at the documented
scaled-down defaults; individual modules accept richer configs when run
directly).  Positional arguments select figures (``fig4 fig5`` …);
``--jobs N`` fans each figure's simulation grid over N worker processes,
and ``--cache DIR`` reuses results for unchanged (config, scheme-code)
cells across invocations.  Serial runs (the default) produce output
byte-identical to the pre-runner implementation.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    appendix_a,
    churn,
    ext_ecn,
    ext_hash_classification,
    fig1_motivation,
    fig2_sizing,
    fig3_secondary_bottleneck,
    fig4_rate_enforcement,
    fig5_efficiency,
    fig6_policy,
    fig7_applications,
    fig9_video_timeseries,
    fleet_scale,
    impairments,
)
from repro.runner import ResultCache, default_jobs

_MODULES = (
    ("Figure 1", "fig1", fig1_motivation),
    ("Figure 2", "fig2", fig2_sizing),
    ("Figure 3", "fig3", fig3_secondary_bottleneck),
    ("Figure 4", "fig4", fig4_rate_enforcement),
    ("Figure 5", "fig5", fig5_efficiency),
    ("Figure 6", "fig6", fig6_policy),
    ("Figure 7", "fig7", fig7_applications),
    ("Figure 9", "fig9", fig9_video_timeseries),
    ("Appendix A", "appendix_a", appendix_a),
    ("Extension: ECN", "ext_ecn", ext_ecn),
    ("Extension: hashed classification", "ext_hash", ext_hash_classification),
)

# On-demand entries: selectable by name but excluded from the default
# all-figures run (the fleet demo simulates thousands of aggregates; the
# impairments grid runs 18 multi-second cells and, being off the paper's
# figure list, stays opt-in so the default run remains byte-stable).
_ON_DEMAND = (
    ("Fleet scale", "fleet", fleet_scale),
    ("Impairments", "impairments", impairments),
    ("Policy churn", "churn", churn),
)

_NAMES = tuple(name for _, name, _ in _MODULES + _ON_DEMAND)
_DEFAULT_NAMES = tuple(name for _, name, _ in _MODULES)


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        choices=[[], *_NAMES],  # empty selection = all figures
        metavar="FIGURE",
        help=f"figures to run (default: all). Choices: {', '.join(_NAMES)}",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="fan simulation grids over N worker processes "
        "(0 = one per CPU; default: serial)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="directory for the on-disk result cache (reuses results for "
        "unchanged config + scheme code)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="attach the runtime invariant checker to every simulation "
        "(figure output is unchanged; a broken invariant aborts the run)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry failed/crashed/hung cells up to N times with "
        "exponential backoff (enables the supervised pool: worker "
        "crashes no longer abort the sweep)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any simulation cell exceeding this wall "
        "clock (enables the supervised pool)",
    )
    parser.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="directory of write-ahead sweep journals; completed cells "
        "are recorded as the sweep runs, and a re-run after an "
        "interruption replays them instead of re-simulating "
        "(output is byte-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the sweep on the first cell that exhausts its "
        "retries (default: finish the remaining cells, then report)",
    )
    parser.add_argument(
        "--profile",
        choices=("cprofile",),
        default=None,
        help="profile the run (forces serial execution) and print a "
        "cumulative-time table of the hottest functions afterwards, "
        "plus the batched-delivery entry points broken out",
    )
    batching = parser.add_mutually_exclusive_group()
    batching.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="cap delivery batches at N packets per drain (default: "
        "unbounded; output is byte-identical for every setting)",
    )
    batching.add_argument(
        "--no-batch",
        action="store_true",
        help="run the legacy per-packet delivery engine (same as "
        "--batch 1)",
    )
    args = parser.parse_args(argv)
    if args.batch is not None and args.batch < 1:
        parser.error("--batch must be at least 1")
    return args


def main(argv: list[str] | None = None) -> None:
    """Run the selected experiments, timing each."""
    args = _parse_args(argv)
    if args.validate:
        from repro.experiments.common import set_validate

        set_validate(True)
    if args.no_batch or args.batch is not None:
        from repro.experiments.common import set_batch

        set_batch(1 if args.no_batch else args.batch)
    supervised = (
        args.retries is not None
        or args.task_timeout is not None
        or args.resume is not None
        or args.fail_fast
    )
    if supervised:
        from repro.experiments.common import set_execution

        set_execution(
            retries=args.retries,
            task_timeout=args.task_timeout,
            fail_fast=args.fail_fast,
            journal_root=args.resume,
        )
    jobs = default_jobs() if args.jobs == 0 else args.jobs
    if args.profile:
        # Worker processes would escape the profiler; run in-process.
        jobs = None
    try:
        cache = ResultCache(args.cache) if args.cache else None
    except OSError as exc:
        raise SystemExit(f"error: cannot use cache dir {args.cache!r}: {exc}")
    selected = set(args.figures) or set(_DEFAULT_NAMES)
    grand_start = time.time()
    profiler = None
    if args.profile == "cprofile":
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        for label, name, module in _MODULES + _ON_DEMAND:
            if name not in selected:
                continue
            print("=" * 72)
            start = time.time()
            module.main(jobs=jobs, cache=cache)
            print(f"[{label} done in {time.time() - start:.1f} s]")
            print()
    finally:
        if profiler is not None:
            profiler.disable()
            import pstats

            print("=" * 72)
            print("cProfile: top 30 functions by cumulative time")
            stats = pstats.Stats(profiler).sort_stats("cumulative")
            stats.print_stats(30)
            # The batched packet path runs inside distinct drain frames
            # (deliver_batch / receive_batch / drain_coalesced / the
            # fused endpoint loops), so batching cost is attributable
            # separately from per-packet work.
            print("cProfile: batched-delivery entry points")
            stats.print_stats(
                r"deliver_batch|receive_batch|drain_coalesced"
                r"|_ack_fast|_try_send_fast|receive_one|receive_fast"
            )
    print("=" * 72)
    print(f"All experiments completed in {time.time() - grand_start:.1f} s.")
    if cache is not None:
        corrupt = f", {cache.corrupt} corrupt" if cache.corrupt else ""
        print(f"[cache: {cache.hits} hits, {cache.misses} misses{corrupt}]")
    if supervised:
        from repro.runner.supervisor import session_stats

        stats = session_stats()
        print(
            f"[sweep: {stats['replayed']} replayed, "
            f"{stats['retries']} retries, {stats['crashes']} crashes, "
            f"{stats['timeouts']} timeouts, "
            f"{stats['failed_cells']} failed cells]"
        )


if __name__ == "__main__":
    main()
