"""Figure 7: real-world application QoE under rate enforcement (§6.4).

* **7a — video streaming**: a 3 Mbps subscriber rate shared between an ABR
  video session and the rest of the user's traffic (a bulk download).
  Status-quo enforcement (plain policer, single-queue shaper) either lets
  the video hog the rate or starves it; BC-PQP gives per-class fairness
  *and* high video quality.  Run per service profile: YouTube ≈ BBR,
  Netflix ≈ New Reno.
* **7b — web browsing**: 3 Mbps shared 4:1 (bulk download : web browsing)
  via weighted policies; page-load-time CDFs with BC-PQP and a DRR shaper
  versus the status-quo policer / single-queue shaper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cc.endpoint import FlowDemux
from repro.experiments.common import (
    MEASUREMENT_WINDOW,
    ResultCache,
    print_table,
    run_cells,
)
from repro.metrics.fairness import jain_index
from repro.metrics.stats import percentile
from repro.metrics.throughput import per_slot_throughput_series
from repro.net.packet import FlowId
from repro.net.trace import Trace
from repro.schemes import make_limiter
from repro.sim.simulator import Simulator
from repro.units import mbps, ms
from repro.wiring import wire_flow
from repro.workload.video import VideoConfig, VideoSession
from repro.workload.web import WebConfig, WebSession

#: The §6.4 enforcement schemes (status quo first).
SCHEMES = ("policer", "shaper-fifo", "shaper", "bcpqp")

#: Service transport profiles (§3.5: YouTube uses BBR, Netflix New Reno).
SERVICES = {"youtube": "bbr", "netflix": "reno"}


@dataclass
class Config:
    """§6.4 parameters (3 Mbps subscriber rate, as in the paper)."""

    rate: float = mbps(3)
    rtt: float = ms(40)
    video_chunks: int = 20
    web_pages: int = 15
    horizon: float = 120.0
    seed: int = 1
    #: 7b's bulk:web weighted split.
    bulk_web_weights: tuple[float, float] = (4.0, 1.0)
    #: 7b's bulk download transport.  BBR is the interesting regime: it
    #: does not yield to loss, so the status-quo schemes starve the web
    #: class entirely while weighted BC-PQP/DRR protect it.
    bulk_cc: str = "bbr"


@dataclass
class VideoOutcome:
    """7a: one (scheme, service) cell."""

    average_quality: float
    average_bitrate_mbps: float
    rebuffer_seconds: float
    fairness: float


@dataclass
class Result:
    """Figure 7 outputs."""

    # 7a: (scheme, service) -> outcome
    video: dict[tuple[str, str], VideoOutcome] = field(default_factory=dict)
    # 7b: scheme -> (p50 PLT, p90 PLT, pages completed)
    web: dict[str, tuple[float, float, int]] = field(default_factory=dict)


def _make_path(scheme: str, config: Config, *, weights=None):
    sim = Simulator()
    limiter = make_limiter(
        sim,
        scheme,
        rate=config.rate,
        num_queues=2,
        max_rtt=config.rtt,
        weights=list(weights) if weights else None,
    )
    demux = FlowDemux()
    trace = Trace(sim, demux, data_only=True)
    limiter.connect(trace)
    return sim, limiter, demux, trace


@dataclass(frozen=True)
class VideoCell:
    """One 7a simulation: ``scheme`` enforcing a ``cc`` video session."""

    scheme: str
    service: str
    cc: str
    config: Config


@dataclass(frozen=True)
class WebCell:
    """One 7b simulation: ``scheme`` enforcing the bulk/web split."""

    scheme: str
    config: Config


def simulate_video_cell(cell: VideoCell) -> VideoOutcome:
    """Worker entry for one 7a cell (picklable in and out)."""
    config = cell.config
    sim, limiter, demux, trace = _make_path(cell.scheme, config)
    video = VideoSession(
        sim,
        ingress=limiter,
        demux=demux,
        slot=0,
        config=VideoConfig(
            total_chunks=config.video_chunks, cc=cell.cc, rtt=config.rtt
        ),
    )
    # "The rest of the traffic": a backlogged bulk download.
    wire_flow(
        sim,
        FlowId(0, 1, 0),
        cc="cubic",
        rtt=config.rtt,
        ingress=limiter,
        demux=demux,
        packets=None,
        start=0.0,
    )
    sim.run(until=config.horizon)
    # Measure only while the video session is active (a finished
    # video would dilute the shares with download-only windows).
    video_end = max(
        (t for t, f in zip(trace.times, trace.flow_ids) if f.slot == 0),
        default=config.horizon,
    )
    slots = per_slot_throughput_series(
        trace,
        window=MEASUREMENT_WINDOW,
        start=5.0,
        end=max(video_end, 10.0),
    )
    shares = [slots[s].mean() if s in slots else 0.0 for s in (0, 1)]
    return VideoOutcome(
        average_quality=video.stats.average_quality(),
        average_bitrate_mbps=video.stats.average_bitrate(
            video.config.ladder_mbps
        ),
        rebuffer_seconds=video.stats.rebuffer_seconds,
        fairness=jain_index(shares),
    )


def simulate_web_cell(cell: WebCell) -> tuple[float, float, int]:
    """Worker entry for one 7b cell: (p50 PLT, p90 PLT, pages done)."""
    config = cell.config
    sim, limiter, demux, _trace = _make_path(
        cell.scheme, config, weights=config.bulk_web_weights
    )
    wire_flow(
        sim,
        FlowId(0, 0, 0),
        cc=config.bulk_cc,
        rtt=config.rtt,
        ingress=limiter,
        demux=demux,
        packets=None,
        start=0.0,
    )
    web = WebSession(
        sim,
        ingress=limiter,
        demux=demux,
        slot=1,
        rng=random.Random(config.seed),
        config=WebConfig(pages=config.web_pages, rtt=config.rtt),
    )
    sim.run(until=config.horizon)
    plts = web.stats.plts()
    if plts:
        return (percentile(plts, 50), percentile(plts, 90), len(plts))
    return (float("inf"), float("inf"), 0)


def video_grid(config: Config) -> list[VideoCell]:
    """7a cells in report order: service-major, scheme-minor."""
    return [
        VideoCell(scheme=scheme, service=service, cc=cc, config=config)
        for service, cc in SERVICES.items()
        for scheme in SCHEMES
    ]


def web_grid(config: Config) -> list[WebCell]:
    """7b cells: one per scheme."""
    return [WebCell(scheme=scheme, config=config) for scheme in SCHEMES]


def run_video(
    config: Config,
    result: Result,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> None:
    """7a: video session (slot 0) vs bulk download (slot 1)."""
    cells = video_grid(config)
    outcomes = run_cells(simulate_video_cell, cells, jobs=jobs, cache=cache)
    for cell, outcome in zip(cells, outcomes):
        result.video[(cell.scheme, cell.service)] = outcome


def run_web(
    config: Config,
    result: Result,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> None:
    """7b: bulk download (slot 0, weight 4) vs web browsing (slot 1)."""
    cells = web_grid(config)
    outcomes = run_cells(simulate_web_cell, cells, jobs=jobs, cache=cache)
    for cell, outcome in zip(cells, outcomes):
        result.web[cell.scheme] = outcome


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Run both application studies."""
    config = config or Config()
    result = Result()
    run_video(config, result, jobs=jobs, cache=cache)
    run_web(config, result, jobs=jobs, cache=cache)
    return result


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Print the Figure 7 tables."""
    config = config or Config()
    result = run(config, jobs=jobs, cache=cache)
    print("Figure 7a: video quality vs fairness at 3 Mbps")
    rows = []
    for (scheme, service), o in result.video.items():
        rows.append([
            scheme, service, f"{o.average_bitrate_mbps:.2f}",
            f"{o.average_quality:.2f}", f"{o.rebuffer_seconds:.1f}",
            f"{o.fairness:.3f}",
        ])
    print_table(
        ["scheme", "service", "avg Mbps", "avg rung", "rebuffer s", "jain"],
        rows,
    )
    print()
    print("Figure 7b: page load times, bulk:web shared 4:1 at 3 Mbps "
          "(bulk uses BBR)")
    print_table(
        ["scheme", "p50 PLT (s)", "p90 PLT (s)", "pages done"],
        [
            [s, f"{p50:.2f}", f"{p90:.2f}", str(n)]
            for s, (p50, p90, n) in result.web.items()
        ],
    )
    return result


if __name__ == "__main__":
    main()
