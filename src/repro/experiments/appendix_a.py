"""Appendix A: empirical check of the Reno phantom-buffer bound.

For several (rate, RTT) points, sweep the phantom-buffer size around the
analytic minimum ``BDP^2/18 x MSS`` and verify the knee: buffers below the
bound under-enforce, buffers at/above it achieve the rate.  Also checks
the steady-state rate oscillation stays within roughly [2r/3, 4r/3].
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sizing import reno_min_phantom_buffer, reno_steady_rate_bounds
from repro.experiments.common import (
    AggregateConfig,
    ResultCache,
    print_table,
    run_aggregates,
)
from repro.metrics.stats import percentile
from repro.units import mbps, ms, to_mbps
from repro.workload.spec import FlowSpec


@dataclass
class Config:
    """Sweep grid (kept small; each point is a full TCP simulation)."""

    points: tuple[tuple[float, float], ...] = (
        (mbps(10), ms(100)),
        (mbps(25), ms(50)),
        (mbps(5), ms(80)),
    )
    #: Buffer sizes as multiples of the analytic minimum.
    multipliers: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)
    horizon: float = 40.0
    warmup: float = 10.0
    seed: int = 1


@dataclass
class PointResult:
    """One (rate, rtt) sweep."""

    rate: float
    rtt: float
    analytic_min: float
    # multiplier -> achieved/enforced ratio
    achieved: dict[float, float] = field(default_factory=dict)
    # at the largest buffer: (p10, p90) of windowed rate / r
    oscillation: tuple[float, float] = (0.0, 0.0)


def grid(config: Config) -> list[AggregateConfig]:
    """One PQP cell per (rate, rtt) point and buffer multiplier."""
    cells = []
    for rate, rtt in config.points:
        b_min = reno_min_phantom_buffer(rate, rtt)
        specs = (FlowSpec(slot=0, cc="reno", rtt=rtt),)
        cells.extend(
            AggregateConfig(
                scheme="pqp",
                specs=specs,
                rate=rate,
                max_rtt=rtt,
                horizon=config.horizon,
                warmup=config.warmup,
                seed=config.seed,
                queue_bytes=mult * b_min,
            )
            for mult in config.multipliers
        )
    return cells


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[PointResult]:
    """Run the sweep for every grid point."""
    config = config or Config()
    results = []
    outcomes = iter(run_aggregates(grid(config), jobs=jobs, cache=cache))
    for rate, rtt in config.points:
        b_min = reno_min_phantom_buffer(rate, rtt)
        point = PointResult(rate=rate, rtt=rtt, analytic_min=b_min)
        for mult in config.multipliers:
            agg = next(outcomes)
            point.achieved[mult] = agg.aggregate_series.mean() / rate
            if mult == max(config.multipliers):
                normalized = [v / rate for v in agg.aggregate_series.values]
                point.oscillation = (
                    percentile(normalized, 10),
                    percentile(normalized, 90),
                )
        results.append(point)
    return results


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[PointResult]:
    """Print the Appendix A verification table."""
    config = config or Config()
    results = run(config, jobs=jobs, cache=cache)
    lo, hi = reno_steady_rate_bounds(1.0)
    print("Appendix A: Reno needs B >= BDP^2/18 x MSS")
    print(f"(steady-state oscillation bounds: {lo:.2f}r .. {hi:.2f}r)")
    rows = []
    for p in results:
        rows.append([
            f"{to_mbps(p.rate):g} Mbps / {p.rtt * 1e3:g} ms",
            f"{p.analytic_min / 1e3:.0f} KB",
        ] + [f"{p.achieved[m]:.3f}" for m in sorted(p.achieved)] + [
            f"[{p.oscillation[0]:.2f}, {p.oscillation[1]:.2f}]",
        ])
    print_table(
        ["rate / RTT", "B_min"] +
        [f"{m:g}x" for m in sorted(config.multipliers)] +
        ["oscillation (p10, p90)"],
        rows,
    )
    return results


if __name__ == "__main__":
    main()
