"""Figure 1: the shaper/policer trade-off that motivates BC-PQP.

* **1a** — a shaper enforces per-flow fairness at a high CPU cost per
  packet; a policer is cheap but unfair.
* **1b** — a token-bucket policer's bucket size trades steady-state rate
  accuracy against burst: small buckets under-enforce, liberal buckets
  burst far above the rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    AggregateConfig,
    ResultCache,
    print_table,
    run_aggregates,
)
from repro.units import mbps, ms, to_mbps
from repro.workload.spec import FlowSpec


@dataclass
class Config:
    """Scaled-down defaults (paper setup: DPDK middlebox microbenchmark)."""

    rate: float = mbps(10)
    ccs: tuple[str, ...] = ("reno", "cubic", "bbr", "vegas")
    rtts: tuple[float, ...] = (ms(10), ms(20), ms(30), ms(40))
    horizon: float = 15.0
    warmup: float = 5.0
    #: Bucket sweep for 1b, as multiples of the BDP at rtt_1b.
    bucket_multipliers: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
    rtt_1b: float = ms(50)
    seed: int = 1


@dataclass
class Result:
    """Figure 1 outputs."""

    fairness: dict[str, float] = field(default_factory=dict)
    cycles_per_packet: dict[str, float] = field(default_factory=dict)
    # 1b: bucket multiplier -> (avg normalized rate, peak normalized rate)
    bucket_tradeoff: dict[float, tuple[float, float]] = field(
        default_factory=dict
    )


#: Schemes contrasted in 1a.
_SCHEMES_1A = ("shaper", "policer")


def grid(config: Config) -> list[AggregateConfig]:
    """The 1a scheme pair followed by the 1b bucket sweep."""
    specs = tuple(
        FlowSpec(slot=i, cc=cc, rtt=rtt)
        for i, (cc, rtt) in enumerate(zip(config.ccs, config.rtts))
    )
    cells = [
        AggregateConfig(
            scheme=scheme,
            specs=specs,
            rate=config.rate,
            max_rtt=max(config.rtts),
            horizon=config.horizon,
            warmup=config.warmup,
            seed=config.seed,
        )
        for scheme in _SCHEMES_1A
    ]
    bdp = config.rate * config.rtt_1b
    single = (FlowSpec(slot=0, cc="reno", rtt=config.rtt_1b),)
    cells.extend(
        AggregateConfig(
            scheme="policer",
            specs=single,
            rate=config.rate,
            max_rtt=config.rtt_1b,
            horizon=config.horizon,
            warmup=config.warmup,
            seed=config.seed,
            queue_bytes=mult * bdp,
        )
        for mult in config.bucket_multipliers
    )
    return cells


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Run both motivation microbenchmarks."""
    config = config or Config()
    result = Result()
    outcomes = iter(run_aggregates(grid(config), jobs=jobs, cache=cache))

    for scheme in _SCHEMES_1A:
        agg = next(outcomes)
        result.fairness[scheme] = agg.fairness
        result.cycles_per_packet[scheme] = agg.cycles_per_packet

    for mult in config.bucket_multipliers:
        agg = next(outcomes)
        result.bucket_tradeoff[mult] = (
            agg.mean_normalized_throughput,
            agg.peak_normalized_throughput,
        )
    return result


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Print the Figure 1 tables."""
    config = config or Config()
    result = run(config, jobs=jobs, cache=cache)
    print(f"Figure 1a: fairness vs CPU cost, {to_mbps(config.rate):.0f} Mbps, "
          f"4 CC algorithms")
    print_table(
        ["scheme", "jain_fairness", "cycles/pkt"],
        [
            [s, f"{result.fairness[s]:.3f}",
             f"{result.cycles_per_packet[s]:.1f}"]
            for s in ("shaper", "policer")
        ],
    )
    print()
    print("Figure 1b: policer bucket size trade-off (single Reno flow)")
    print_table(
        ["bucket (xBDP)", "avg rate (xr)", "peak rate (xr)"],
        [
            [f"{m:g}", f"{avg:.3f}", f"{peak:.2f}"]
            for m, (avg, peak) in sorted(result.bucket_tradeoff.items())
        ],
    )
    return result


if __name__ == "__main__":
    main()
