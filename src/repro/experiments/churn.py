"""Live policy churn: enforcement under continuous reconfiguration.

The paper's evaluation holds each aggregate's policy fixed for the whole
run; a production enforcer sees the opposite — rate-plan upgrades,
queue-weight edits and buffer resizes land *while traffic flows*, through
the transactional :meth:`~repro.limiters.base.RateLimiter.apply_update`
path (:mod:`repro.churn`).  Three questions, three legs:

* **Disruption sweep** — each scheme re-runs the core enforcement
  comparison while a deterministic :class:`~repro.churn.ChurnPlan`
  mutates weights, priorities, queue counts and capacities mid-run (the
  enforced rate itself is held fixed, so *enforcement error* stays
  ``|mean normalized throughput - 1|``).  Schemes that cannot express a
  mutation reject it with a typed error and keep running — the
  applied/rejected split is part of the comparison.  Capacity actions
  scale the *current* buffers, so a heavy plan can compound them far
  above the sized value; that is where the schemes separate — plain PQP
  over-admits into the inflated phantoms while BC-PQP's windowed burst
  controller keeps enforcement tight through the same plan.
* **Fleet churn throughput** — a sharded fleet where every aggregate
  carries its own plan, pushing the *population* past a thousand plan
  changes per simulated second; goodput with churn is compared against
  the identical churn-free fleet.
* **Mice/elephant reclassification** — a closed control loop
  (:class:`ReclassifyController`) watches delivered per-slot rates and
  live-demotes elephants via weight updates, the canonical "policy-rich"
  use the churn machinery exists for.  Reported as the mice slots' share
  of goodput with the controller on vs off.  The comparison doubles as a
  fairness probe: a WFQ shaper already equalizes the short-RTT elephant,
  so its controller stays quiet, while BC-PQP's approximate
  phantom-queue sharing lets the elephant over-deliver until the
  controller claws it back.

Run via ``python -m repro.experiments churn`` (on-demand; not part of
the default all-figures run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.churn import ChurnPlan, PolicyUpdate, UpdateRejected, draw_plan
from repro.experiments.common import (
    AggregateConfig,
    ResultCache,
    print_table,
    run_aggregates,
)
from repro.fleet import FleetSpec, run_fleet
from repro.net.trace import Trace
from repro.runner.aggregate import build_scenario, measure
from repro.sim.simulator import Simulator
from repro.sim.timer import Timer
from repro.units import mbps, ms, to_mbps
from repro.workload.spec import FlowSpec


@dataclass
class Config:
    """Churn-workload parameters (defaults sized for a few minutes)."""

    rate: float = mbps(5.0)
    ccs: tuple[str, ...] = ("reno", "cubic")
    rtts: tuple[float, ...] = (ms(20), ms(40))
    sizing_rtt: float = ms(100)
    horizon: float = 12.0
    warmup: float = 2.0
    seed: int = 1
    #: Disruption-sweep plan sizes (label, actions over the horizon).
    intensities: tuple[tuple[str, int], ...] = (
        ("none", 0),
        ("light", 6),
        ("heavy", 24),
    )
    # -- fleet leg: population-scale churn throughput ------------------
    fleet_aggregates: int = 600
    fleet_actions: int = 4
    fleet_shards: int = 4
    fleet_horizon: float = 1.2
    fleet_warmup: float = 0.2
    # -- reclassification control loop ---------------------------------
    control_period: float = 0.5
    elephant_rtt: float = ms(10)
    mice_rtts: tuple[float, ...] = (ms(60), ms(70), ms(80))
    #: A slot is an elephant when its delivered bytes this period exceed
    #: ``factor x`` its entitlement under the weights in force.
    elephant_factor: float = 1.4
    mouse_weight: float = 4.0
    demote_weight: float = 1.0


#: Sweep schemes, paper order: the two phantom-queue designs first, then
#: the classical baselines.
_SCHEMES = ("bcpqp", "pqp", "fairpolicer", "policer", "shaper")

#: Disruption-sweep mutation kinds.  ``rate`` is deliberately excluded:
#: holding the enforced rate fixed keeps ``|mean_norm - 1|`` meaningful
#: as enforcement error while everything *around* the rate churns.
_SWEEP_KINDS = ("weights", "priorities", "resize", "capacity", "noop")

#: Control-loop schemes: the weight-capable enforcers the reclassifier
#: can actually steer.
_CONTROL_SCHEMES = ("bcpqp", "shaper")


@dataclass
class Result:
    """Everything the three legs measure."""

    #: Mean normalized throughput keyed by (scheme, intensity label).
    mean_norm: dict[tuple[str, str], float] = field(default_factory=dict)
    #: Enforcement error ``|mean_norm - 1|`` keyed the same way.
    error: dict[tuple[str, str], float] = field(default_factory=dict)
    #: Plan actions committed / typed-rejected, keyed the same way.
    applied: dict[tuple[str, str], int] = field(default_factory=dict)
    rejected: dict[tuple[str, str], int] = field(default_factory=dict)
    # -- fleet leg -----------------------------------------------------
    fleet_clean_norm: float = 0.0
    fleet_churn_norm: float = 0.0
    fleet_applied: int = 0
    fleet_rejected: int = 0
    #: Committed plan changes per simulated second across the fleet.
    fleet_changes_per_s: float = 0.0
    # -- control loop --------------------------------------------------
    #: Mice goodput share keyed by (scheme, controlled?).
    mice_share: dict[tuple[str, bool], float] = field(default_factory=dict)
    #: (weight updates applied, reclassification flips) per scheme.
    control_updates: dict[str, tuple[int, int]] = field(default_factory=dict)


def sweep_plan(config: Config, label: str, actions: int) -> ChurnPlan | None:
    """The disruption-sweep plan for one intensity, or ``None`` for the
    churn-free baseline.

    One plan per intensity, shared by every scheme, so the schemes face
    *identical* mutation sequences; a scheme that cannot express an
    action records a typed rejection instead (part of the comparison).
    """
    if actions == 0:
        return None
    rng = Random(f"churn-sweep-{config.seed}-{label}")
    return draw_plan(
        rng,
        num_queues=len(config.ccs),
        rate=config.rate,
        horizon=config.horizon,
        actions=actions,
        kinds=_SWEEP_KINDS,
    )


def grid(config: Config) -> list[AggregateConfig]:
    """Schemes x churn intensities over one shared workload."""
    specs = tuple(
        FlowSpec(slot=i, cc=cc, rtt=rtt)
        for i, (cc, rtt) in enumerate(zip(config.ccs, config.rtts))
    )
    return [
        AggregateConfig(
            scheme=scheme,
            specs=specs,
            rate=config.rate,
            max_rtt=config.sizing_rtt,
            horizon=config.horizon,
            warmup=config.warmup,
            seed=config.seed,
            churn=sweep_plan(config, label, actions),
        )
        for scheme in _SCHEMES
        for label, actions in config.intensities
    ]


class ReclassifyController:
    """Closed-loop mice/elephant reclassification over live weight updates.

    Every ``period`` the controller reads the *delivered* bytes each slot
    accumulated since the last tick (incrementally, off the shared
    receiver :class:`~repro.net.trace.Trace` — no per-tick rescan) and
    classifies as elephants the slots delivering more than ``factor x``
    their current *entitlement* — their share of the enforced rate under
    the weights in force, not the unweighted ``1/n`` (judging a demoted
    slot against the full fair share would re-trigger on slots already
    being squeezed).  Demotion is **sticky** — once demoted, a slot stays
    demoted (the ISP billing-period model).  The one-way rule matters for
    stability: delivered share is measured *after* enforcement, so a
    freshly demoted elephant immediately drops below the threshold and a
    memoryless classifier would promote it right back, flapping forever.
    When the elephant set grows the controller commits one transactional
    weight update; an unchanged classification applies nothing, so a
    converged system goes quiet instead of re-writing identical weights
    forever.
    """

    def __init__(
        self,
        sim: Simulator,
        limiter,
        trace: Trace,
        num_slots: int,
        *,
        period: float,
        factor: float,
        mouse_weight: float,
        demote_weight: float,
    ) -> None:
        self._limiter = limiter
        self._trace = trace
        self._n = num_slots
        self._period = period
        self._factor = factor
        self._mouse = mouse_weight
        self._demote = demote_weight
        self._cursor = 0
        self._elephants: frozenset[int] = frozenset()
        #: Weight updates committed / typed-rejected / classification flips.
        self.applied = 0
        self.rejected = 0
        self.reclassifications = 0
        self._timer = Timer(sim, self._tick)
        self._timer.schedule_after(period)

    def _tick(self) -> None:
        trace = self._trace
        counts = [0.0] * self._n
        end = len(trace.times)
        for i in range(self._cursor, end):
            counts[trace.flow_ids[i].slot] += trace.sizes[i]
        self._cursor = end
        total = sum(counts)
        if total > 0.0:
            weights = [
                self._demote if slot in self._elephants else self._mouse
                for slot in range(self._n)
            ]
            entitlement = sum(weights)
            elephants = self._elephants | frozenset(
                slot
                for slot, delivered in enumerate(counts)
                if delivered / total
                > self._factor * weights[slot] / entitlement
            )
            if elephants != self._elephants:
                self.reclassifications += 1
                weights = tuple(
                    self._demote if slot in elephants else self._mouse
                    for slot in range(self._n)
                )
                try:
                    self._limiter.apply_update(PolicyUpdate(weights=weights))
                except UpdateRejected:
                    self.rejected += 1
                else:
                    self.applied += 1
                    self._elephants = elephants
        self._timer.schedule_after(self._period)


def _mice_share(outcome, mice_slots: tuple[int, ...]) -> float:
    """Mice slots' share of total mean per-slot goodput."""
    means = {slot: s.mean() for slot, s in outcome.slot_series.items()}
    total = sum(means.values())
    if total <= 0.0:
        return 0.0
    return sum(means[slot] for slot in mice_slots) / total


def run_control_cell(
    config: Config, scheme: str, *, control: bool
) -> tuple[object, ReclassifyController | None]:
    """One reclassification run (in-process: the controller needs the
    live limiter and receiver trace)."""
    rtts = (config.elephant_rtt, *config.mice_rtts)
    specs = tuple(
        FlowSpec(slot=i, cc="reno", rtt=rtt) for i, rtt in enumerate(rtts)
    )
    agg = AggregateConfig(
        scheme=scheme,
        specs=specs,
        rate=config.rate,
        max_rtt=config.sizing_rtt,
        horizon=config.horizon,
        warmup=config.warmup,
        seed=config.seed,
    )
    sim = Simulator()
    limiter, scenario = build_scenario(agg, sim)
    controller = None
    if control:
        controller = ReclassifyController(
            sim,
            limiter,
            scenario.trace,
            len(specs),
            period=config.control_period,
            factor=config.elephant_factor,
            mouse_weight=config.mouse_weight,
            demote_weight=config.demote_weight,
        )
    scenario.run()
    return measure(agg, limiter, scenario), controller


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Run all three churn legs and collect the comparison numbers."""
    config = config or Config()
    result = Result()

    # Leg 1: per-scheme disruption sweep (cacheable grid).
    outcomes = run_aggregates(grid(config), jobs=jobs, cache=cache)
    cells = [
        (scheme, label)
        for scheme in _SCHEMES
        for label, _actions in config.intensities
    ]
    for key, agg in zip(cells, outcomes):
        result.mean_norm[key] = agg.mean_normalized_throughput
        result.error[key] = abs(agg.mean_normalized_throughput - 1.0)
        result.applied[key] = agg.updates_applied
        result.rejected[key] = agg.updates_rejected

    # Leg 2: fleet churn throughput (every aggregate mutating).
    base = FleetSpec(
        aggregates=config.fleet_aggregates,
        seed=config.seed,
        horizon=config.fleet_horizon,
        warmup=config.fleet_warmup,
    )
    churned = FleetSpec(
        aggregates=config.fleet_aggregates,
        seed=config.seed,
        horizon=config.fleet_horizon,
        warmup=config.fleet_warmup,
        churn_actions=config.fleet_actions,
    )
    clean = run_fleet(base, shards=config.fleet_shards, jobs=jobs, cache=cache)
    hot = run_fleet(churned, shards=config.fleet_shards, jobs=jobs, cache=cache)
    result.fleet_clean_norm = clean.metrics.mean_normalized_goodput
    result.fleet_churn_norm = hot.metrics.mean_normalized_goodput
    result.fleet_applied = hot.metrics.updates_applied
    result.fleet_rejected = hot.metrics.updates_rejected
    result.fleet_changes_per_s = (
        hot.metrics.updates_applied / config.fleet_horizon
    )

    # Leg 3: mice/elephant reclassification control loop.
    mice_slots = tuple(range(1, 1 + len(config.mice_rtts)))
    for scheme in _CONTROL_SCHEMES:
        for control in (False, True):
            outcome, controller = run_control_cell(
                config, scheme, control=control
            )
            result.mice_share[(scheme, control)] = _mice_share(
                outcome, mice_slots
            )
            if controller is not None:
                result.control_updates[scheme] = (
                    controller.applied,
                    controller.reclassifications,
                )
    return result


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Print the churn-workload comparison."""
    config = config or Config()
    result = run(config, jobs=jobs, cache=cache)

    print(
        f"Churn: {to_mbps(config.rate):.1f} Mbps enforced while the "
        f"policy mutates mid-run (weights/priorities/resizes/capacities)"
    )
    rows = []
    for label, actions in config.intensities:
        row = [f"{label} ({actions})"]
        for scheme in _SCHEMES:
            key = (scheme, label)
            row.append(
                f"{result.mean_norm[key]:.3f}"
                f" [{result.applied[key]}/{result.rejected[key]}]"
            )
        rows.append(row)
    print_table(
        ["plan"] + [f"{s} norm [ok/rej]" for s in _SCHEMES],
        rows,
    )

    print()
    changes = config.fleet_aggregates * config.fleet_actions
    print(
        f"Fleet churn throughput: {config.fleet_aggregates} aggregates, "
        f"{changes} plan changes over {config.fleet_horizon:.1f} s "
        f"simulated ({config.fleet_shards} shards)"
    )
    print_table(
        ["metric", "value"],
        [
            ["mean norm goodput (clean)", f"{result.fleet_clean_norm:.3f}"],
            ["mean norm goodput (churned)", f"{result.fleet_churn_norm:.3f}"],
            ["updates applied / rejected",
             f"{result.fleet_applied} / {result.fleet_rejected}"],
            ["plan changes applied per sim s",
             f"{result.fleet_changes_per_s:.0f}"],
        ],
    )

    print()
    print(
        f"Mice/elephant reclassification: 1 elephant "
        f"(rtt {config.elephant_rtt * 1e3:.0f} ms) vs "
        f"{len(config.mice_rtts)} mice, control period "
        f"{config.control_period * 1e3:.0f} ms"
    )
    rows = []
    for scheme in _CONTROL_SCHEMES:
        applied, flips = result.control_updates.get(scheme, (0, 0))
        rows.append([
            scheme,
            f"{result.mice_share[(scheme, False)]:.3f}",
            f"{result.mice_share[(scheme, True)]:.3f}",
            f"{applied}",
            f"{flips}",
        ])
    print_table(
        ["scheme", "mice share (open loop)", "mice share (controlled)",
         "weight updates", "reclassifications"],
        rows,
    )
    return result


if __name__ == "__main__":
    main()
