"""Impairments: rate enforcement over lossy, jittery and bursty-loss paths.

The paper's testbed links are clean; real subscriber paths are not.  This
experiment re-runs the core enforcement comparison (BC-PQP vs a token
bucket policer vs a shaper) with impairment channels on the access side
of the limiter: i.i.d. loss, Gilbert-Elliott bursty loss, jitter with
reordering, and combinations.

Two questions:

* **Goodput under impairment** — phantom queues make *drop* decisions
  from simulated occupancy; path loss upstream of the limiter thins the
  arrival process the phantoms see.  Does BC-PQP still let flows reach
  the enforced rate when the path itself is eating packets, and does it
  degrade more or less than the policer/shaper?
* **Burst-control false triggers** — loss-recovery retransmission bursts
  (slow-start restarts after RTO, RACK-triggered fast retransmits) look
  locally like the bursts BC-PQP's windowed controller exists to clip.
  ``magic fills``/``reclaims`` per second under each impairment measure
  how often the controller actually fires when the "bursts" are just
  recovery — on a clean path the controller should be near-quiet at
  steady state, and impairments should not turn it into a flapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    AggregateConfig,
    ResultCache,
    print_table,
    run_aggregates,
)
from repro.net.impair import ImpairmentSpec
from repro.units import mbps, ms, to_mbps
from repro.workload.spec import FlowSpec


@dataclass
class Config:
    """Impairments-grid parameters."""

    rate: float = mbps(5.0)
    ccs: tuple[str, ...] = ("reno", "cubic")
    rtts: tuple[float, ...] = (ms(20), ms(40))
    sizing_rtt: float = ms(100)
    horizon: float = 20.0
    warmup: float = 5.0
    seed: int = 1


#: The impairment conditions, mildest first.  Severities follow common
#: emulation settings (netem loss 1-3%, GE with short high-loss bad
#: periods, jitter a fraction of the base RTT).
CONDITIONS: tuple[tuple[str, ImpairmentSpec | None], ...] = (
    ("clean", None),
    ("loss 1%", ImpairmentSpec(loss=0.01)),
    ("loss 3%", ImpairmentSpec(loss=0.03)),
    ("GE bursty", ImpairmentSpec(ge=(0.01, 0.3, 0.0, 0.5))),
    ("jitter+reorder", ImpairmentSpec(jitter=0.005, reorder=0.05,
                                      reorder_extra=0.005)),
    ("loss+jitter", ImpairmentSpec(loss=0.02, jitter=0.005, reorder=0.02,
                                   reorder_extra=0.005)),
)

_SCHEMES = ("bcpqp", "policer", "shaper")


@dataclass
class Result:
    """Per (scheme, condition): goodput and burst-control activity."""

    #: Mean normalized throughput keyed by (scheme, condition label).
    mean_norm: dict[tuple[str, str], float] = field(default_factory=dict)
    #: Limiter drop rate keyed the same way.
    drop_rate: dict[tuple[str, str], float] = field(default_factory=dict)
    #: Burst-control fills+reclaims per measured second (bcpqp only;
    #: zero for the baselines).
    magic_per_s: dict[tuple[str, str], float] = field(default_factory=dict)


def grid(config: Config) -> list[AggregateConfig]:
    """Schemes x impairment conditions over one shared workload."""
    specs = tuple(
        FlowSpec(slot=i, cc=cc, rtt=rtt)
        for i, (cc, rtt) in enumerate(zip(config.ccs, config.rtts))
    )
    return [
        AggregateConfig(
            scheme=scheme,
            specs=specs,
            rate=config.rate,
            max_rtt=config.sizing_rtt,
            horizon=config.horizon,
            warmup=config.warmup,
            seed=config.seed,
            impair=spec,
        )
        for scheme in _SCHEMES
        for _label, spec in CONDITIONS
    ]


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Run the impairments grid and collect the comparison numbers."""
    config = config or Config()
    result = Result()
    outcomes = run_aggregates(grid(config), jobs=jobs, cache=cache)
    span = config.horizon - config.warmup
    cells = [
        (scheme, label)
        for scheme in _SCHEMES
        for label, _spec in CONDITIONS
    ]
    for (scheme, label), agg in zip(cells, outcomes):
        key = (scheme, label)
        result.mean_norm[key] = agg.mean_normalized_throughput
        result.drop_rate[key] = agg.drop_rate
        result.magic_per_s[key] = (
            (agg.magic_fills + agg.magic_reclaims) / span if span > 0 else 0.0
        )
    return result


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Print the impairments comparison."""
    config = config or Config()
    result = run(config, jobs=jobs, cache=cache)
    print(
        f"Impairments: {to_mbps(config.rate):.1f} Mbps enforced over "
        f"{len(config.ccs)} flows, lossy/jittery access paths"
    )
    rows = []
    for label, _spec in CONDITIONS:
        row = [label]
        for scheme in _SCHEMES:
            key = (scheme, label)
            row.append(f"{result.mean_norm[key]:.3f}")
        row.append(f"{result.drop_rate[('bcpqp', label)]:.3f}")
        row.append(f"{result.magic_per_s[('bcpqp', label)]:.2f}")
        rows.append(row)
    print_table(
        ["condition"]
        + [f"{s} norm tput" for s in _SCHEMES]
        + ["bcpqp drop rate", "bcpqp magic/s"],
        rows,
    )
    return result


if __name__ == "__main__":
    main()
