"""Extension: ECN marking on phantom queues (beyond the paper).

§3.3 notes that PQP's drop-tail restriction still permits "active queue
management policies ... that drop packets upon arrival"; phantom queues
descend from AQM virtual queues [8, 31, 32].  This extension closes the
loop: packets accepted while a phantom queue's occupancy exceeds a
threshold are CE-marked instead of being left to tail-drop later, and
ECN-capable senders halve once per RTT on echo.

Result: for ECN traffic, PQP keeps its exact rate and fairness while
packet loss essentially disappears — addressing the one metric where
bufferless schemes trail shapers (Figure 4d's drop rates).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.classify.classifier import SlotClassifier
from repro.core.bcpqp import BCPQP
from repro.core.pqp import PQP
from repro.experiments.common import (
    MEASUREMENT_WINDOW,
    ResultCache,
    print_table,
    run_cells,
)
from repro.metrics.fairness import jain_index
from repro.metrics.throughput import (
    aggregate_throughput_series,
    per_slot_throughput_series,
)
from repro.policy.tree import Policy
from repro.scenario import AggregateScenario
from repro.sim.simulator import Simulator
from repro.units import mbps, ms
from repro.workload.spec import FlowSpec


@dataclass
class Config:
    """ECN extension parameters."""

    rate: float = mbps(10)
    queue_bytes: float = 150_000.0
    mark_fraction: float = 0.25
    ccs: tuple[str, ...] = ("reno", "cubic", "vegas")
    rtts: tuple[float, ...] = (ms(10), ms(20), ms(30))
    horizon: float = 20.0
    warmup: float = 5.0
    seed: int = 1


@dataclass
class Cell:
    """One (scheme, marking) measurement."""

    mean_normalized: float
    peak_normalized: float
    fairness: float
    drop_rate: float
    marked_packets: int
    retransmits: int


@dataclass
class Result:
    """(scheme, marking on/off) -> measurements."""

    cells: dict[tuple[str, bool], Cell] = field(default_factory=dict)


def _build(scheme: str, config: Config, mark: bool, sim: Simulator):
    n = len(config.ccs)
    kwargs = dict(
        rate=config.rate,
        policy=Policy.fair(n),
        classifier=SlotClassifier(n),
        queue_bytes=config.queue_bytes,
        ecn_mark_fraction=config.mark_fraction if mark else None,
    )
    return PQP(sim, **kwargs) if scheme == "pqp" else BCPQP(sim, **kwargs)


@dataclass(frozen=True)
class EcnCell:
    """One (scheme, marking on/off) simulation."""

    scheme: str
    mark: bool
    config: Config


def simulate_ecn_cell(cell: EcnCell) -> Cell:
    """Worker entry for one ECN comparison cell."""
    config = cell.config
    sim = Simulator()
    limiter = _build(cell.scheme, config, cell.mark, sim)
    specs = [
        FlowSpec(slot=i, cc=cc, rtt=rtt, ecn=True)
        for i, (cc, rtt) in enumerate(zip(config.ccs, config.rtts))
    ]
    scenario = AggregateScenario(
        sim, limiter=limiter, specs=specs,
        rng=random.Random(config.seed), horizon=config.horizon)
    scenario.run()
    agg = aggregate_throughput_series(
        scenario.trace, window=MEASUREMENT_WINDOW,
        start=config.warmup, end=config.horizon)
    slots = per_slot_throughput_series(
        scenario.trace, window=MEASUREMENT_WINDOW,
        start=config.warmup, end=config.horizon)
    return Cell(
        mean_normalized=agg.mean() / config.rate,
        peak_normalized=agg.max() / config.rate,
        fairness=jain_index([s.mean() for s in slots.values()]),
        drop_rate=limiter.stats.drop_rate,
        marked_packets=limiter.ecn_marked_packets,
        retransmits=sum(
            r.senders[-1].retransmits for r in scenario.runners),
    )


def grid(config: Config) -> list[EcnCell]:
    """Scheme-major, marking-minor — the report's row order."""
    return [
        EcnCell(scheme=scheme, mark=mark, config=config)
        for scheme in ("pqp", "bcpqp")
        for mark in (False, True)
    ]


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Compare PQP and BC-PQP with and without ECN marking."""
    config = config or Config()
    result = Result()
    cells = grid(config)
    outcomes = run_cells(simulate_ecn_cell, cells, jobs=jobs, cache=cache)
    for cell, outcome in zip(cells, outcomes):
        result.cells[(cell.scheme, cell.mark)] = outcome
    return result


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Print the extension comparison table."""
    config = config or Config()
    result = run(config, jobs=jobs, cache=cache)
    print("Extension: ECN marking on phantom queues "
          f"(mark at {config.mark_fraction:.0%} occupancy)")
    rows = []
    for (scheme, mark), c in result.cells.items():
        rows.append([
            scheme, "on" if mark else "off",
            f"{c.mean_normalized:.3f}", f"{c.peak_normalized:.2f}",
            f"{c.fairness:.3f}", f"{c.drop_rate:.4f}",
            str(c.marked_packets), str(c.retransmits),
        ])
    print_table(
        ["scheme", "ecn", "mean (xr)", "peak (xr)", "jain", "drop rate",
         "marked", "retx"],
        rows,
    )
    return result


if __name__ == "__main__":
    main()
